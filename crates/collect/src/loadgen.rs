//! Deterministic fleet-scale load generator: drives thousands of
//! simulated vehicles — each a real [`CollectionAgent`] with the full
//! reliable transport (bounded windows, backoff retransmission, seeded
//! link faults) — into a [`ShardedController`] through one shared
//! discrete-event heap (DESIGN.md §14).
//!
//! Traffic *shapes* come from the sim's session protocol: every vehicle
//! follows one of the [`build_schedule`] driver scripts (offset by a
//! seeded per-agent phase), and its synthetic sensor emits
//! behaviour-dependent IMU features at a fleet reporting cadence with
//! periodic camera frames — IMU-dominant traffic punctuated by heavy
//! frame batches, the same mix the single-session runtime produces,
//! scaled out. Everything is seeded: the same [`FleetConfig`] yields a
//! bit-identical [`FleetReport`], which is what lets `bench_fleet` gate
//! fleet numbers in CI.
//!
//! The fleet admission signal closes the loop: each drain tick
//! recomputes [`ShardedController::pressure`], and (when
//! [`FleetConfig::honor_backpressure`] is set) agents defer flushes on
//! [`FleetAdmission::Shed`] and halve their flush rate on
//! [`FleetAdmission::Throttle`] — backpressure as deferral, with the
//! spill buffer and retransmission schedule absorbing the slack.

use std::collections::{BTreeMap, BinaryHeap};
use std::sync::Arc;

use darnet_sim::schedule::build_schedule;
use darnet_sim::{Behavior, Frame, ImuSample, ScheduleConfig, Segment};
use darnet_tensor::SplitMix64;

use crate::agent::{AgentConfig, CollectionAgent, RetransmitConfig, SpillConfig};
use crate::clock::DriftClock;
use crate::network::{FaultConfig, Link, LinkConfig};
use crate::runtime::TimedEvent;
use crate::sensor::{behavior_at, Sensor, SensorReading};
use crate::shard::{FleetAdmission, ShardConfig, ShardedController};
use crate::wire::{decode_ack, decode_batch, encode_ack, encode_batch, Batch};
use crate::Result;

/// Configuration of one fleet load-generation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Simulated vehicles (each one collection agent).
    pub agents: usize,
    /// Session length in seconds of simulated time.
    pub session_seconds: f64,
    /// Fleet IMU reporting period, seconds. Deliberately coarser than
    /// the in-session 25 ms: a fleet uplink reports condensed features,
    /// not raw sensor ticks.
    pub imu_period: f64,
    /// Camera frame period, seconds (`0` disables frames).
    pub frame_period: f64,
    /// Side length of the synthetic (square) frames.
    pub frame_side: usize,
    /// Batch transmission period, seconds.
    pub transmit_period: f64,
    /// Controller drain-tick period, seconds: how often shard queues are
    /// drained, acks sent, and the fleet pressure rollup refreshed.
    pub drain_period: f64,
    /// Extra post-session time for retransmissions and final drains.
    pub drain_grace: f64,
    /// Master seed; everything (sensors, clocks, links, jitter) derives
    /// from it.
    pub seed: u64,
    /// Session protocol whose driver scripts shape the traffic; vehicle
    /// `i` follows script `i % drivers` at a seeded phase offset.
    pub schedule: ScheduleConfig,
    /// Per-direction link model (applied to every agent's data and ack
    /// links, independently seeded).
    pub link: LinkConfig,
    /// Reliable-transport tuning shared by all agents.
    pub transport: RetransmitConfig,
    /// Agent spill-buffer bound.
    pub spill: SpillConfig,
    /// Drain shards on scoped threads instead of serially. State and
    /// report are identical either way; this only changes wall-clock.
    pub parallel_drain: bool,
    /// Feed the fleet admission signal back to agents (defer on `Shed`,
    /// slow down on `Throttle`). Off for traffic-equivalence runs, where
    /// offered traffic must not depend on controller state.
    pub honor_backpressure: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            agents: 1000,
            session_seconds: 10.0,
            imu_period: 0.25,
            frame_period: 2.0,
            frame_side: 8,
            transmit_period: 1.0,
            drain_period: 0.25,
            drain_grace: 5.0,
            seed: 0xF1EE7,
            schedule: ScheduleConfig::default(),
            link: LinkConfig {
                loss: 0.01,
                faults: FaultConfig {
                    duplicate: 0.005,
                    ..FaultConfig::default()
                },
                ..LinkConfig::default()
            },
            transport: RetransmitConfig::default(),
            spill: SpillConfig::default(),
            parallel_drain: false,
            honor_backpressure: true,
        }
    }
}

/// Deterministic summary of one fleet run — the ChaosReport analogue for
/// the load harness. Two runs with the same [`FleetConfig`] and shard
/// configuration produce equal reports, bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Vehicles simulated.
    pub agents: u64,
    /// Shards the controller ran with.
    pub shards: u64,
    /// Sensor readings polled fleet-wide.
    pub readings_polled: u64,
    /// Batches entered into in-flight windows (first transmissions).
    pub batches_flushed: u64,
    /// Batch deliveries offered to the sharded front door (loss and
    /// duplication included).
    pub deliveries: u64,
    /// Offers shed at full shard queues.
    pub queue_shed: u64,
    /// Offers shed by per-shard admission control.
    pub admission_shed: u64,
    /// Duplicate deliveries the controllers discarded.
    pub duplicates: u64,
    /// Distinct batches accepted across shards.
    pub batches_accepted: u64,
    /// Distinct readings ingested across shards.
    pub readings_ingested: u64,
    /// Retransmission attempts fleet-wide.
    pub retransmits: u64,
    /// Batches abandoned after exhausting retries.
    pub abandoned: u64,
    /// Batches retired by acks.
    pub acked: u64,
    /// Flushes deferred by the fleet `Shed` signal.
    pub deferred_flushes: u64,
    /// Flush cycles slowed by the fleet `Throttle` signal.
    pub throttled_flushes: u64,
    /// Most severe admission signal observed at any drain tick.
    pub peak_signal: FleetAdmission,
    /// Peak total queued batches observed at a drain tick.
    pub peak_queue_depth: usize,
    /// Readings dropped oldest-first at agent spill bounds.
    pub spill_dropped: u64,
    /// High-water mark of any agent's spill buffer.
    pub spill_peak: usize,
    /// Bytes pushed through the wire format (batches + acks, dups and
    /// retransmissions included).
    pub wire_bytes: u64,
    /// Approximate resident bytes of all controller state at the end.
    pub approx_bytes: u64,
    /// `approx_bytes / agents` — the gated memory-per-agent figure.
    pub bytes_per_agent: u64,
    /// Median ack latency, simulated seconds (first flush → ack receipt).
    pub ack_latency_p50: f64,
    /// 99th-percentile ack latency, simulated seconds.
    pub ack_latency_p99: f64,
    /// Worst ack latency, simulated seconds.
    pub ack_latency_max: f64,
    /// Shard-order fold of per-shard controller digests.
    pub state_digest: u64,
    /// Canonical merged TSDB digest (shard-count invariant).
    pub tsdb_digest: u64,
    /// WAL records appended (0 without durability).
    pub wal_appends: u64,
    /// WAL bytes appended (0 without durability).
    pub wal_bytes: u64,
}

/// The synthetic fleet sensor: behaviour-shaped IMU features at the
/// fleet reporting cadence, with a camera frame replacing the IMU sample
/// whenever the frame period elapses. Cheap enough to run tens of
/// thousands of instances, deterministic per seed, and shaped by the
/// same scripts the single-session sensors follow.
struct FleetSensor {
    script: Arc<Vec<Segment<Behavior>>>,
    /// Script span in seconds (behaviour lookups wrap modulo this).
    span: f64,
    /// Per-agent phase offset into the script.
    phase: f64,
    rng: SplitMix64,
    imu_period: f64,
    frame_period: f64,
    frame_side: usize,
    next_frame_t: f64,
}

impl FleetSensor {
    fn behavior_index(&self, t: f64) -> usize {
        let local = if self.span > 0.0 {
            (t + self.phase).rem_euclid(self.span)
        } else {
            0.0
        };
        let behavior = behavior_at(&self.script, local);
        Behavior::ALL
            .iter()
            .position(|b| *b == behavior)
            .unwrap_or(0)
    }
}

impl Sensor for FleetSensor {
    fn name(&self) -> &str {
        "fleet"
    }

    fn period(&self) -> f64 {
        self.imu_period
    }

    fn sample(&mut self, t: f64) -> SensorReading {
        let bi = self.behavior_index(t) as f32;
        if self.frame_period > 0.0 && t + 1e-9 >= self.next_frame_t {
            while self.next_frame_t <= t + 1e-9 {
                self.next_frame_t += self.frame_period;
            }
            let n = self.frame_side * self.frame_side;
            let base = 0.15 + 0.1 * bi;
            let mut pixels = Vec::with_capacity(n);
            for _ in 0..n {
                pixels.push(base + 0.05 * self.rng.next_f32());
            }
            return SensorReading::Frame(Frame::from_pixels(
                self.frame_side,
                self.frame_side,
                pixels,
            ));
        }
        let mut feats = [0.0f32; ImuSample::FEATURES];
        for (i, f) in feats.iter_mut().enumerate() {
            // A distinct deterministic level per (behaviour, channel),
            // plus sensor noise — enough structure that downstream
            // alignment and TSDB content differ per behaviour.
            *f = (bi * 0.7 + i as f32 * 0.31).sin() + 0.05 * self.rng.normal();
        }
        SensorReading::Imu(ImuSample::from_features(&feats))
    }
}

#[derive(Debug, Clone, Copy)]
enum FleetEventKind {
    /// Sensor poll for one agent.
    Poll(u32),
    /// Scheduled flush for one agent.
    Flush(u32),
    /// Ack-timeout check for one agent.
    Retry(u32),
    /// A batch transmission arriving at the controller (pending id).
    Deliver(u32),
    /// An ack arriving back at an agent.
    DeliverAck { agent: u32, seq: u32 },
    /// Controller drain tick: drain shard queues, send acks, refresh the
    /// fleet pressure rollup.
    Drain,
}

type FleetEvent = TimedEvent<FleetEventKind>;

/// One vehicle's simulation state.
struct Vehicle {
    agent: CollectionAgent,
    data_link: Link,
    ack_link: Link,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted.get(pos).copied().unwrap_or(0.0)
}

/// Runs a fleet load-generation session into a fresh
/// [`ShardedController`] and returns it with the run's report.
///
/// # Errors
///
/// Propagates configuration, transport (strict mode), and WAL errors.
pub fn run_fleet(
    config: &FleetConfig,
    shard_config: ShardConfig,
) -> Result<(ShardedController, FleetReport)> {
    let mut sharded = ShardedController::new(shard_config)?;
    let report = run_fleet_into(config, &mut sharded)?;
    Ok((sharded, report))
}

/// Runs a fleet load-generation session into an existing sharded
/// controller (e.g. one opened over per-shard WALs).
///
/// # Errors
///
/// Propagates transport (strict mode) and WAL errors.
pub fn run_fleet_into(
    config: &FleetConfig,
    sharded: &mut ShardedController,
) -> Result<FleetReport> {
    let mut master_rng = SplitMix64::new(config.seed);
    let schedule = build_schedule(&config.schedule);
    let drivers = config.schedule.drivers.max(1);
    let mut scripts: Vec<Vec<Segment<Behavior>>> = vec![Vec::new(); drivers];
    for seg in schedule {
        if let Some(script) = scripts.get_mut(seg.driver) {
            script.push(seg);
        }
    }
    let scripts: Vec<Arc<Vec<Segment<Behavior>>>> = scripts.into_iter().map(Arc::new).collect();
    let spans: Vec<f64> = scripts
        .iter()
        .map(|s| s.last().map(|seg| seg.end()).unwrap_or(1.0))
        .collect();

    let mut heap: BinaryHeap<FleetEvent> = BinaryHeap::new();
    let mut seq = 0u64;
    let push =
        |heap: &mut BinaryHeap<FleetEvent>, time: f64, kind: FleetEventKind, seq: &mut u64| {
            heap.push(FleetEvent {
                time,
                seq: *seq,
                kind,
            });
            *seq += 1;
        };

    let mut vehicles: Vec<Vehicle> = Vec::with_capacity(config.agents);
    for i in 0..config.agents {
        let id = i as u32;
        let driver = i % drivers;
        let mut agent_rng = master_rng.fork();
        let span = spans.get(driver).copied().unwrap_or(1.0);
        let sensor = FleetSensor {
            script: scripts
                .get(driver)
                .cloned()
                .unwrap_or_else(|| Arc::new(Vec::new())),
            span,
            phase: agent_rng.next_f64() * span,
            rng: agent_rng.fork(),
            imu_period: config.imu_period,
            frame_period: config.frame_period,
            frame_side: config.frame_side,
            next_frame_t: if config.frame_period > 0.0 {
                agent_rng.next_f64() * config.frame_period
            } else {
                f64::INFINITY
            },
        };
        // Fleet clocks: small residual drift/offset (no sync protocol in
        // the load generator; per-agent series tolerate the skew).
        let clock = DriftClock::new(
            (agent_rng.next_f64() - 0.5) * 2e-5,
            (agent_rng.next_f64() - 0.5) * 0.02,
        );
        let agent = CollectionAgent::new(
            id,
            Box::new(sensor),
            clock,
            AgentConfig {
                poll_period: config.imu_period,
                transmit_period: config.transmit_period,
                spill: config.spill,
            },
        )
        .with_transport(config.transport, agent_rng.next_u64());
        let data_link = Link::new(config.link, agent_rng.next_u64());
        let ack_link = Link::new(config.link, agent_rng.next_u64());
        vehicles.push(Vehicle {
            agent,
            data_link,
            ack_link,
        });
        // Spread polls and flushes across the period so the fleet does
        // not thunder in lockstep.
        let poll_jitter = agent_rng.next_f64() * config.imu_period;
        let flush_jitter = agent_rng.next_f64() * config.transmit_period;
        push(&mut heap, poll_jitter, FleetEventKind::Poll(id), &mut seq);
        push(
            &mut heap,
            config.transmit_period + flush_jitter,
            FleetEventKind::Flush(id),
            &mut seq,
        );
    }
    push(
        &mut heap,
        config.drain_period,
        FleetEventKind::Drain,
        &mut seq,
    );

    let session_end = config.session_seconds;
    let end_time = session_end + config.transmit_period + config.drain_grace;
    // Pending transmissions stay allocated so duplicated arrivals can
    // re-read them (the controller dedupes re-deliveries).
    let mut pending: Vec<Batch> = Vec::new();
    let mut first_flush: BTreeMap<(u32, u32), f64> = BTreeMap::new();
    let mut latencies: Vec<f64> = Vec::new();
    let mut deliveries = 0u64;
    let mut wire_bytes = 0u64;
    let mut deferred_flushes = 0u64;
    let mut throttled_flushes = 0u64;
    let mut peak_queue_depth = 0usize;
    let mut signal = FleetAdmission::Accept;
    let mut peak_signal = FleetAdmission::Accept;

    while let Some(event) = heap.pop() {
        let t = event.time;
        if t > end_time {
            break;
        }
        match event.kind {
            FleetEventKind::Poll(id) => {
                let Some(v) = vehicles.get_mut(id as usize) else {
                    continue;
                };
                if t <= session_end {
                    v.agent.poll(t)?;
                    push(
                        &mut heap,
                        t + config.imu_period,
                        FleetEventKind::Poll(id),
                        &mut seq,
                    );
                }
            }
            FleetEventKind::Flush(id) => {
                let Some(v) = vehicles.get_mut(id as usize) else {
                    continue;
                };
                let mut next_flush = t + config.transmit_period;
                if config.honor_backpressure && signal == FleetAdmission::Shed {
                    // Overload: hold the data locally; the spill buffer
                    // and a later cycle absorb it.
                    v.agent.note_deferred_flush();
                    deferred_flushes += 1;
                } else {
                    if config.honor_backpressure && signal == FleetAdmission::Throttle {
                        // Pressure building: halve this agent's flush
                        // rate for the cycle.
                        throttled_flushes += 1;
                        next_flush = t + 2.0 * config.transmit_period;
                    }
                    if let Some(batch) = v.agent.flush_at(t)? {
                        first_flush.insert((batch.agent_id, batch.seq), t);
                        let bytes = encode_batch(&batch);
                        wire_bytes += bytes.len() as u64;
                        let pending_id = pending.len() as u32;
                        pending.push(batch);
                        for arrival in v.data_link.transmit_all(t) {
                            push(
                                &mut heap,
                                arrival,
                                FleetEventKind::Deliver(pending_id),
                                &mut seq,
                            );
                        }
                    }
                    if let Some(deadline) = v.agent.next_deadline() {
                        push(&mut heap, deadline, FleetEventKind::Retry(id), &mut seq);
                    }
                }
                if t <= session_end {
                    push(&mut heap, next_flush, FleetEventKind::Flush(id), &mut seq);
                }
            }
            FleetEventKind::Retry(id) => {
                let Some(v) = vehicles.get_mut(id as usize) else {
                    continue;
                };
                for batch in v.agent.due_retransmits(t)? {
                    let bytes = encode_batch(&batch);
                    wire_bytes += bytes.len() as u64;
                    let pending_id = pending.len() as u32;
                    pending.push(batch);
                    for arrival in v.data_link.transmit_all(t) {
                        push(
                            &mut heap,
                            arrival,
                            FleetEventKind::Deliver(pending_id),
                            &mut seq,
                        );
                    }
                }
                if let Some(deadline) = v.agent.next_deadline() {
                    push(&mut heap, deadline, FleetEventKind::Retry(id), &mut seq);
                }
            }
            FleetEventKind::Deliver(id) => {
                let Some(batch) = pending.get(id as usize) else {
                    continue;
                };
                // Round-trip through the wire format, as a real uplink
                // would.
                let decoded = decode_batch(encode_batch(batch))?;
                deliveries += 1;
                // Queued or queue-shed; acks only materialize at drain.
                let _ = sharded.offer_at(t, &decoded);
            }
            FleetEventKind::DeliverAck { agent, seq: acked } => {
                let Some(v) = vehicles.get_mut(agent as usize) else {
                    continue;
                };
                v.agent.handle_ack(acked);
                if let Some(sent) = first_flush.remove(&(agent, acked)) {
                    latencies.push(t - sent);
                }
            }
            FleetEventKind::Drain => {
                peak_queue_depth = peak_queue_depth.max(sharded.queued());
                let acks = if config.parallel_drain {
                    sharded.drain_parallel()?
                } else {
                    sharded.drain()?
                };
                for shard_ack in acks {
                    let ack = decode_ack(encode_ack(&shard_ack.ack))?;
                    wire_bytes += encode_ack(&shard_ack.ack).len() as u64;
                    let Some(v) = vehicles.get_mut(ack.agent_id as usize) else {
                        continue;
                    };
                    for arrival in v.ack_link.transmit_all(t) {
                        push(
                            &mut heap,
                            arrival,
                            FleetEventKind::DeliverAck {
                                agent: ack.agent_id,
                                seq: ack.seq,
                            },
                            &mut seq,
                        );
                    }
                }
                let pressure = sharded.pressure();
                signal = pressure.signal;
                peak_signal = peak_signal.max(signal);
                if t <= end_time - config.drain_period {
                    push(
                        &mut heap,
                        t + config.drain_period,
                        FleetEventKind::Drain,
                        &mut seq,
                    );
                }
            }
        }
    }
    // Final drain: whatever is still queued gets ingested (acks at this
    // point have no one scheduled to carry them; the accounting below
    // reads controller state directly).
    peak_queue_depth = peak_queue_depth.max(sharded.queued());
    if config.parallel_drain {
        sharded.drain_parallel()?;
    } else {
        sharded.drain()?;
    }

    let mut report = FleetReport {
        agents: config.agents as u64,
        shards: sharded.shard_count() as u64,
        readings_polled: 0,
        batches_flushed: 0,
        deliveries,
        queue_shed: 0,
        admission_shed: 0,
        duplicates: 0,
        batches_accepted: 0,
        readings_ingested: 0,
        retransmits: 0,
        abandoned: 0,
        acked: 0,
        deferred_flushes,
        throttled_flushes,
        peak_signal,
        peak_queue_depth,
        spill_dropped: 0,
        spill_peak: 0,
        wire_bytes,
        approx_bytes: 0,
        bytes_per_agent: 0,
        ack_latency_p50: 0.0,
        ack_latency_p99: 0.0,
        ack_latency_max: 0.0,
        state_digest: 0,
        tsdb_digest: 0,
        wal_appends: 0,
        wal_bytes: 0,
    };
    for v in &vehicles {
        let stats = v.agent.transport_stats();
        report.readings_polled += v.agent.poll_count();
        report.batches_flushed += stats.transmitted;
        report.retransmits += stats.retransmits;
        report.abandoned += stats.abandoned;
        report.acked += stats.acked;
        let spill = v.agent.spill_stats();
        report.spill_dropped += spill.dropped_oldest;
        report.spill_peak = report.spill_peak.max(spill.peak_buffered);
    }
    let pressure = sharded.pressure();
    for shard in &pressure.shards {
        report.queue_shed += shard.queue_shed;
        report.admission_shed += shard.admission_shed;
    }
    for health in sharded.stream_healths() {
        report.duplicates += health.duplicates;
    }
    let (batches, readings) = sharded.ingest_stats();
    report.batches_accepted = batches;
    report.readings_ingested = readings;
    report.approx_bytes = sharded.approx_bytes();
    report.bytes_per_agent = report.approx_bytes / config.agents.max(1) as u64;
    latencies.sort_by(|a, b| a.total_cmp(b));
    report.ack_latency_p50 = percentile(&latencies, 0.50);
    report.ack_latency_p99 = percentile(&latencies, 0.99);
    report.ack_latency_max = latencies.last().copied().unwrap_or(0.0);
    report.state_digest = sharded.state_digest();
    report.tsdb_digest = sharded.tsdb_digest();
    let wal = sharded.wal_stats();
    report.wal_appends = wal.appends;
    report.wal_bytes = wal.bytes_appended;
    Ok(report)
}

/// [`run_fleet`] plus a wall-clock measurement of the whole run — the
/// only wall-clock surface in this module, for the bench harness.
///
/// # Errors
///
/// Propagates [`run_fleet`] errors.
pub fn run_fleet_timed(
    config: &FleetConfig,
    shard_config: ShardConfig,
) -> Result<(ShardedController, FleetReport, f64)> {
    let start = std::time::Instant::now();
    let (sharded, report) = run_fleet(config, shard_config)?;
    Ok((sharded, report, start.elapsed().as_secs_f64()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControllerConfig;
    use crate::shard::BackpressureConfig;

    fn small_config() -> FleetConfig {
        FleetConfig {
            agents: 60,
            session_seconds: 6.0,
            ..FleetConfig::default()
        }
    }

    fn fleet_shards(shards: usize) -> ShardConfig {
        ShardConfig {
            shards,
            controller: ControllerConfig {
                per_agent_series: true,
                ..ControllerConfig::default()
            },
            ..ShardConfig::default()
        }
    }

    #[test]
    fn fleet_run_is_deterministic() {
        let config = small_config();
        let (_, a) = run_fleet(&config, fleet_shards(4)).unwrap();
        let (_, b) = run_fleet(&config, fleet_shards(4)).unwrap();
        assert_eq!(a, b);
        assert!(a.readings_polled > 0);
        assert!(a.batches_accepted > 0);
        assert!(a.acked > 0);
        assert!(a.ack_latency_p99 >= a.ack_latency_p50);
        assert!(a.bytes_per_agent > 0);
        // A different seed produces different traffic.
        let (_, c) = run_fleet(
            &FleetConfig {
                seed: 0xDEAD,
                ..config
            },
            fleet_shards(4),
        )
        .unwrap();
        assert_ne!(a.tsdb_digest, c.tsdb_digest);
    }

    #[test]
    fn sharded_tsdb_matches_single_controller_on_identical_traffic() {
        // Feedback off so the offered traffic cannot depend on shard
        // count; the single-shard run's controller IS a single
        // controller processing in offer order.
        let config = FleetConfig {
            honor_backpressure: false,
            ..small_config()
        };
        let (single, single_report) = run_fleet(&config, fleet_shards(1)).unwrap();
        let (sharded, sharded_report) = run_fleet(&config, fleet_shards(8)).unwrap();
        let single_controller = single.shard_controller(0).unwrap();
        assert_eq!(
            sharded.tsdb_digest(),
            single_controller.tsdb().canonical_fingerprint()
        );
        assert_eq!(sharded_report.tsdb_digest, single_report.tsdb_digest);
        assert_eq!(
            sharded_report.readings_ingested,
            single_report.readings_ingested
        );
    }

    #[test]
    fn parallel_drain_reports_identically() {
        let config = small_config();
        let (_, serial) = run_fleet(&config, fleet_shards(4)).unwrap();
        let (_, parallel) = run_fleet(
            &FleetConfig {
                parallel_drain: true,
                ..config
            },
            fleet_shards(4),
        )
        .unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn backpressure_engages_under_tiny_queues() {
        let config = small_config();
        let squeezed = ShardConfig {
            queue_limit: 2,
            backpressure: BackpressureConfig::default(),
            ..fleet_shards(2)
        };
        let (_, report) = run_fleet(&config, squeezed).unwrap();
        assert_eq!(report.peak_signal, FleetAdmission::Shed);
        assert!(report.queue_shed > 0);
        assert!(report.deferred_flushes > 0, "agents must honor the signal");
    }

    #[test]
    fn traffic_mixes_imu_and_frames() {
        let (sharded, report) = run_fleet(&small_config(), fleet_shards(2)).unwrap();
        assert!(report.readings_ingested > 0);
        // Per-agent series exist for both modalities.
        let metrics = (0..sharded.shard_count())
            .filter_map(|i| sharded.shard_controller(i))
            .flat_map(|c| c.tsdb().metrics())
            .collect::<Vec<_>>();
        assert!(metrics.iter().any(|m| m.starts_with("imu.")));
        assert!(metrics.iter().any(|m| m.starts_with("camera.")));
    }

    #[test]
    fn timed_wrapper_reports_elapsed() {
        let (_, report, elapsed) = run_fleet_timed(
            &FleetConfig {
                agents: 10,
                session_seconds: 2.0,
                ..FleetConfig::default()
            },
            fleet_shards(2),
        )
        .unwrap();
        assert!(elapsed >= 0.0);
        assert!(report.readings_polled > 0);
    }
}
