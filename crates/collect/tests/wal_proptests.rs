//! Property-based tests for the WAL: append→replay round-trip identity,
//! idempotent double replay, and crash-at-any-byte truncation tolerance.
//!
//! All properties run over [`MemStorage`] so a "crash" is just byte
//! surgery on the stored segment — no filesystem, fully deterministic.

use std::sync::Arc;

use darnet_collect::wal;
use darnet_collect::{
    decode_batch, encode_batch, replay_into, Batch, Controller, ControllerConfig, MemStorage,
    SensorReading, StampedReading, WalConfig, WalStorage,
};
use darnet_sim::ImuSample;
use proptest::prelude::*;

const AGENT: u32 = 7;

/// An IMU batch sent through the wire codec, so the bytes the WAL stores
/// are exactly what a real delivery would carry (replay is then bitwise
/// identical to live ingestion).
#[allow(clippy::expect_used)] // test helper: a failed expect IS the test failing
fn imu_batch(seq: u32, t0: f64, n: usize) -> Batch {
    let batch = Batch {
        agent_id: AGENT,
        seq,
        readings: (0..n)
            .map(|i| StampedReading {
                timestamp: t0 + i as f64 * 0.025,
                reading: SensorReading::Imu(ImuSample {
                    accel: [t0 as f32, seq as f32, 9.8],
                    gyro: [0.1, 0.2, 0.3],
                    gravity: [0.0, 0.0, 9.81],
                    rotation: [1.0, 0.0, 0.0],
                }),
            })
            .collect(),
    };
    decode_batch(encode_batch(&batch)).expect("wire round-trip")
}

/// Builds a log on `storage`: one batch per entry in `sizes`, snapshotting
/// whenever the cadence asks. Returns the live controller for digest
/// comparison.
#[allow(clippy::expect_used)] // test helper: a failed expect IS the test failing
fn build_log(storage: &Arc<dyn WalStorage>, config: WalConfig, sizes: &[usize]) -> Controller {
    let (mut live, mut wal, _) =
        wal::open(ControllerConfig::default(), Arc::clone(storage), config).expect("open");
    for (i, &n) in sizes.iter().enumerate() {
        let arrival = i as f64 * 0.2;
        let batch = imu_batch(i as u32, arrival, n);
        live.offer_at(arrival, &batch, Some(&mut wal))
            .expect("offer");
        if wal.needs_snapshot() {
            wal.snapshot(&live).expect("snapshot");
        }
    }
    live
}

/// Builds a single-segment, no-snapshot log and returns the live
/// controller, the segment's object name, and the byte offset at which
/// each append ended (so properties can cut/corrupt at exact frames).
#[allow(clippy::expect_used)] // test helper: a failed expect IS the test failing
fn single_segment_log(
    storage: &Arc<dyn WalStorage>,
    sizes: &[usize],
) -> (Controller, String, Vec<u64>) {
    let config = WalConfig {
        segment_max_records: u64::MAX,
        snapshot_every: 0,
    };
    let (mut live, mut wal, _) =
        wal::open(ControllerConfig::default(), Arc::clone(storage), config).expect("open");
    let mut ends = Vec::with_capacity(sizes.len());
    for (i, &n) in sizes.iter().enumerate() {
        let arrival = i as f64 * 0.2;
        let batch = imu_batch(i as u32, arrival, n);
        live.offer_at(arrival, &batch, Some(&mut wal))
            .expect("offer");
        let name = storage.list().expect("list").pop().expect("segment exists");
        ends.push(storage.read(&name).expect("read").len() as u64);
    }
    let name = storage.list().expect("list").pop().expect("segment exists");
    (live, name, ends)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Round-trip identity: for ANY batch sequence × segment size ×
    /// snapshot cadence, replaying the log into a fresh controller
    /// rebuilds bit-identical state.
    #[test]
    fn append_then_replay_rebuilds_identical_state(
        sizes in prop::collection::vec(1usize..5, 1..40),
        segment_max in 1u64..16,
        snapshot_every in 0u64..40,
    ) {
        let storage: Arc<dyn WalStorage> = Arc::new(MemStorage::new());
        let config = WalConfig { segment_max_records: segment_max, snapshot_every };
        let live = build_log(&storage, config, &sizes);

        let mut recovered = Controller::new(ControllerConfig::default());
        let report = replay_into(&mut recovered, storage.as_ref()).expect("replay");
        prop_assert_eq!(report.torn_tail_bytes, 0, "clean log has no torn tail");
        prop_assert_eq!(recovered.state_digest(), live.state_digest());
    }

    /// Replaying the same log twice into the same controller ingests
    /// nothing new: the `(agent, seq)` dedup classifies every record of
    /// the second pass as a duplicate, so the ingested data (counters and
    /// TSDB contents) is unchanged — only the duplicate tallies move.
    #[test]
    fn double_replay_is_idempotent(
        sizes in prop::collection::vec(1usize..4, 1..25),
        segment_max in 1u64..8,
    ) {
        let storage: Arc<dyn WalStorage> = Arc::new(MemStorage::new());
        let config = WalConfig { segment_max_records: segment_max, snapshot_every: 0 };
        build_log(&storage, config, &sizes);

        let mut recovered = Controller::new(ControllerConfig::default());
        let first = replay_into(&mut recovered, storage.as_ref()).expect("first replay");
        let stats = recovered.ingest_stats();
        let fingerprint = recovered.tsdb().fingerprint();
        let second = replay_into(&mut recovered, storage.as_ref()).expect("second replay");
        prop_assert_eq!(first.records_replayed, sizes.len() as u64);
        prop_assert_eq!(second.records_replayed, 0, "nothing new on the second pass");
        prop_assert_eq!(second.duplicates_skipped, first.records_replayed);
        prop_assert_eq!(recovered.ingest_stats(), stats);
        prop_assert_eq!(recovered.tsdb().fingerprint(), fingerprint);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Crash-at-any-byte: truncating the live segment at an arbitrary
    /// offset (a torn final write) loses exactly the un-acked suffix —
    /// every record wholly below the cut survives, nothing else does, and
    /// the log reopens for appending.
    #[test]
    fn truncation_at_any_byte_preserves_the_acked_prefix(
        sizes in prop::collection::vec(1usize..4, 1..20),
        cut_frac in 0.0f64..1.0,
    ) {
        let storage: Arc<dyn WalStorage> = Arc::new(MemStorage::new());
        let (_, name, ends) = single_segment_log(&storage, &sizes);
        let total = *ends.last().expect("non-empty log");
        let cut = ((cut_frac * total as f64) as u64).min(total);
        storage.truncate(&name, cut).expect("truncate");

        let survivors = ends.iter().filter(|&&e| e <= cut).count();
        let prefix_end = ends.iter().copied().filter(|&e| e <= cut).max().unwrap_or(0);
        let mut recovered = Controller::new(ControllerConfig::default());
        let report = replay_into(&mut recovered, storage.as_ref()).expect("replay");
        prop_assert_eq!(report.records_replayed, survivors as u64);
        prop_assert_eq!(report.torn_tail_bytes, cut - prefix_end);
        for seq in 0..sizes.len() as u32 {
            prop_assert_eq!(recovered.has_seen(AGENT, seq), (seq as usize) < survivors);
        }

        // Recovery repaired the tail: the log reopens clean and accepts
        // new appends.
        let config = WalConfig { segment_max_records: u64::MAX, snapshot_every: 0 };
        let (mut resumed, mut wal, reopened) =
            wal::open(ControllerConfig::default(), Arc::clone(&storage), config).expect("reopen");
        prop_assert_eq!(reopened.torn_tail_bytes, 0, "tail already repaired");
        let next_seq = sizes.len() as u32;
        let extra = imu_batch(next_seq, 99.0, 2);
        resumed.offer_at(99.0, &extra, Some(&mut wal)).expect("append after recovery");
        prop_assert!(resumed.has_seen(AGENT, next_seq));
    }

    /// Corrupting any single byte of the live segment is tolerated: the
    /// records before the damaged frame replay intact, the damaged suffix
    /// is truncated away, and a second replay sees a clean log.
    #[test]
    fn corrupting_any_tail_byte_never_loses_earlier_records(
        sizes in prop::collection::vec(1usize..4, 2..15),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let storage: Arc<dyn WalStorage> = Arc::new(MemStorage::new());
        let (_, name, ends) = single_segment_log(&storage, &sizes);
        let total = *ends.last().expect("non-empty log");
        let data = storage.read(&name).expect("read");
        let pos = ((pos_frac * (total - 1) as f64) as u64).min(total - 1);
        // MemStorage has no write-at, so splice: keep the prefix, append
        // the flipped byte, then the untouched suffix.
        storage.truncate(&name, pos).expect("truncate");
        storage
            .append(&name, &[data[pos as usize] ^ flip])
            .expect("append flipped byte");
        storage.append(&name, &data[pos as usize + 1..]).expect("append suffix");

        let survivors = ends.iter().filter(|&&e| e <= pos).count();
        let mut recovered = Controller::new(ControllerConfig::default());
        let report = replay_into(&mut recovered, storage.as_ref()).expect("replay");
        prop_assert_eq!(report.records_replayed, survivors as u64);
        prop_assert!(report.torn_tail_bytes > 0, "the damaged frame is truncated");
        for seq in 0..sizes.len() as u32 {
            prop_assert_eq!(recovered.has_seen(AGENT, seq), (seq as usize) < survivors);
        }
        let digest = recovered.state_digest();

        let mut again = Controller::new(ControllerConfig::default());
        let clean = replay_into(&mut again, storage.as_ref()).expect("replay after repair");
        prop_assert_eq!(clean.torn_tail_bytes, 0);
        prop_assert_eq!(again.state_digest(), digest);
    }
}
