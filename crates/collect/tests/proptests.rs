//! Property-based tests for middleware invariants: interpolation bounds,
//! smoothing bounds, clock-sync convergence, wire-format roundtrips.

use bytes::Bytes;
use darnet_collect::{
    decode_batch, encode_batch, interpolate_grid, moving_average, Batch, DriftClock, GridSpec,
    SensorReading, StampedReading,
};
use darnet_sim::ImuSample;
use proptest::prelude::*;

proptest! {
    #[test]
    fn interpolation_is_bounded_by_observations(
        values in prop::collection::vec(-50.0f32..50.0, 2..40),
        hz in 1.0f64..20.0,
    ) {
        let obs: Vec<(f64, Vec<f32>)> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64 * 0.1, vec![v]))
            .collect();
        let lo = values.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = values.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let grid = GridSpec { start: 0.0, end: (values.len() - 1) as f64 * 0.1, hz };
        for row in interpolate_grid(&obs, &grid) {
            prop_assert!(row[0] >= lo - 1e-4 && row[0] <= hi + 1e-4);
        }
    }

    #[test]
    fn interpolation_order_invariance(
        values in prop::collection::vec(-10.0f32..10.0, 3..20),
        perm_seed in 0u64..100,
    ) {
        let obs: Vec<(f64, Vec<f32>)> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64 * 0.25, vec![v]))
            .collect();
        let mut shuffled = obs.clone();
        let mut rng = darnet_tensor::SplitMix64::new(perm_seed);
        rng.shuffle(&mut shuffled);
        let grid = GridSpec { start: 0.0, end: (values.len() - 1) as f64 * 0.25, hz: 4.0 };
        prop_assert_eq!(interpolate_grid(&obs, &grid), interpolate_grid(&shuffled, &grid));
    }

    #[test]
    fn moving_average_is_bounded_and_length_preserving(
        values in prop::collection::vec(-100.0f32..100.0, 1..50),
        window in 1usize..8,
    ) {
        let series: Vec<Vec<f32>> = values.iter().map(|&v| vec![v]).collect();
        let out = moving_average(&series, window);
        prop_assert_eq!(out.len(), series.len());
        let lo = values.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = values.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        for row in out {
            prop_assert!(row[0] >= lo - 1e-3 && row[0] <= hi + 1e-3);
        }
    }

    #[test]
    fn clock_sync_bounds_error_regardless_of_initial_state(
        drift_ppm in -500.0f64..500.0,
        offset in -5.0f64..5.0,
        delay in 0.001f64..0.1,
    ) {
        let mut clock = DriftClock::new(drift_ppm * 1e-6, offset);
        // Sync every 5 s for a minute with a perfect delay estimate.
        for k in 1..=12 {
            let t = k as f64 * 5.0;
            clock.apply_sync(t, t - delay, delay);
        }
        // After the last sync, error re-accumulates only through drift.
        let err = clock.error(60.0 + 5.0).abs();
        prop_assert!(err <= drift_ppm.abs() * 1e-6 * 5.0 + 1e-9);
    }

    #[test]
    fn wire_roundtrip_preserves_imu_batches(
        agent in 0u32..100,
        seq in 0u32..1000,
        stamps in prop::collection::vec(0.0f64..100.0, 0..20),
    ) {
        let batch = Batch {
            agent_id: agent,
            seq,
            readings: stamps
                .iter()
                .map(|&t| StampedReading {
                    timestamp: t,
                    reading: SensorReading::Imu(ImuSample {
                        accel: [t as f32, -1.0, 9.8],
                        gyro: [0.1, 0.2, 0.3],
                        gravity: [0.0, 0.0, 9.81],
                        rotation: [1.0, 0.5, -0.5],
                    }),
                })
                .collect(),
        };
        prop_assert_eq!(decode_batch(encode_batch(&batch)).unwrap(), batch);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        // Must return Ok or Err — never panic.
        let _ = decode_batch(Bytes::from(bytes));
    }
}

// ---------------------------------------------------------------------------
// Transport-layer invariants: for ANY seed × loss × jitter × duplication
// combination, the set of samples the controller ingests is exactly the set
// the agents polled — retransmission recovers every loss, sequence dedupe
// discards every duplicate, and alignment leaves timestamps sorted.
// ---------------------------------------------------------------------------

mod transport_props {
    use darnet_collect::runtime::{run_session, CampaignConfig};
    use darnet_collect::RetransmitConfig;
    use darnet_sim::{Behavior, DrivingWorld, Segment, WorldConfig};
    use proptest::prelude::*;
    use std::sync::Arc;

    fn schedule() -> Vec<Segment<Behavior>> {
        vec![
            Segment {
                driver: 0,
                behavior: Behavior::NormalDriving,
                start: 0.0,
                duration: 2.0,
            },
            Segment {
                driver: 0,
                behavior: Behavior::Texting,
                start: 2.0,
                duration: 2.0,
            },
        ]
    }

    fn faulty_config(seed: u64, loss: f64, jitter: f64, duplicate: f64) -> CampaignConfig {
        // Generous drain so worst-case backoff chains can finish; a faster
        // initial RTO keeps the chains short.
        let mut config = CampaignConfig {
            seed,
            drain_grace: 25.0,
            ..CampaignConfig::default()
        };
        config.link.loss = loss;
        config.link.jitter = jitter;
        config.link.faults.duplicate = duplicate;
        config.retransmit.ack_timeout = 0.15;
        config
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn ingested_set_equals_polled_set_under_any_faults(
            seed in 0u64..1_000_000,
            loss in 0.0f64..0.25,
            jitter in 0.0f64..0.05,
            duplicate in 0.0f64..0.5,
        ) {
            let world = Arc::new(DrivingWorld::new(WorldConfig::default()));
            let config = faulty_config(seed, loss, jitter, duplicate);
            let rec = run_session(&world, 0, &schedule(), &config).unwrap();

            // No loss: with retransmission on, everything polled arrives.
            prop_assert_eq!(
                rec.transport.readings_ingested,
                rec.transport.readings_polled,
                "seed {} loss {} jitter {} dup {}",
                seed, loss, jitter, duplicate
            );
            // No duplicates: every stream's gap accounting closes at zero
            // and duplicate deliveries were discarded, not ingested.
            for h in [rec.transport.imu_stream, rec.transport.camera_stream] {
                let h = h.expect("both streams delivered");
                prop_assert_eq!(h.gaps, 0);
                prop_assert_eq!(h.delivered, h.highest_seq as u64 + 1);
            }
            // Sorted after alignment, despite jitter-induced reordering.
            prop_assert!(rec.imu.windows(2).all(|w| w[0].t < w[1].t));
            prop_assert!(rec.frames.windows(2).all(|w| w[0].t <= w[1].t));
        }

        #[test]
        fn fire_and_forget_never_ingests_more_than_polled(
            seed in 0u64..1_000_000,
            loss in 0.0f64..0.4,
            duplicate in 0.0f64..0.5,
        ) {
            let world = Arc::new(DrivingWorld::new(WorldConfig::default()));
            let mut config = faulty_config(seed, loss, 0.01, duplicate);
            config.retransmit = RetransmitConfig::disabled();
            let rec = run_session(&world, 0, &schedule(), &config).unwrap();
            // Dedupe holds even without acks: duplication can never inflate
            // the recording past what was polled.
            prop_assert!(rec.transport.readings_ingested <= rec.transport.readings_polled);
            prop_assert!(rec.imu.windows(2).all(|w| w[0].t < w[1].t));
        }

        #[test]
        fn faulty_sessions_replay_identically_from_their_seed(
            seed in 0u64..1_000_000,
            loss in 0.0f64..0.3,
            duplicate in 0.0f64..0.4,
        ) {
            let world = Arc::new(DrivingWorld::new(WorldConfig::default()));
            let config = faulty_config(seed, loss, 0.02, duplicate);
            let a = run_session(&world, 0, &schedule(), &config).unwrap();
            let b = run_session(&world, 0, &schedule(), &config).unwrap();
            prop_assert_eq!(a, b);
        }
    }
}
