//! Property-based tests for the sharding invariants of DESIGN.md §14:
//! routing stability, shard-count transparency of the merged canonical
//! TSDB digest, and the backpressure rollup's monotonicity.

use std::collections::BTreeMap;

use darnet_collect::{
    shard_of, BackpressureConfig, Batch, Controller, ControllerConfig, FleetAdmission,
    SensorReading, ShardConfig, ShardedController, StampedReading,
};
use darnet_sim::ImuSample;
use proptest::prelude::*;

fn imu_batch(agent: u32, seq: u32, t: f64) -> Batch {
    Batch {
        agent_id: agent,
        seq,
        readings: vec![
            StampedReading {
                timestamp: t,
                reading: SensorReading::Imu(ImuSample {
                    accel: [t as f32, agent as f32, 9.8],
                    gyro: [seq as f32 * 0.1, 0.0, 0.0],
                    gravity: [0.0, 0.0, 9.8],
                    rotation: [0.0; 3],
                }),
            },
            StampedReading {
                timestamp: t + 0.1,
                reading: SensorReading::Imu(ImuSample {
                    accel: [t as f32 + 1.0, agent as f32, 9.8],
                    gyro: [0.0; 3],
                    gravity: [0.0, 0.0, 9.8],
                    rotation: [0.0; 3],
                }),
            },
        ],
    }
}

/// Seeded arbitrary traffic: per-agent monotone seq, arbitrary
/// interleaving across agents.
fn traffic_from(plan: &[(u8, u8)]) -> Vec<(f64, Batch)> {
    let mut next_seq: BTreeMap<u32, u32> = BTreeMap::new();
    let mut out = Vec::with_capacity(plan.len());
    for (i, &(agent, jitter)) in plan.iter().enumerate() {
        let agent = agent as u32;
        let seq = *next_seq.entry(agent).or_insert(0);
        next_seq.insert(agent, seq + 1);
        let at = i as f64 * 0.05 + jitter as f64 * 1e-4;
        out.push((at, imu_batch(agent, seq, at)));
    }
    out
}

proptest! {
    /// The same agent always routes to the same shard, and the result is
    /// always in range — for any shard count.
    #[test]
    fn routing_is_stable_and_in_range(
        agents in prop::collection::vec(any::<u32>(), 1..64),
        shards in 1usize..32,
    ) {
        for &agent in &agents {
            let s = shard_of(agent, shards);
            prop_assert!(s < shards);
            prop_assert_eq!(s, shard_of(agent, shards));
        }
    }

    /// Shard-count transparency: for ANY interleaved per-agent traffic
    /// and ANY shard count, the merged canonical TSDB digest, ingest
    /// counters, and per-stream healths equal a single controller's fed
    /// the same offers in the same order. Per-agent sample ordering
    /// survives sharding because each agent's stream lives wholly inside
    /// one shard's FIFO.
    #[test]
    fn merged_digest_matches_single_controller(
        plan in prop::collection::vec((0u8..12, 0u8..50), 1..80),
        shards in 1usize..9,
    ) {
        let traffic = traffic_from(&plan);

        let mut single = Controller::new(ControllerConfig::default());
        for (at, batch) in &traffic {
            single.offer_at(*at, batch, None).expect("single ingest");
        }

        let mut sharded = ShardedController::new(ShardConfig {
            shards,
            ..ShardConfig::default()
        }).expect("config");
        for (at, batch) in &traffic {
            sharded.offer_at(*at, batch);
        }
        sharded.drain().expect("drain");

        prop_assert_eq!(
            sharded.tsdb_digest(),
            single.tsdb().canonical_fingerprint()
        );
        prop_assert_eq!(sharded.ingest_stats(), single.ingest_stats());
        let mut single_healths = single.stream_healths();
        single_healths.sort_by_key(|h| h.agent_id);
        prop_assert_eq!(sharded.stream_healths(), single_healths);
    }

    /// The backpressure rollup is monotone: more queue fill or more
    /// shedding never yields a LESS severe signal.
    #[test]
    fn backpressure_signal_is_monotone(
        q1 in 0.0f64..1.0, q2 in 0.0f64..1.0,
        s1 in 0.0f64..1.0, s2 in 0.0f64..1.0,
    ) {
        let bp = BackpressureConfig::default();
        let (qlo, qhi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let (slo, shi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        prop_assert!(bp.signal(qlo, slo) <= bp.signal(qhi, shi));
        prop_assert_eq!(bp.signal(0.0, 0.0), FleetAdmission::Accept);
        prop_assert_eq!(bp.signal(1.0, 1.0), FleetAdmission::Shed);
    }
}
