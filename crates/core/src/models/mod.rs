//! The analytics engine's per-stream models: the frame CNN, the IMU
//! bidirectional LSTM, and the IMU SVM baseline.

mod cnn;
mod rnn;
mod svm;

pub use cnn::{CnnConfig, FrameCnn};
pub use rnn::{ImuRnn, RnnConfig};
pub use svm::ImuSvm;
