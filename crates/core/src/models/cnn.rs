//! The frame classifier: a mini-Inception CNN.
//!
//! DarNet fine-tunes Inception-V3; at CPU-reproduction scale we keep the
//! architecture *family* — a convolutional stem followed by inception
//! blocks (parallel 1×1/3×3/5×5/pool branches, channel-concatenated) and
//! global average pooling — and reproduce the transfer-learning recipe by
//! pre-training on a proxy task, then swapping the final fully connected
//! layer for the target class count (paper §4.2 "Frame-Sequence
//! Architecture").

use darnet_nn::{
    softmax, softmax_cross_entropy, softmax_inplace, AvgPool2d, Conv2d, Dense, Dropout, Flatten,
    InceptionBlock, InceptionChannels, Layer, MaxPool2d, Mode, Optimizer, Relu, Sequential, Sgd,
};
use darnet_tensor::{Parallelism, SplitMix64, Tensor, Workspace};

use crate::Result;

/// Hyperparameters for [`FrameCnn`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CnnConfig {
    /// Square input edge length (the collection frames are 48×48).
    pub input_size: usize,
    /// Output classes.
    pub classes: usize,
    /// Width multiplier for every channel count (1.0 = the default small
    /// model; larger is slower and more accurate).
    pub width: f32,
    /// SGD learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Minibatch size.
    pub batch_size: usize,
    /// Dropout probability before the head.
    pub dropout: f32,
}

impl Default for CnnConfig {
    fn default() -> Self {
        CnnConfig {
            input_size: 48,
            classes: 6,
            width: 1.0,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            batch_size: 32,
            dropout: 0.1,
        }
    }
}

fn scaled(base: usize, width: f32) -> usize {
    ((base as f32 * width).round() as usize).max(1)
}

/// The DarNet frame model: stem convolution → inception blocks → global
/// average pooling → dense head.
pub struct FrameCnn {
    features: Sequential,
    head: Dense,
    config: CnnConfig,
    feat_dim: usize,
    rng: SplitMix64,
    /// Reusable inference buffers for the zero-alloc prediction path.
    ws: Workspace,
}

impl FrameCnn {
    /// Builds an untrained CNN.
    pub fn new(config: CnnConfig, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let w = config.width;
        let mut features = Sequential::new();
        // Stem: 1 → 8 channels, preserve 48×48, then halve.
        features.push(Conv2d::square(1, scaled(8, w), 3, 1, 1, &mut rng));
        features.push(Relu::new());
        features.push(MaxPool2d::new(2, 2)); // 24×24
                                             // Inception block A: 8 → 16 channels.
        let ch_a = InceptionChannels {
            c1: scaled(4, w),
            c3_reduce: scaled(4, w),
            c3: scaled(6, w),
            c5_reduce: scaled(2, w),
            c5: scaled(3, w),
            pool_proj: scaled(3, w),
        };
        features.push(InceptionBlock::new(scaled(8, w), ch_a, &mut rng));
        features.push(MaxPool2d::new(2, 2)); // 12×12
                                             // Inception block B: 16 → 24 channels.
        let ch_b = InceptionChannels {
            c1: scaled(6, w),
            c3_reduce: scaled(6, w),
            c3: scaled(10, w),
            c5_reduce: scaled(3, w),
            c5: scaled(4, w),
            pool_proj: scaled(4, w),
        };
        features.push(InceptionBlock::new(ch_a.total(), ch_b, &mut rng));
        features.push(MaxPool2d::new(2, 2)); // 6×6
                                             // Coarse spatial pooling: keep a small spatial layout rather than
                                             // full global average pooling (pose classes are distinguished by
                                             // *where* activations fire; Inception-V3 affords GAP only because
                                             // it carries 2048 channels).
        let pool2 = |n: usize| if n >= 2 { (n - 2) / 2 + 1 } else { n };
        let mut spatial = pool2(pool2(pool2(config.input_size)));
        if spatial >= 2 {
            features.push(AvgPool2d::new(2, 2));
            spatial = pool2(spatial);
        }
        features.push(Flatten::new());
        let feat_dim_in = ch_b.total() * spatial * spatial;
        let feat_dim = (ch_b.total() * 3).max(16);
        features.push(Dense::new(feat_dim_in, feat_dim, &mut rng));
        features.push(Relu::new());
        if config.dropout > 0.0 {
            features.push(Dropout::new(config.dropout, rng.next_u64()));
        }
        let head = Dense::new(feat_dim, config.classes, &mut rng);
        FrameCnn {
            features,
            head,
            config,
            feat_dim,
            rng,
            ws: Workspace::new(),
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &CnnConfig {
        &self.config
    }

    /// Routes a [`Parallelism`] handle to every layer so the heavy tensor
    /// products (im2col, matmul) fan out across threads.
    pub fn set_parallelism(&mut self, par: Parallelism) {
        self.features.set_parallelism(par);
        self.head.set_parallelism(par);
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.config.classes
    }

    /// Total trainable parameter count.
    pub fn param_count(&mut self) -> usize {
        self.features.param_count() + self.head.param_count()
    }

    /// Replaces the final fully connected layer with a fresh one for
    /// `classes` outputs — the paper's fine-tuning step ("we modify the
    /// final fully connected layer of this network, such that the number
    /// of outputs corresponds to the number of driving classes").
    pub fn replace_head(&mut self, classes: usize) {
        self.head = Dense::new(self.feat_dim, classes, &mut self.rng);
        self.config.classes = classes;
    }

    /// Forward pass to logits.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn forward(&mut self, frames: &Tensor, mode: Mode) -> Result<Tensor> {
        let feats = self.features.forward(frames, mode)?;
        Ok(self.head.forward(&feats, mode)?)
    }

    /// One SGD step on a minibatch. Returns the batch loss.
    ///
    /// # Errors
    ///
    /// Propagates model errors.
    pub fn train_step(&mut self, frames: &Tensor, labels: &[usize], opt: &mut Sgd) -> Result<f32> {
        let logits = self.forward(frames, Mode::Train)?;
        let (loss, grad) = softmax_cross_entropy(&logits, labels)?;
        let gfeat = self.head.backward(&grad)?;
        self.features.backward(&gfeat)?;
        let mut params = self.features.params_mut();
        params.extend(self.head.params_mut());
        opt.step(&mut params)?;
        Ok(loss)
    }

    /// Trains for `epochs` passes over `(frames, labels)` with shuffled
    /// minibatches. Returns the mean loss per epoch.
    ///
    /// # Errors
    ///
    /// Propagates model errors; diverged training surfaces as
    /// [`darnet_nn::NnError::Diverged`].
    pub fn fit(&mut self, frames: &Tensor, labels: &[usize], epochs: usize) -> Result<Vec<f32>> {
        let n = frames.dims()[0];
        let mut opt = Sgd::with_momentum(self.config.lr, self.config.momentum)
            .weight_decay(self.config.weight_decay)
            .clip_norm(5.0);
        let mut order: Vec<usize> = (0..n).collect();
        let mut epoch_losses = Vec::with_capacity(epochs);
        let bs = self.config.batch_size.max(1);
        let dims = frames.dims().to_vec();
        let img = dims[1] * dims[2] * dims[3];
        for epoch in 0..epochs {
            self.rng.shuffle(&mut order);
            opt.lr = self.config.lr / (1.0 + 0.3 * epoch as f32);
            let mut total = 0.0f32;
            let mut batches = 0usize;
            for chunk in order.chunks(bs) {
                let mut data = Vec::with_capacity(chunk.len() * img);
                let mut blabels = Vec::with_capacity(chunk.len());
                for &i in chunk {
                    data.extend_from_slice(&frames.data()[i * img..(i + 1) * img]);
                    blabels.push(labels[i]);
                }
                let batch = Tensor::from_vec(data, &[chunk.len(), dims[1], dims[2], dims[3]])?;
                total += self.train_step(&batch, &blabels, &mut opt)?;
                batches += 1;
            }
            epoch_losses.push(total / batches.max(1) as f32);
        }
        Ok(epoch_losses)
    }

    /// Class-probability predictions, `[n, classes]`, computed in batches.
    ///
    /// # Errors
    ///
    /// Propagates model errors.
    // darlint: cold — owned-output twin of predict_proba_into; batches through the allocating forward path by design
    pub fn predict_proba(&mut self, frames: &Tensor) -> Result<Tensor> {
        let dims = frames.dims().to_vec();
        let n = dims[0];
        let img = dims[1] * dims[2] * dims[3];
        let bs = 64usize;
        let mut rows = Vec::with_capacity(n * self.config.classes);
        for start in (0..n).step_by(bs) {
            let end = (start + bs).min(n);
            let batch = Tensor::from_vec(
                frames.data()[start * img..end * img].to_vec(),
                &[end - start, dims[1], dims[2], dims[3]],
            )?;
            let logits = self.forward(&batch, Mode::Eval)?;
            let probs = softmax(&logits)?;
            rows.extend_from_slice(probs.data());
        }
        Ok(Tensor::from_vec(rows, &[n, self.config.classes])?)
    }

    /// [`FrameCnn::predict_proba`] writing row-major probabilities into a
    /// caller-provided buffer (cleared first), running every layer through
    /// its workspace-backed `forward_into` path. After one warm-up call at
    /// a given batch shape the model allocates nothing; outputs are
    /// bitwise-identical to [`FrameCnn::predict_proba`].
    ///
    /// # Errors
    ///
    /// Propagates model errors.
    // darlint: hot
    pub fn predict_proba_into(&mut self, frames: &Tensor, out: &mut Vec<f32>) -> Result<()> {
        let d = frames.dims();
        let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
        let img = c * h * w;
        let bs = 64usize;
        out.clear();
        out.reserve(n * self.config.classes);
        for start in (0..n).step_by(bs) {
            let end = (start + bs).min(n);
            let mut batch = self.ws.checkout(&[end - start, c, h, w]);
            batch
                .data_mut()
                .copy_from_slice(&frames.data()[start * img..end * img]);
            let feats = self
                .features
                .forward_into(&batch, Mode::Eval, &mut self.ws)?;
            self.ws.restore(batch);
            let mut logits = self.head.forward_into(&feats, Mode::Eval, &mut self.ws)?;
            self.ws.restore(feats);
            softmax_inplace(&mut logits)?;
            out.extend_from_slice(logits.data());
            self.ws.restore(logits);
        }
        Ok(())
    }

    /// Raw logits for a batch (used by the distillation trainer, which
    /// matches pre-softmax outputs).
    ///
    /// # Errors
    ///
    /// Propagates model errors.
    pub fn logits(&mut self, frames: &Tensor) -> Result<Tensor> {
        self.forward(frames, Mode::Eval)
    }

    /// Hard class predictions.
    ///
    /// # Errors
    ///
    /// Propagates model errors.
    pub fn predict(&mut self, frames: &Tensor) -> Result<Vec<usize>> {
        Ok(self.predict_proba(frames)?.argmax_rows()?)
    }

    /// Top-1 accuracy against `labels`.
    ///
    /// # Errors
    ///
    /// Propagates model errors.
    pub fn evaluate(&mut self, frames: &Tensor, labels: &[usize]) -> Result<f32> {
        let preds = self.predict(frames)?;
        let correct = preds.iter().zip(labels).filter(|(a, b)| a == b).count();
        Ok(correct as f32 / labels.len().max(1) as f32)
    }

    /// Mutable access to every trainable parameter, features first, head
    /// last (the serialization order used by `model_io`).
    pub fn all_params_mut(&mut self) -> Vec<&mut darnet_nn::Param> {
        let mut params = self.features.params_mut();
        params.extend(self.head.params_mut());
        params
    }

    /// Copies every parameter value from `other` (which must have the same
    /// architecture) — used to initialize dCNN students from the trained
    /// teacher, as the paper does (§4.3 "we reuse the Inception-V3
    /// architecture and initialize the weights using the CNN trained on
    /// the driving dataset").
    ///
    /// # Errors
    ///
    /// Returns an error if the architectures do not match.
    pub fn copy_params_from(&mut self, other: &mut FrameCnn) -> Result<()> {
        let mut mine = self.features.params_mut();
        mine.extend(self.head.params_mut());
        let mut theirs = other.features.params_mut();
        theirs.extend(other.head.params_mut());
        if mine.len() != theirs.len() {
            return Err(crate::CoreError::Dataset(format!(
                "architecture mismatch: {} vs {} parameters",
                mine.len(),
                theirs.len()
            )));
        }
        for (m, t) in mine.iter_mut().zip(theirs.iter()) {
            if m.value.dims() != t.value.dims() {
                return Err(crate::CoreError::Dataset(format!(
                    "parameter shape mismatch: {:?} vs {:?}",
                    m.value.dims(),
                    t.value.dims()
                )));
            }
            m.value = t.value.clone();
        }
        Ok(())
    }

    /// One distillation step (paper §4.3, step 4): minimize the L2
    /// euclidean distance between this model's final-layer output and the
    /// teacher's on the same frames. Outputs are compared after softmax —
    /// probability vectors are bounded, which keeps the unsupervised
    /// training stable regardless of how confident (large-logit) the
    /// teacher has become.
    ///
    /// # Errors
    ///
    /// Propagates model errors.
    pub fn distill_step(
        &mut self,
        frames: &Tensor,
        teacher_logits: &Tensor,
        opt: &mut Sgd,
    ) -> Result<f32> {
        self.distill_step_with_temperature(frames, teacher_logits, opt, 1.0)
    }

    /// [`FrameCnn::distill_step`] with temperature-softened outputs:
    /// both models' logits are divided by `temperature` before the
    /// softmax, which keeps gradients informative when the teacher is
    /// very confident (standard knowledge-distillation practice).
    ///
    /// # Errors
    ///
    /// Propagates model errors.
    pub fn distill_step_with_temperature(
        &mut self,
        frames: &Tensor,
        teacher_logits: &Tensor,
        opt: &mut Sgd,
        temperature: f32,
    ) -> Result<f32> {
        let inv_t = 1.0 / temperature.max(1e-3);
        let logits = self.forward(frames, Mode::Train)?.scale(inv_t);
        let p = softmax(&logits)?;
        let pt = softmax(&teacher_logits.scale(inv_t))?;
        let (loss, gprob) = darnet_nn::l2_distill_loss(&p, &pt)?;
        // Backpropagate through the softmax: for each row,
        // dL/dz_i = p_i (g_i − Σ_j g_j p_j).
        let (b, c) = (p.dims()[0], p.dims()[1]);
        let mut grad = Tensor::zeros(&[b, c]);
        for r in 0..b {
            let prow = &p.data()[r * c..(r + 1) * c];
            let grow = &gprob.data()[r * c..(r + 1) * c];
            let dot: f32 = prow.iter().zip(grow).map(|(&pi, &gi)| pi * gi).sum();
            for i in 0..c {
                grad.data_mut()[r * c + i] = prow[i] * (grow[i] - dot);
            }
        }
        // Chain rule through the temperature scaling (z' = z / T), with
        // the conventional T² loss compensation so the gradient magnitude
        // is temperature-independent to first order.
        let grad = grad.scale(inv_t * temperature * temperature);
        let gfeat = self.head.backward(&grad)?;
        self.features.backward(&gfeat)?;
        let mut params = self.features.params_mut();
        params.extend(self.head.params_mut());
        opt.step(&mut params)?;
        Ok(loss)
    }
}

impl std::fmt::Debug for FrameCnn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameCnn")
            .field("config", &self.config)
            .field("layers", &self.features.layer_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darnet_sim::{Behavior, DriverProfile, FrameRenderer};

    fn tiny_config() -> CnnConfig {
        CnnConfig {
            input_size: 24,
            classes: 3,
            width: 0.5,
            batch_size: 16,
            lr: 0.05,
            ..CnnConfig::default()
        }
    }

    fn tiny_dataset(n_per_class: usize, seed: u64) -> (Tensor, Vec<usize>) {
        // Visually distinct classes at 24×24: normal / reaching / hair.
        let renderer = FrameRenderer::new(seed).with_size(24).with_noise(0.02);
        let classes = [
            Behavior::NormalDriving,
            Behavior::Reaching,
            Behavior::HairMakeup,
        ];
        let driver = DriverProfile::generate(0, 42);
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for (ci, &c) in classes.iter().enumerate() {
            for k in 0..n_per_class {
                let f = renderer.render(&driver, c, k as f64 * 0.37);
                data.extend_from_slice(f.pixels());
                labels.push(ci);
            }
        }
        let n = labels.len();
        (Tensor::from_vec(data, &[n, 1, 24, 24]).unwrap(), labels)
    }

    #[test]
    fn forward_produces_class_logits() {
        let mut cnn = FrameCnn::new(tiny_config(), 1);
        let x = Tensor::zeros(&[2, 1, 24, 24]);
        let logits = cnn.forward(&x, Mode::Eval).unwrap();
        assert_eq!(logits.dims(), &[2, 3]);
        assert!(cnn.param_count() > 100);
    }

    #[test]
    fn cnn_learns_visually_distinct_classes() {
        let mut cnn = FrameCnn::new(
            CnnConfig {
                width: 1.0,
                ..tiny_config()
            },
            2,
        );
        let (x, labels) = tiny_dataset(20, 7);
        let losses = cnn.fit(&x, &labels, 20).unwrap();
        assert!(
            losses.last().unwrap() < &losses[0],
            "loss did not decrease: {losses:?}"
        );
        let acc = cnn.evaluate(&x, &labels).unwrap();
        assert!(acc > 0.6, "train accuracy {acc}");
    }

    #[test]
    fn predict_proba_rows_are_distributions() {
        let mut cnn = FrameCnn::new(tiny_config(), 3);
        let (x, _) = tiny_dataset(3, 9);
        let p = cnn.predict_proba(&x).unwrap();
        assert_eq!(p.dims(), &[9, 3]);
        for r in 0..9 {
            let s: f32 = p.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn replace_head_changes_class_count() {
        let mut cnn = FrameCnn::new(tiny_config(), 4);
        cnn.replace_head(5);
        assert_eq!(cnn.classes(), 5);
        let x = Tensor::zeros(&[1, 1, 24, 24]);
        let logits = cnn.forward(&x, Mode::Eval).unwrap();
        assert_eq!(logits.dims(), &[1, 5]);
    }

    #[test]
    fn distill_step_reduces_l2_gap() {
        let mut teacher = FrameCnn::new(tiny_config(), 5);
        let mut student = FrameCnn::new(tiny_config(), 6);
        let (x, _) = tiny_dataset(8, 11);
        let t_logits = teacher.logits(&x).unwrap();
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let first = student.distill_step(&x, &t_logits, &mut opt).unwrap();
        let mut last = first;
        for _ in 0..15 {
            last = student.distill_step(&x, &t_logits, &mut opt).unwrap();
        }
        assert!(last < first, "distillation loss {first} -> {last}");
    }
}
