//! The SVM baseline for the IMU stream (paper §5.2: the CNN+SVM ensemble
//! that the CNN+RNN architecture edges out by ~1%).

use darnet_nn::{LinearSvm, SvmConfig};
use darnet_tensor::{SplitMix64, Tensor};

use crate::dataset::Standardizer;
use crate::error::CoreError;
use crate::Result;

/// A linear one-vs-rest SVM over flattened, standardized IMU windows.
#[derive(Debug, Clone)]
pub struct ImuSvm {
    svm: LinearSvm,
    standardizer: Option<Standardizer>,
    config: SvmConfig,
    window_len: usize,
    features: usize,
    classes: usize,
}

impl ImuSvm {
    /// Builds an untrained SVM for `[n, window_len, features]` windows.
    pub fn new(window_len: usize, features: usize, classes: usize, config: SvmConfig) -> Self {
        ImuSvm {
            svm: LinearSvm::new(window_len * features, classes),
            standardizer: None,
            config,
            window_len,
            features,
            classes,
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    fn flatten(&self, windows: &Tensor) -> Result<Tensor> {
        let dims = windows.dims();
        if dims.len() != 3 || dims[1] != self.window_len || dims[2] != self.features {
            return Err(CoreError::Dataset(format!(
                "expected [n, {}, {}] windows, got {:?}",
                self.window_len, self.features, dims
            )));
        }
        Ok(windows.reshape(&[dims[0], self.window_len * self.features])?)
    }

    /// Trains on `[n, window_len, features]` windows with class labels,
    /// fitting the feature standardizer first.
    ///
    /// # Errors
    ///
    /// Propagates shape/label errors.
    pub fn fit(&mut self, windows: &Tensor, labels: &[usize], rng: &mut SplitMix64) -> Result<()> {
        let std = Standardizer::fit(windows)?;
        let x = self.flatten(&std.apply(windows))?;
        self.standardizer = Some(std);
        self.svm.fit(&x, labels, &self.config, rng)?;
        Ok(())
    }

    /// Pseudo-probabilities `[n, classes]` (softmax over margins).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotReady`] before [`ImuSvm::fit`].
    pub fn predict_proba(&self, windows: &Tensor) -> Result<Tensor> {
        let std = self
            .standardizer
            .as_ref()
            .ok_or_else(|| CoreError::NotReady("imu svm not fitted".into()))?;
        let x = self.flatten(&std.apply(windows))?;
        Ok(self.svm.predict_proba(&x)?)
    }

    /// Hard class predictions.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotReady`] before [`ImuSvm::fit`].
    pub fn predict(&self, windows: &Tensor) -> Result<Vec<usize>> {
        Ok(self.predict_proba(windows)?.argmax_rows()?)
    }

    /// Top-1 accuracy against `labels`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotReady`] before [`ImuSvm::fit`].
    pub fn evaluate(&self, windows: &Tensor, labels: &[usize]) -> Result<f32> {
        let preds = self.predict(windows)?;
        let correct = preds.iter().zip(labels).filter(|(a, b)| a == b).count();
        Ok(correct as f32 / labels.len().max(1) as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_windows(n_per_class: usize, seed: u64) -> (Tensor, Vec<usize>) {
        // Two classes separated by the mean of channel 0.
        let mut rng = SplitMix64::new(seed);
        let (t, f) = (5usize, 3usize);
        let n = n_per_class * 2;
        let mut data = Vec::with_capacity(n * t * f);
        let mut labels = Vec::with_capacity(n);
        for c in 0..2 {
            for _ in 0..n_per_class {
                labels.push(c);
                for _ in 0..t {
                    data.push(if c == 0 { -1.0 } else { 1.0 } + rng.normal() * 0.3);
                    data.push(rng.normal());
                    data.push(rng.normal());
                }
            }
        }
        (Tensor::from_vec(data, &[n, t, f]).unwrap(), labels)
    }

    #[test]
    fn svm_learns_toy_windows() {
        let mut svm = ImuSvm::new(5, 3, 2, SvmConfig::default());
        let (x, labels) = toy_windows(40, 1);
        let mut rng = SplitMix64::new(2);
        svm.fit(&x, &labels, &mut rng).unwrap();
        let acc = svm.evaluate(&x, &labels).unwrap();
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn predict_before_fit_errors() {
        let svm = ImuSvm::new(5, 3, 2, SvmConfig::default());
        let x = Tensor::zeros(&[1, 5, 3]);
        assert!(matches!(svm.predict_proba(&x), Err(CoreError::NotReady(_))));
    }

    #[test]
    fn wrong_window_shape_is_rejected() {
        let mut svm = ImuSvm::new(5, 3, 2, SvmConfig::default());
        let (x, labels) = toy_windows(5, 3);
        let mut rng = SplitMix64::new(4);
        svm.fit(&x, &labels, &mut rng).unwrap();
        let bad = Tensor::zeros(&[1, 4, 3]);
        assert!(svm.predict_proba(&bad).is_err());
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut svm = ImuSvm::new(5, 3, 2, SvmConfig::default());
        let (x, labels) = toy_windows(10, 5);
        let mut rng = SplitMix64::new(6);
        svm.fit(&x, &labels, &mut rng).unwrap();
        let p = svm.predict_proba(&x).unwrap();
        for r in 0..x.dims()[0] {
            let s: f32 = p.data()[r * 2..(r + 1) * 2].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }
}
