//! The IMU-sequence classifier: a deep bidirectional LSTM over 20-step
//! windows (paper §4.2 "IMU-Sequence Architecture": 2 bidirectional LSTM
//! cells of 64 hidden units, 4 Hz sampling, 5 s windows, softmax output).

use darnet_nn::{
    softmax, softmax_cross_entropy, softmax_inplace, Adam, DeepBiLstmClassifier, Mode, Optimizer,
};
use darnet_tensor::{Parallelism, SplitMix64, Tensor, Workspace};

use crate::dataset::Standardizer;
use crate::error::CoreError;
use crate::Result;

/// Hyperparameters for [`ImuRnn`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RnnConfig {
    /// Features per timestep (12 IMU channels).
    pub features: usize,
    /// Hidden units per direction (paper: 64).
    pub hidden: usize,
    /// Stacked bidirectional layers (paper: 2).
    pub depth: usize,
    /// Output classes (3 phone orientations).
    pub classes: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Minibatch size.
    pub batch_size: usize,
}

impl Default for RnnConfig {
    fn default() -> Self {
        RnnConfig {
            features: 12,
            hidden: 64,
            depth: 2,
            classes: 3,
            lr: 0.01,
            batch_size: 32,
        }
    }
}

/// The trained IMU model: standardization + stacked BiLSTM + softmax head.
pub struct ImuRnn {
    model: DeepBiLstmClassifier,
    standardizer: Option<Standardizer>,
    config: RnnConfig,
    rng: SplitMix64,
    /// Reusable inference buffers for the zero-alloc prediction path.
    ws: Workspace,
}

impl ImuRnn {
    /// Builds an untrained model.
    pub fn new(config: RnnConfig, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let model = DeepBiLstmClassifier::new(
            config.features,
            config.hidden,
            config.depth,
            config.classes,
            &mut rng,
        );
        ImuRnn {
            model,
            standardizer: None,
            config,
            rng,
            ws: Workspace::new(),
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &RnnConfig {
        &self.config
    }

    /// Routes a [`Parallelism`] handle through the stacked BiLSTM so gate
    /// products parallelize and the two directions run concurrently.
    pub fn set_parallelism(&mut self, par: Parallelism) {
        self.model.set_parallelism(par);
    }

    /// Total trainable parameter count.
    pub fn param_count(&mut self) -> usize {
        self.model.param_count()
    }

    /// Trains on `[n, time, features]` windows with 3-class labels,
    /// fitting the feature standardizer on this data first. Returns mean
    /// loss per epoch.
    ///
    /// # Errors
    ///
    /// Propagates model errors.
    pub fn fit(&mut self, windows: &Tensor, labels: &[usize], epochs: usize) -> Result<Vec<f32>> {
        let std = Standardizer::fit(windows)?;
        let x = std.apply(windows);
        self.standardizer = Some(std);
        let dims = x.dims().to_vec();
        let (n, t, f) = (dims[0], dims[1], dims[2]);
        let row = t * f;
        let mut opt = Adam::new(self.config.lr);
        let mut order: Vec<usize> = (0..n).collect();
        let bs = self.config.batch_size.max(1);
        let mut epoch_losses = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            self.rng.shuffle(&mut order);
            let mut total = 0.0f32;
            let mut batches = 0usize;
            for chunk in order.chunks(bs) {
                let mut data = Vec::with_capacity(chunk.len() * row);
                let mut blabels = Vec::with_capacity(chunk.len());
                for &i in chunk {
                    data.extend_from_slice(&x.data()[i * row..(i + 1) * row]);
                    blabels.push(labels[i]);
                }
                let batch = Tensor::from_vec(data, &[chunk.len(), t, f])?;
                let logits = self.model.forward(&batch, Mode::Train)?;
                let (loss, grad) = softmax_cross_entropy(&logits, &blabels)?;
                self.model.backward(&grad)?;
                opt.step(&mut self.model.params_mut())?;
                total += loss;
                batches += 1;
            }
            epoch_losses.push(total / batches.max(1) as f32);
        }
        Ok(epoch_losses)
    }

    /// Mutable access to every trainable parameter (serialization order).
    pub fn all_params_mut(&mut self) -> Vec<&mut darnet_nn::Param> {
        self.model.params_mut()
    }

    /// The fitted standardizer's `(mean, std)` rows, if fitted.
    pub fn standardizer_params(&self) -> Option<(Tensor, Tensor)> {
        self.standardizer.as_ref().map(|s| s.to_tensors())
    }

    /// Installs a standardizer from `(mean, std)` rows (used when loading
    /// a saved model).
    ///
    /// # Errors
    ///
    /// Returns an error if the rows have mismatched lengths.
    pub fn set_standardizer_params(&mut self, mean: &Tensor, std: &Tensor) -> Result<()> {
        self.standardizer = Some(Standardizer::from_tensors(mean, std)?);
        Ok(())
    }

    /// Class probabilities, `[n, classes]`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotReady`] before [`ImuRnn::fit`].
    // darlint: cold — owned-output twin of predict_proba_into; batches through the allocating forward path by design
    pub fn predict_proba(&mut self, windows: &Tensor) -> Result<Tensor> {
        let std = self
            .standardizer
            .as_ref()
            .ok_or_else(|| CoreError::NotReady("imu rnn not fitted".into()))?;
        let x = std.apply(windows);
        let dims = x.dims().to_vec();
        let (n, t, f) = (dims[0], dims[1], dims[2]);
        let row = t * f;
        let bs = 64usize;
        let mut rows = Vec::with_capacity(n * self.config.classes);
        for start in (0..n).step_by(bs) {
            let end = (start + bs).min(n);
            let batch = Tensor::from_vec(
                x.data()[start * row..end * row].to_vec(),
                &[end - start, t, f],
            )?;
            let logits = self.model.forward(&batch, Mode::Eval)?;
            rows.extend_from_slice(softmax(&logits)?.data());
        }
        Ok(Tensor::from_vec(rows, &[n, self.config.classes])?)
    }

    /// [`ImuRnn::predict_proba`] writing row-major probabilities into a
    /// caller-provided buffer (cleared first): the windows are
    /// standardized inside a workspace checkout and the stacked BiLSTM
    /// runs through its `forward_into` path, so after one warm-up call at
    /// a given batch shape the model allocates nothing. Outputs are
    /// bitwise-identical to [`ImuRnn::predict_proba`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotReady`] before [`ImuRnn::fit`].
    // darlint: hot
    pub fn predict_proba_into(&mut self, windows: &Tensor, out: &mut Vec<f32>) -> Result<()> {
        let std = self
            .standardizer
            .as_ref()
            .ok_or_else(|| CoreError::NotReady("imu rnn not fitted".into()))?;
        let d = windows.dims();
        let (n, t, f) = (d[0], d[1], d[2]);
        let row = t * f;
        let mut x = self.ws.checkout(&[n, t, f]);
        x.data_mut().copy_from_slice(windows.data());
        std.apply_inplace(&mut x);
        let bs = 64usize;
        out.clear();
        out.reserve(n * self.config.classes);
        for start in (0..n).step_by(bs) {
            let end = (start + bs).min(n);
            let mut batch = self.ws.checkout(&[end - start, t, f]);
            batch
                .data_mut()
                .copy_from_slice(&x.data()[start * row..end * row]);
            let mut logits = self.model.forward_into(&batch, Mode::Eval, &mut self.ws)?;
            self.ws.restore(batch);
            softmax_inplace(&mut logits)?;
            out.extend_from_slice(logits.data());
            self.ws.restore(logits);
        }
        self.ws.restore(x);
        Ok(())
    }

    /// Hard class predictions.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotReady`] before [`ImuRnn::fit`].
    pub fn predict(&mut self, windows: &Tensor) -> Result<Vec<usize>> {
        Ok(self.predict_proba(windows)?.argmax_rows()?)
    }

    /// Top-1 accuracy against `labels`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotReady`] before [`ImuRnn::fit`].
    pub fn evaluate(&mut self, windows: &Tensor, labels: &[usize]) -> Result<f32> {
        let preds = self.predict(windows)?;
        let correct = preds.iter().zip(labels).filter(|(a, b)| a == b).count();
        Ok(correct as f32 / labels.len().max(1) as f32)
    }
}

impl std::fmt::Debug for ImuRnn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ImuRnn")
            .field("config", &self.config)
            .field("fitted", &self.standardizer.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic 2-class sequences: constant offset vs. oscillation.
    fn toy_windows(n_per_class: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = SplitMix64::new(seed);
        let (t, f) = (10usize, 4usize);
        let n = n_per_class * 2;
        let mut data = Vec::with_capacity(n * t * f);
        let mut labels = Vec::with_capacity(n);
        for c in 0..2 {
            for _ in 0..n_per_class {
                labels.push(c);
                for step in 0..t {
                    for feat in 0..f {
                        let v = if c == 0 {
                            5.0 + rng.normal() * 0.2
                        } else {
                            5.0 + 2.0 * ((step + feat) as f32).sin() + rng.normal() * 0.2
                        };
                        data.push(v);
                    }
                }
            }
        }
        (Tensor::from_vec(data, &[n, t, f]).unwrap(), labels)
    }

    fn tiny_config() -> RnnConfig {
        RnnConfig {
            features: 4,
            hidden: 8,
            depth: 1,
            classes: 2,
            lr: 0.02,
            batch_size: 16,
        }
    }

    #[test]
    fn rnn_learns_toy_sequences() {
        let mut rnn = ImuRnn::new(tiny_config(), 1);
        let (x, labels) = toy_windows(30, 2);
        let losses = rnn.fit(&x, &labels, 8).unwrap();
        assert!(losses.last().unwrap() < &losses[0]);
        let acc = rnn.evaluate(&x, &labels).unwrap();
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn predict_before_fit_errors() {
        let mut rnn = ImuRnn::new(tiny_config(), 3);
        let x = Tensor::zeros(&[1, 10, 4]);
        assert!(matches!(rnn.predict_proba(&x), Err(CoreError::NotReady(_))));
    }

    #[test]
    fn probabilities_are_distributions() {
        let mut rnn = ImuRnn::new(tiny_config(), 4);
        let (x, labels) = toy_windows(10, 5);
        rnn.fit(&x, &labels, 2).unwrap();
        let p = rnn.predict_proba(&x).unwrap();
        for r in 0..x.dims()[0] {
            let s: f32 = p.data()[r * 2..(r + 1) * 2].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn paper_configuration_has_expected_structure() {
        let mut rnn = ImuRnn::new(RnnConfig::default(), 6);
        // 2 BiLSTM layers + head; parameter count grows with hidden=64.
        assert!(rnn.param_count() > 50_000);
        assert_eq!(rnn.config().hidden, 64);
        assert_eq!(rnn.config().depth, 2);
        assert_eq!(rnn.config().classes, 3);
    }
}
