//! Stream-health assessment: turning the controller's per-stream delivery
//! accounting ([`StreamHealth`]) into a modality status the analytics
//! engine can act on — keep fusing, flag the fusion as degraded, or drop
//! the modality and fall back to the surviving model's posterior.

use darnet_collect::{StreamHealth, StreamId};

/// How trustworthy one modality's stream currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModalityStatus {
    /// Fresh and essentially gap-free: fuse normally.
    Healthy,
    /// Usable but lossy (accounted gaps above the soft threshold): fuse,
    /// but flag the result.
    Degraded,
    /// Stale or so gap-ridden its posterior would mislead the ensemble:
    /// fall back to the other modality.
    Unavailable,
}

/// Thresholds separating the three [`ModalityStatus`] levels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthPolicy {
    /// Seconds without an accepted batch before a stream is unavailable.
    pub max_staleness: f64,
    /// Accounted-gap fraction (missing / expected sequence numbers) above
    /// which a stream is degraded.
    pub degraded_gap_ratio: f64,
    /// Gap fraction above which a stream is unavailable outright.
    pub max_gap_ratio: f64,
    /// Admission-shed fraction (shed / offered batches) above which a
    /// stream is degraded: the controller is deliberately deferring this
    /// stream under overload, so its recent windows are thin.
    pub degraded_shed_ratio: f64,
    /// Shed fraction above which the stream is unavailable — the
    /// ensemble should degrade to the surviving modality (CNN-only /
    /// IMU-only) rather than fuse from a starved stream.
    pub max_shed_ratio: f64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            max_staleness: 2.0,
            degraded_gap_ratio: 0.05,
            max_gap_ratio: 0.5,
            degraded_shed_ratio: 0.25,
            max_shed_ratio: 0.75,
        }
    }
}

/// Fleet-level rollup of per-stream assessments: how many agents are in
/// each [`ModalityStatus`] bucket, and an overall fleet status the
/// operations side can alert on. Produced by [`HealthPolicy::assess_fleet`]
/// from a [`ShardedController`](darnet_collect::ShardedController)'s
/// `stream_healths()` (or any other collection of stream healths).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetHealthSummary {
    /// Streams assessed as [`ModalityStatus::Healthy`].
    pub healthy: usize,
    /// Streams assessed as [`ModalityStatus::Degraded`].
    pub degraded: usize,
    /// Streams assessed as [`ModalityStatus::Unavailable`].
    pub unavailable: usize,
}

impl FleetHealthSummary {
    /// Total streams assessed.
    pub fn total(&self) -> usize {
        self.healthy + self.degraded + self.unavailable
    }

    /// Fraction of streams that are usable at all (healthy or degraded).
    /// An empty fleet reports 0.0.
    pub fn availability(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.healthy + self.degraded) as f64 / total as f64
    }

    /// Overall fleet status: unavailable when fewer than half the
    /// streams are usable, degraded when any stream is unavailable or
    /// more than a quarter are degraded, healthy otherwise. An empty
    /// fleet is unavailable (nothing to analyze).
    pub fn overall(&self) -> ModalityStatus {
        if self.total() == 0 || self.availability() < 0.5 {
            return ModalityStatus::Unavailable;
        }
        if self.unavailable > 0 || self.degraded * 4 > self.total() {
            return ModalityStatus::Degraded;
        }
        ModalityStatus::Healthy
    }
}

/// The healthy-subset resolution for one registry of identified streams:
/// which streams participate in the next fusion and at what status.
/// Produced by [`HealthPolicy::select_subset`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubsetSelection {
    /// Per-stream status, in the order the streams were given.
    pub statuses: Vec<(StreamId, ModalityStatus)>,
    /// How many streams are usable (healthy or degraded).
    pub usable: usize,
    /// Whether the fused result should carry the degraded flag: any
    /// stream dropped or merely degraded.
    pub degraded: bool,
}

impl SubsetSelection {
    /// The status resolved for `id` (unavailable if the stream was not
    /// assessed at all).
    pub fn status_of(&self, id: StreamId) -> ModalityStatus {
        self.statuses
            .iter()
            .find(|(s, _)| *s == id)
            .map(|(_, st)| *st)
            .unwrap_or(ModalityStatus::Unavailable)
    }

    /// Whether `id` participates in the fusion.
    pub fn is_usable(&self, id: StreamId) -> bool {
        self.status_of(id) != ModalityStatus::Unavailable
    }
}

impl HealthPolicy {
    /// Assesses one stream at observation time `now`. A stream the
    /// controller has never heard from (`None`) is unavailable.
    pub fn assess(&self, health: Option<&StreamHealth>, now: f64) -> ModalityStatus {
        let Some(h) = health else {
            return ModalityStatus::Unavailable;
        };
        if h.staleness(now) > self.max_staleness
            || h.gap_ratio() > self.max_gap_ratio
            || h.shed_ratio() > self.max_shed_ratio
        {
            return ModalityStatus::Unavailable;
        }
        if h.gap_ratio() > self.degraded_gap_ratio || h.shed_ratio() > self.degraded_shed_ratio {
            return ModalityStatus::Degraded;
        }
        ModalityStatus::Healthy
    }

    /// Assesses a registry's worth of identified streams at observation
    /// time `now` and resolves the healthy-subset policy the N-stream
    /// engine fuses under: per-stream [`ModalityStatus`]es keyed by
    /// [`StreamId`], the usable count, and whether the fusion as a whole
    /// should be flagged degraded (any stream dropped or degraded).
    ///
    /// The returned statuses feed
    /// [`crate::registry::MultiModalEngine::classify_batch_checked_into`]
    /// directly.
    pub fn select_subset(
        &self,
        streams: &[(StreamId, Option<&StreamHealth>)],
        now: f64,
    ) -> SubsetSelection {
        let mut statuses = Vec::with_capacity(streams.len());
        let mut usable = 0usize;
        let mut degraded = false;
        for (id, health) in streams {
            let status = self.assess(*health, now);
            match status {
                ModalityStatus::Healthy => usable += 1,
                ModalityStatus::Degraded => {
                    usable += 1;
                    degraded = true;
                }
                ModalityStatus::Unavailable => degraded = true,
            }
            statuses.push((*id, status));
        }
        SubsetSelection {
            statuses,
            usable,
            degraded,
        }
    }

    /// Assesses every stream of a fleet at observation time `now` and
    /// tallies the statuses into a [`FleetHealthSummary`].
    pub fn assess_fleet(&self, healths: &[StreamHealth], now: f64) -> FleetHealthSummary {
        let mut summary = FleetHealthSummary::default();
        for h in healths {
            match self.assess(Some(h), now) {
                ModalityStatus::Healthy => summary.healthy += 1,
                ModalityStatus::Degraded => summary.degraded += 1,
                ModalityStatus::Unavailable => summary.unavailable += 1,
            }
        }
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn health(highest: u32, gaps: u64, last_arrival: f64) -> StreamHealth {
        StreamHealth {
            agent_id: 0,
            delivered: (highest as u64 + 1) - gaps,
            duplicates: 0,
            highest_seq: highest,
            gaps,
            last_arrival,
            shed: 0,
        }
    }

    #[test]
    fn fleet_rollup_tallies_and_rolls_up() {
        let p = HealthPolicy::default();
        // 3 healthy, 1 degraded (gap), 1 unavailable (stale).
        let mut streams = vec![
            health(19, 0, 10.0),
            health(19, 0, 10.0),
            health(19, 0, 10.0),
        ];
        streams.push(health(19, 2, 10.0));
        streams.push(health(19, 0, 1.0));
        let summary = p.assess_fleet(&streams, 10.1);
        assert_eq!(
            (summary.healthy, summary.degraded, summary.unavailable),
            (3, 1, 1)
        );
        assert_eq!(summary.total(), 5);
        assert!((summary.availability() - 0.8).abs() < 1e-12);
        // One unavailable stream degrades the fleet view.
        assert_eq!(summary.overall(), ModalityStatus::Degraded);
        // All healthy → healthy fleet.
        let all_good = p.assess_fleet(&streams[..3], 10.1);
        assert_eq!(all_good.overall(), ModalityStatus::Healthy);
        // Majority unavailable → unavailable fleet; empty fleet too.
        let starved = p.assess_fleet(&[health(19, 0, 1.0), health(19, 0, 1.0)], 10.1);
        assert_eq!(starved.overall(), ModalityStatus::Unavailable);
        assert_eq!(
            FleetHealthSummary::default().overall(),
            ModalityStatus::Unavailable
        );
    }

    #[test]
    fn subset_selection_resolves_the_healthy_subset() {
        let p = HealthPolicy::default();
        let fresh = health(19, 0, 10.0);
        let lossy = health(19, 2, 10.0);
        let stale = health(19, 0, 1.0);
        let streams = [
            (StreamId::IMU, Some(&fresh)),
            (StreamId::CAMERA_FRONT, Some(&stale)),
            (StreamId::CAMERA_SIDE, Some(&lossy)),
        ];
        let sel = p.select_subset(&streams, 10.1);
        assert_eq!(sel.usable, 2);
        assert!(sel.degraded);
        assert_eq!(sel.status_of(StreamId::IMU), ModalityStatus::Healthy);
        assert_eq!(
            sel.status_of(StreamId::CAMERA_FRONT),
            ModalityStatus::Unavailable
        );
        assert_eq!(
            sel.status_of(StreamId::CAMERA_SIDE),
            ModalityStatus::Degraded
        );
        assert!(sel.is_usable(StreamId::IMU));
        assert!(!sel.is_usable(StreamId::CAMERA_FRONT));
        // An unassessed stream is unavailable by definition.
        assert!(!sel.is_usable(StreamId(7)));

        // All fresh → nothing degraded.
        let all = [
            (StreamId::IMU, Some(&fresh)),
            (StreamId::CAMERA_FRONT, Some(&fresh)),
        ];
        let sel = p.select_subset(&all, 10.1);
        assert_eq!(sel.usable, 2);
        assert!(!sel.degraded);
        // A never-heard-from stream is dropped and flags the fusion.
        let missing = [(StreamId::IMU, None)];
        let sel = p.select_subset(&missing, 10.1);
        assert_eq!(sel.usable, 0);
        assert!(sel.degraded);
    }

    #[test]
    fn fresh_gapless_stream_is_healthy() {
        let p = HealthPolicy::default();
        let h = health(19, 0, 10.0);
        assert_eq!(p.assess(Some(&h), 10.5), ModalityStatus::Healthy);
    }

    #[test]
    fn stale_stream_is_unavailable() {
        let p = HealthPolicy::default();
        let h = health(19, 0, 10.0);
        assert_eq!(p.assess(Some(&h), 13.0), ModalityStatus::Unavailable);
        assert_eq!(p.assess(None, 0.0), ModalityStatus::Unavailable);
    }

    #[test]
    fn shed_ratio_degrades_then_drops_the_modality() {
        let p = HealthPolicy::default();
        // 30% of offers shed: degraded (fuse, but flag it).
        let mut h = health(13, 0, 10.0);
        h.delivered = 14;
        h.shed = 6;
        assert_eq!(p.assess(Some(&h), 10.1), ModalityStatus::Degraded);
        // 80% shed: the stream is starved — fall back to the other
        // modality entirely.
        h.shed = 56;
        assert_eq!(p.assess(Some(&h), 10.1), ModalityStatus::Unavailable);
        // Shedding that stopped (ratio back under threshold as fresh
        // deliveries accumulate) returns the stream to healthy.
        h.shed = 1;
        h.delivered = 99;
        assert_eq!(p.assess(Some(&h), 10.1), ModalityStatus::Healthy);
    }

    #[test]
    fn gap_ratio_separates_degraded_from_unavailable() {
        let p = HealthPolicy::default();
        // 2/20 missing: degraded.
        assert_eq!(
            p.assess(Some(&health(19, 2, 10.0)), 10.1),
            ModalityStatus::Degraded
        );
        // 12/20 missing: unavailable.
        assert_eq!(
            p.assess(Some(&health(19, 12, 10.0)), 10.1),
            ModalityStatus::Unavailable
        );
    }
}
