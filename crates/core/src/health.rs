//! Stream-health assessment: turning the controller's per-stream delivery
//! accounting ([`StreamHealth`]) into a modality status the analytics
//! engine can act on — keep fusing, flag the fusion as degraded, or drop
//! the modality and fall back to the surviving model's posterior.

use darnet_collect::StreamHealth;

/// How trustworthy one modality's stream currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModalityStatus {
    /// Fresh and essentially gap-free: fuse normally.
    Healthy,
    /// Usable but lossy (accounted gaps above the soft threshold): fuse,
    /// but flag the result.
    Degraded,
    /// Stale or so gap-ridden its posterior would mislead the ensemble:
    /// fall back to the other modality.
    Unavailable,
}

/// Thresholds separating the three [`ModalityStatus`] levels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthPolicy {
    /// Seconds without an accepted batch before a stream is unavailable.
    pub max_staleness: f64,
    /// Accounted-gap fraction (missing / expected sequence numbers) above
    /// which a stream is degraded.
    pub degraded_gap_ratio: f64,
    /// Gap fraction above which a stream is unavailable outright.
    pub max_gap_ratio: f64,
    /// Admission-shed fraction (shed / offered batches) above which a
    /// stream is degraded: the controller is deliberately deferring this
    /// stream under overload, so its recent windows are thin.
    pub degraded_shed_ratio: f64,
    /// Shed fraction above which the stream is unavailable — the
    /// ensemble should degrade to the surviving modality (CNN-only /
    /// IMU-only) rather than fuse from a starved stream.
    pub max_shed_ratio: f64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            max_staleness: 2.0,
            degraded_gap_ratio: 0.05,
            max_gap_ratio: 0.5,
            degraded_shed_ratio: 0.25,
            max_shed_ratio: 0.75,
        }
    }
}

/// Fleet-level rollup of per-stream assessments: how many agents are in
/// each [`ModalityStatus`] bucket, and an overall fleet status the
/// operations side can alert on. Produced by [`HealthPolicy::assess_fleet`]
/// from a [`ShardedController`](darnet_collect::ShardedController)'s
/// `stream_healths()` (or any other collection of stream healths).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetHealthSummary {
    /// Streams assessed as [`ModalityStatus::Healthy`].
    pub healthy: usize,
    /// Streams assessed as [`ModalityStatus::Degraded`].
    pub degraded: usize,
    /// Streams assessed as [`ModalityStatus::Unavailable`].
    pub unavailable: usize,
}

impl FleetHealthSummary {
    /// Total streams assessed.
    pub fn total(&self) -> usize {
        self.healthy + self.degraded + self.unavailable
    }

    /// Fraction of streams that are usable at all (healthy or degraded).
    /// An empty fleet reports 0.0.
    pub fn availability(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.healthy + self.degraded) as f64 / total as f64
    }

    /// Overall fleet status: unavailable when fewer than half the
    /// streams are usable, degraded when any stream is unavailable or
    /// more than a quarter are degraded, healthy otherwise. An empty
    /// fleet is unavailable (nothing to analyze).
    pub fn overall(&self) -> ModalityStatus {
        if self.total() == 0 || self.availability() < 0.5 {
            return ModalityStatus::Unavailable;
        }
        if self.unavailable > 0 || self.degraded * 4 > self.total() {
            return ModalityStatus::Degraded;
        }
        ModalityStatus::Healthy
    }
}

impl HealthPolicy {
    /// Assesses one stream at observation time `now`. A stream the
    /// controller has never heard from (`None`) is unavailable.
    pub fn assess(&self, health: Option<&StreamHealth>, now: f64) -> ModalityStatus {
        let Some(h) = health else {
            return ModalityStatus::Unavailable;
        };
        if h.staleness(now) > self.max_staleness
            || h.gap_ratio() > self.max_gap_ratio
            || h.shed_ratio() > self.max_shed_ratio
        {
            return ModalityStatus::Unavailable;
        }
        if h.gap_ratio() > self.degraded_gap_ratio || h.shed_ratio() > self.degraded_shed_ratio {
            return ModalityStatus::Degraded;
        }
        ModalityStatus::Healthy
    }

    /// Assesses every stream of a fleet at observation time `now` and
    /// tallies the statuses into a [`FleetHealthSummary`].
    pub fn assess_fleet(&self, healths: &[StreamHealth], now: f64) -> FleetHealthSummary {
        let mut summary = FleetHealthSummary::default();
        for h in healths {
            match self.assess(Some(h), now) {
                ModalityStatus::Healthy => summary.healthy += 1,
                ModalityStatus::Degraded => summary.degraded += 1,
                ModalityStatus::Unavailable => summary.unavailable += 1,
            }
        }
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn health(highest: u32, gaps: u64, last_arrival: f64) -> StreamHealth {
        StreamHealth {
            agent_id: 0,
            delivered: (highest as u64 + 1) - gaps,
            duplicates: 0,
            highest_seq: highest,
            gaps,
            last_arrival,
            shed: 0,
        }
    }

    #[test]
    fn fleet_rollup_tallies_and_rolls_up() {
        let p = HealthPolicy::default();
        // 3 healthy, 1 degraded (gap), 1 unavailable (stale).
        let mut streams = vec![
            health(19, 0, 10.0),
            health(19, 0, 10.0),
            health(19, 0, 10.0),
        ];
        streams.push(health(19, 2, 10.0));
        streams.push(health(19, 0, 1.0));
        let summary = p.assess_fleet(&streams, 10.1);
        assert_eq!(
            (summary.healthy, summary.degraded, summary.unavailable),
            (3, 1, 1)
        );
        assert_eq!(summary.total(), 5);
        assert!((summary.availability() - 0.8).abs() < 1e-12);
        // One unavailable stream degrades the fleet view.
        assert_eq!(summary.overall(), ModalityStatus::Degraded);
        // All healthy → healthy fleet.
        let all_good = p.assess_fleet(&streams[..3], 10.1);
        assert_eq!(all_good.overall(), ModalityStatus::Healthy);
        // Majority unavailable → unavailable fleet; empty fleet too.
        let starved = p.assess_fleet(&[health(19, 0, 1.0), health(19, 0, 1.0)], 10.1);
        assert_eq!(starved.overall(), ModalityStatus::Unavailable);
        assert_eq!(
            FleetHealthSummary::default().overall(),
            ModalityStatus::Unavailable
        );
    }

    #[test]
    fn fresh_gapless_stream_is_healthy() {
        let p = HealthPolicy::default();
        let h = health(19, 0, 10.0);
        assert_eq!(p.assess(Some(&h), 10.5), ModalityStatus::Healthy);
    }

    #[test]
    fn stale_stream_is_unavailable() {
        let p = HealthPolicy::default();
        let h = health(19, 0, 10.0);
        assert_eq!(p.assess(Some(&h), 13.0), ModalityStatus::Unavailable);
        assert_eq!(p.assess(None, 0.0), ModalityStatus::Unavailable);
    }

    #[test]
    fn shed_ratio_degrades_then_drops_the_modality() {
        let p = HealthPolicy::default();
        // 30% of offers shed: degraded (fuse, but flag it).
        let mut h = health(13, 0, 10.0);
        h.delivered = 14;
        h.shed = 6;
        assert_eq!(p.assess(Some(&h), 10.1), ModalityStatus::Degraded);
        // 80% shed: the stream is starved — fall back to the other
        // modality entirely.
        h.shed = 56;
        assert_eq!(p.assess(Some(&h), 10.1), ModalityStatus::Unavailable);
        // Shedding that stopped (ratio back under threshold as fresh
        // deliveries accumulate) returns the stream to healthy.
        h.shed = 1;
        h.delivered = 99;
        assert_eq!(p.assess(Some(&h), 10.1), ModalityStatus::Healthy);
    }

    #[test]
    fn gap_ratio_separates_degraded_from_unavailable() {
        let p = HealthPolicy::default();
        // 2/20 missing: degraded.
        assert_eq!(
            p.assess(Some(&health(19, 2, 10.0)), 10.1),
            ModalityStatus::Degraded
        );
        // 12/20 missing: unavailable.
        assert_eq!(
            p.assess(Some(&health(19, 12, 10.0)), 10.1),
            ModalityStatus::Unavailable
        );
    }
}
