//! # darnet-core
//!
//! The DarNet *analytics engine* (paper §3.3, §4.2, §4.3): the models,
//! ensemble combiner, privacy machinery, and evaluation harness built on
//! the substrates in this workspace.
//!
//! * [`dataset`] — turns collection-campaign recordings
//!   ([`darnet_collect::runtime`]) into labeled multimodal datasets: frames
//!   for the CNN, 20-step 4 Hz IMU windows for the RNN/SVM, with an 80/20
//!   train/evaluation split as in the paper.
//! * [`FrameCnn`] — the frame classifier: a mini-Inception CNN
//!   (stem convolution + inception blocks + global average pooling), with
//!   the paper's transfer-learning recipe reproduced as proxy-task
//!   pre-training followed by head replacement and fine-tuning.
//! * [`ImuRnn`] — the IMU-sequence classifier: a deep bidirectional LSTM
//!   (2 × 64 hidden units over 20-step windows in the paper's
//!   configuration).
//! * [`ImuSvm`] — the SVM baseline for the IMU stream.
//! * [`BayesianCombiner`] — the per-class Bayesian-network ensemble with
//!   CPTs estimated from training-set observations (§4.2 "Ensemble
//!   Learning"), plus simpler combiners for ablation.
//! * [`privacy`] — nearest-neighbour down-sampling at the paper's three
//!   levels and the unsupervised L2-distillation training of the dCNN
//!   students (§4.3).
//! * [`eval`] — Top-1 accuracy and confusion matrices (the paper's Table 2
//!   / Figure 5 metrics).
//! * [`AnalyticsEngine`] — the modular per-stream engine that classifies
//!   at each time-step (§3.3: a 1-to-1 mapping between device data-streams
//!   and ML models, combined at a later stage).
//! * [`registry`] — the N-stream modality registry: [`ModalityDescriptor`]s
//!   keyed by [`darnet_collect::StreamId`], the [`StreamModel`] trait
//!   unifying the per-stream models, and the [`MultiModalEngine`] fusing any
//!   healthy subset of registered streams through the N-ary Bayesian
//!   combiner (the two-stream engine is the N=2 special case, bit-for-bit).
//! * [`MicroBatcher`] — the micro-batching front between the collect
//!   pipeline and the engine: aligned tuples queue and flush on
//!   batch-size-or-deadline, bounding latency while amortizing per-call
//!   model overhead (and feeding the parallel backend whole batches).
//! * [`experiment`] — end-to-end experiment drivers regenerating every
//!   table and figure (used by the `darnet-bench` binaries).

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod alerts;
pub mod batching;
pub mod dataset;
mod engine;
pub mod ensemble;
mod error;
pub mod eval;
pub mod experiment;
pub mod health;
pub mod model_io;
pub mod models;
pub mod privacy;
pub mod registry;

pub use alerts::{AlertEvent, AlertPolicy, AlertTracker};
pub use batching::{MicroBatchConfig, MicroBatcher};
pub use engine::{
    AnalyticsEngine, EngineConfig, FallbackCounters, FusionSource, ImuModelSlot, StepClassification,
};
pub use ensemble::{BayesianCombiner, CombinerKind, NaryBayesianCombiner};
pub use error::CoreError;
pub use eval::ConfusionMatrix;
pub use health::{FleetHealthSummary, HealthPolicy, ModalityStatus, SubsetSelection};
pub use model_io::{decode_tensors, encode_tensors};
pub use models::{CnnConfig, FrameCnn, ImuRnn, ImuSvm, RnnConfig};
pub use registry::{
    ClassMap, ModalityDescriptor, MultiModalEngine, MultiStepClassification, StreamInput,
    StreamModel, StreamModelSlot, SubsetCounters,
};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
