//! The N-stream modality registry: the generalization of the engine's
//! hard-coded CNN+IMU pair into an ordered set of registered streams,
//! each described by a [`ModalityDescriptor`] (identity, class mapping,
//! fusion weight) and served by a [`StreamModel`].
//!
//! Identity flows up from the collection layer: a stream is named by its
//! [`StreamId`] (the same tag the controller's health accounting and the
//! canonical multi-stream sessions use), and registry order — ascending
//! `StreamId` — fixes the parent order of the N-ary combiner's CPTs.
//!
//! The legacy two-stream analytics engine is the N=2 special case: its
//! fusion paths route through this module's primitives
//! ([`crate::ensemble::NaryBayesianCombiner`],
//! [`product_combine_subset_into`], [`ClassMap::expand_into`]) and stay
//! bitwise-identical to the historical pair implementations (pinned by
//! unit tests here and the proptest suite).

use serde::{Deserialize, Serialize};

use darnet_collect::StreamId;
use darnet_sim::Frame;
use darnet_tensor::{Parallelism, Tensor, Workspace};

use crate::dataset::frames_to_tensor_into;
use crate::ensemble::{CombinerKind, NaryBayesianCombiner};
use crate::error::CoreError;
use crate::health::ModalityStatus;
use crate::models::{FrameCnn, ImuRnn, ImuSvm};
use crate::Result;

/// Registry capacity: fusion scratch lives on the stack, so the number of
/// registered streams is capped (far above any plausible sensor roster).
pub const MAX_STREAMS: usize = 8;

/// How a stream's native class space maps onto the engine's canonical
/// class space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClassMap {
    /// The stream natively speaks the canonical class space.
    Identity,
    /// `map[c]` is the native class observed when the canonical class is
    /// `c` — a many-to-one projection (the IMU's 6→3 collapse). Expansion
    /// back onto the canonical space splits each native class's mass
    /// uniformly across the canonical classes projecting onto it.
    Projection(Vec<usize>),
}

impl ClassMap {
    /// The DarNet IMU projection: 6 behaviours onto 3 manipulation
    /// classes (mirrors the taxonomy's `imu_class` assignment).
    pub fn darnet_imu() -> ClassMap {
        ClassMap::Projection(vec![0, 1, 2, 0, 0, 0])
    }

    /// The native class observed for canonical class `c`.
    pub fn native_of(&self, c: usize) -> usize {
        match self {
            ClassMap::Identity => c,
            ClassMap::Projection(m) => m[c],
        }
    }

    /// The stream's native class count given the canonical count.
    pub fn native_classes(&self, canonical_classes: usize) -> usize {
        match self {
            ClassMap::Identity => canonical_classes,
            ClassMap::Projection(m) => m.iter().copied().max().map_or(0, |x| x + 1),
        }
    }

    /// Expands a native posterior onto the canonical class space — the
    /// single-surviving-stream fallback. [`ClassMap::Identity`] passes the
    /// posterior through verbatim (the legacy CNN-only fallback);
    /// [`ClassMap::Projection`] splits each native class's mass uniformly
    /// over its canonical preimage and renormalizes (the legacy IMU-only
    /// fallback, bitwise).
    ///
    /// # Errors
    ///
    /// Returns a dataset error on width mismatches.
    // darlint: hot
    pub fn expand_into(
        &self,
        probs: &[f32],
        canonical_classes: usize,
        scores: &mut Vec<f32>,
    ) -> Result<()> {
        match self {
            ClassMap::Identity => {
                if probs.len() != canonical_classes {
                    return Err(CoreError::Dataset(format!(
                        "identity expansion expects {canonical_classes} probabilities, got {}",
                        probs.len()
                    )));
                }
                scores.clear();
                scores.extend_from_slice(probs);
            }
            ClassMap::Projection(m) => {
                if m.len() != canonical_classes
                    || probs.len() != self.native_classes(canonical_classes)
                {
                    return Err(CoreError::Dataset(format!(
                        "projection expansion: map {} / probs {} for {canonical_classes} classes",
                        m.len(),
                        probs.len()
                    )));
                }
                scores.clear();
                for c in 0..canonical_classes {
                    let native = m[c];
                    // Preimage size of this native class (the legacy
                    // fanout table, recomputed by scan — O(classes²) on
                    // 6–8 classes, allocation-free).
                    let fanout = m.iter().filter(|&&x| x == native).count();
                    scores.push(probs[native] / fanout as f32);
                }
                let total: f32 = scores.iter().sum();
                if total > 0.0 {
                    for s in scores.iter_mut() {
                        *s /= total;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Everything the engine needs to know about one registered stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ModalityDescriptor {
    /// The stream's collection-layer identity.
    pub id: StreamId,
    /// Human-readable name (defaults to the stream label).
    pub name: String,
    /// Native→canonical class mapping.
    pub class_map: ClassMap,
    /// Fusion weight: a tempering exponent on the stream's posterior in
    /// the product rule (and available to the N-ary combiner). `1.0` is
    /// neutral and bitwise-invisible.
    pub weight: f32,
}

impl ModalityDescriptor {
    /// A descriptor with the default name and neutral weight.
    pub fn new(id: StreamId, class_map: ClassMap) -> Self {
        ModalityDescriptor {
            name: id.label(),
            id,
            class_map,
            weight: 1.0,
        }
    }

    /// Sets the fusion weight.
    pub fn with_weight(mut self, weight: f32) -> Self {
        self.weight = weight;
        self
    }

    /// The legacy front-camera descriptor (identity over the canonical
    /// classes).
    pub fn darnet_camera() -> Self {
        ModalityDescriptor::new(StreamId::CAMERA_FRONT, ClassMap::Identity)
    }

    /// The legacy IMU descriptor (6→3 projection).
    pub fn darnet_imu() -> Self {
        ModalityDescriptor::new(StreamId::IMU, ClassMap::darnet_imu())
    }

    /// Native class count given the canonical count.
    pub fn native_classes(&self, canonical_classes: usize) -> usize {
        self.class_map.native_classes(canonical_classes)
    }
}

/// The unified model interface every registered stream serves: a
/// zero-alloc batch posterior over the stream's assembled input tensor,
/// preserving the workspace discipline of the legacy engine.
pub trait StreamModel: Send {
    /// The model's native class count.
    fn native_classes(&self) -> usize;

    /// Installs a [`Parallelism`] handle for the model's internal tensor
    /// products.
    fn set_parallelism(&mut self, par: Parallelism);

    /// Writes row-major class probabilities for the batch into `out`
    /// (cleared first), allocating nothing once `out` has capacity.
    ///
    /// # Errors
    ///
    /// Propagates model errors (e.g. not fitted, shape mismatch).
    fn predict_proba_into(&mut self, input: &Tensor, out: &mut Vec<f32>) -> Result<()>;
}

impl StreamModel for FrameCnn {
    fn native_classes(&self) -> usize {
        self.classes()
    }

    fn set_parallelism(&mut self, par: Parallelism) {
        FrameCnn::set_parallelism(self, par);
    }

    fn predict_proba_into(&mut self, input: &Tensor, out: &mut Vec<f32>) -> Result<()> {
        FrameCnn::predict_proba_into(self, input, out)
    }
}

impl StreamModel for ImuRnn {
    fn native_classes(&self) -> usize {
        self.config().classes
    }

    fn set_parallelism(&mut self, par: Parallelism) {
        ImuRnn::set_parallelism(self, par);
    }

    fn predict_proba_into(&mut self, input: &Tensor, out: &mut Vec<f32>) -> Result<()> {
        ImuRnn::predict_proba_into(self, input, out)
    }
}

impl StreamModel for ImuSvm {
    fn native_classes(&self) -> usize {
        self.classes()
    }

    fn set_parallelism(&mut self, _par: Parallelism) {}

    fn predict_proba_into(&mut self, input: &Tensor, out: &mut Vec<f32>) -> Result<()> {
        // The SVM baseline has no workspace path; fall back to its
        // allocating prediction and copy the rows out (same as the
        // legacy engine's SVM branch).
        let probs = ImuSvm::predict_proba(self, input)?;
        out.clear();
        out.extend_from_slice(probs.data());
        Ok(())
    }
}

/// Concrete storage for a registered stream's model — the registry's
/// slot type, delegating [`StreamModel`] to the wrapped model.
// One slot exists per registered stream and never moves after
// registration, so the size gap between variants doesn't justify boxing.
#[allow(clippy::large_enum_variant)]
pub enum StreamModelSlot {
    /// A frame CNN (camera streams).
    Cnn(FrameCnn),
    /// The deep bidirectional LSTM (IMU streams).
    Rnn(ImuRnn),
    /// The linear SVM baseline (IMU streams).
    Svm(ImuSvm),
}

impl std::fmt::Debug for StreamModelSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamModelSlot::Cnn(_) => f.write_str("StreamModelSlot::Cnn"),
            StreamModelSlot::Rnn(_) => f.write_str("StreamModelSlot::Rnn"),
            StreamModelSlot::Svm(_) => f.write_str("StreamModelSlot::Svm"),
        }
    }
}

impl StreamModel for StreamModelSlot {
    fn native_classes(&self) -> usize {
        match self {
            StreamModelSlot::Cnn(m) => StreamModel::native_classes(m),
            StreamModelSlot::Rnn(m) => StreamModel::native_classes(m),
            StreamModelSlot::Svm(m) => StreamModel::native_classes(m),
        }
    }

    fn set_parallelism(&mut self, par: Parallelism) {
        match self {
            StreamModelSlot::Cnn(m) => StreamModel::set_parallelism(m, par),
            StreamModelSlot::Rnn(m) => StreamModel::set_parallelism(m, par),
            StreamModelSlot::Svm(m) => StreamModel::set_parallelism(m, par),
        }
    }

    fn predict_proba_into(&mut self, input: &Tensor, out: &mut Vec<f32>) -> Result<()> {
        match self {
            StreamModelSlot::Cnn(m) => StreamModel::predict_proba_into(m, input, out),
            StreamModelSlot::Rnn(m) => StreamModel::predict_proba_into(m, input, out),
            StreamModelSlot::Svm(m) => StreamModel::predict_proba_into(m, input, out),
        }
    }
}

/// One stream's raw observations for a batch of aligned time-steps.
#[derive(Debug, Clone, Copy)]
pub enum StreamInput<'a> {
    /// Camera frames, one per time-step.
    Frames(&'a [Frame]),
    /// A `[n, window, features]` tensor of per-step windows.
    Windows(&'a Tensor),
}

impl StreamInput<'_> {
    /// Batch length.
    pub fn len(&self) -> usize {
        match self {
            StreamInput::Frames(f) => f.len(),
            StreamInput::Windows(t) => t.dims().first().copied().unwrap_or(0),
        }
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Generalized product-rule fusion over any present subset of parents:
/// for each canonical class the present streams' (class-mapped) posterior
/// factors are multiplied in registry order, then the scores are
/// normalized. Projection-mapped factors are floored at `1e-6` so a
/// coarse modality cannot fully veto classes outside its resolution —
/// with the legacy `[camera(identity), imu(projection)]` pair this is
/// bitwise the legacy `product_combine_into`.
///
/// # Errors
///
/// Returns a dataset error on width mismatches or when every parent is
/// absent.
// darlint: hot
pub fn product_combine_subset_into(
    parents: &[(Option<&[f32]>, &ClassMap, f32)],
    classes: usize,
    scores: &mut Vec<f32>,
) -> Result<()> {
    let mut present = 0usize;
    for (k, (probs, map, _)) in parents.iter().enumerate() {
        let Some(probs) = probs else { continue };
        present += 1;
        let want = map.native_classes(classes);
        let map_ok = match map {
            ClassMap::Identity => true,
            ClassMap::Projection(m) => m.len() == classes,
        };
        if !map_ok || probs.len() != want {
            return Err(CoreError::Dataset(format!(
                "product parent {k} expects {want} probabilities, got {}",
                probs.len()
            )));
        }
    }
    if present == 0 {
        return Err(CoreError::NotReady(
            "every parent stream is absent — nothing to fuse".into(),
        ));
    }
    scores.clear();
    for c in 0..classes {
        let mut acc: Option<f32> = None;
        for (probs, map, weight) in parents {
            let Some(probs) = probs else { continue };
            let f = match map {
                ClassMap::Identity => probs[c],
                ClassMap::Projection(m) => probs[m[c]].max(1e-6),
            };
            let f = if *weight == 1.0 { f } else { f.powf(*weight) };
            acc = Some(match acc {
                None => f,
                Some(a) => a * f,
            });
        }
        scores.push(acc.unwrap_or(0.0));
    }
    let total: f32 = scores.iter().sum();
    if total > 0.0 {
        for s in scores.iter_mut() {
            *s /= total;
        }
    }
    Ok(())
}

/// One registered stream: descriptor + model + per-batch scratch.
struct RegisteredStream {
    descriptor: ModalityDescriptor,
    model: StreamModelSlot,
    /// Row-major posteriors for the current batch (reused).
    probs: Vec<f32>,
    /// Whether the stream contributes to the current batch.
    present: bool,
    /// The stream's health status for the current batch.
    status: ModalityStatus,
}

/// Running counts of how N-stream classifications were fused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SubsetCounters {
    /// Steps fused from every registered stream.
    pub full: u64,
    /// Steps fused from a strict (but plural) subset.
    pub partial: u64,
    /// Steps decided by a single surviving stream's expansion.
    pub single: u64,
    /// Steps computed while some contributing stream was degraded.
    pub degraded: u64,
}

/// One per-time-step classification from the N-stream engine.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiStepClassification {
    /// The fused canonical class index.
    pub class: usize,
    /// Fused class scores (normalized).
    pub scores: Vec<f32>,
    /// The streams that contributed, in registry order.
    pub used: Vec<StreamId>,
    /// `true` if a contributing stream was degraded or a registered
    /// stream had to be dropped.
    pub degraded: bool,
}

/// The registry-driven N-stream analytics engine: an ordered set of
/// [`StreamModel`]s fused by the [`NaryBayesianCombiner`] (or the product
/// rule) over whichever subset of streams is healthy, with the legacy
/// engine's zero-alloc workspace discipline.
pub struct MultiModalEngine {
    classes: usize,
    kind: CombinerKind,
    streams: Vec<RegisteredStream>,
    combiner: Option<NaryBayesianCombiner>,
    parallelism: Parallelism,
    counters: SubsetCounters,
    pub(crate) ws: Workspace,
    scores_buf: Vec<f32>,
}

impl MultiModalEngine {
    /// Creates an empty engine over `classes` canonical classes.
    pub fn new(classes: usize, kind: CombinerKind) -> Self {
        MultiModalEngine {
            classes,
            kind,
            streams: Vec::new(),
            combiner: None,
            parallelism: Parallelism::serial(),
            counters: SubsetCounters::default(),
            ws: Workspace::new(),
            scores_buf: Vec::new(),
        }
    }

    /// Canonical class count.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Registered stream ids in registry order.
    pub fn stream_ids(&self) -> Vec<StreamId> {
        self.streams.iter().map(|s| s.descriptor.id).collect()
    }

    /// The descriptor of a registered stream.
    pub fn descriptor(&self, id: StreamId) -> Option<&ModalityDescriptor> {
        self.streams
            .iter()
            .find(|s| s.descriptor.id == id)
            .map(|s| &s.descriptor)
    }

    /// Running fusion-path counters.
    pub fn counters(&self) -> SubsetCounters {
        self.counters
    }

    /// `(pool_hits, cold_misses)` of the engine's session workspace.
    pub fn workspace_stats(&self) -> (u64, u64) {
        (self.ws.pool_hits(), self.ws.cold_misses())
    }

    /// Installs a [`Parallelism`] handle: every stream model fans its
    /// tensor products across the threads, and a non-serial handle
    /// additionally runs the stream branches on concurrent scoped
    /// workers.
    pub fn set_parallelism(&mut self, par: Parallelism) {
        self.parallelism = par;
        for stream in &mut self.streams {
            stream.model.set_parallelism(par);
        }
    }

    /// Registers a stream. Registration order is registry order: it
    /// fixes the parent order of the combiner's CPTs and the order of
    /// product factors (new registries conventionally register in
    /// ascending [`StreamId`]; the legacy pair order — camera before
    /// IMU — is equally valid). The model's native class count must
    /// match the descriptor's class map. Registering a stream
    /// invalidates any installed combiner (its parent cardinalities
    /// changed).
    ///
    /// # Errors
    ///
    /// Returns a dataset error on duplicate ids, capacity, or
    /// class-count violations.
    pub fn register(
        &mut self,
        descriptor: ModalityDescriptor,
        model: StreamModelSlot,
    ) -> Result<()> {
        if self.streams.len() >= MAX_STREAMS {
            return Err(CoreError::Dataset(format!(
                "registry full: {MAX_STREAMS} streams"
            )));
        }
        if self
            .streams
            .iter()
            .any(|s| s.descriptor.id == descriptor.id)
        {
            return Err(CoreError::Dataset(format!(
                "stream {} is already registered",
                descriptor.id
            )));
        }
        if let ClassMap::Projection(m) = &descriptor.class_map {
            if m.len() != self.classes || m.is_empty() {
                return Err(CoreError::Dataset(format!(
                    "projection map has {} entries for {} classes",
                    m.len(),
                    self.classes
                )));
            }
        }
        let want = descriptor.native_classes(self.classes);
        let got = model.native_classes();
        if want != got {
            return Err(CoreError::Dataset(format!(
                "stream {} model emits {got} classes but its descriptor maps {want}",
                descriptor.id
            )));
        }
        let mut model = model;
        model.set_parallelism(self.parallelism);
        self.streams.push(RegisteredStream {
            descriptor,
            model,
            probs: Vec::new(),
            present: false,
            status: ModalityStatus::Healthy,
        });
        self.combiner = None;
        Ok(())
    }

    /// Installs a fitted N-ary combiner whose parent cardinalities must
    /// match the registered streams in order.
    ///
    /// # Errors
    ///
    /// Returns a dataset error on a cardinality mismatch.
    pub fn set_combiner(&mut self, combiner: NaryBayesianCombiner) -> Result<()> {
        let cards: Vec<usize> = self
            .streams
            .iter()
            .map(|s| s.descriptor.native_classes(self.classes))
            .collect();
        if combiner.classes() != self.classes || combiner.parent_cards() != cards.as_slice() {
            return Err(CoreError::Dataset(format!(
                "combiner over {:?} parents does not match registry {:?}",
                combiner.parent_cards(),
                cards
            )));
        }
        self.combiner = Some(combiner);
        Ok(())
    }

    /// Fits a fresh N-ary combiner from per-stream training posteriors
    /// (`[n, native_k]`, registry order) and installs it.
    ///
    /// # Errors
    ///
    /// Propagates fit errors.
    pub fn fit_combiner(&mut self, parent_probs: &[&Tensor], labels: &[usize]) -> Result<()> {
        let cards: Vec<usize> = self
            .streams
            .iter()
            .map(|s| s.descriptor.native_classes(self.classes))
            .collect();
        let mut combiner = NaryBayesianCombiner::new(self.classes, cards, 1.0);
        combiner.fit(parent_probs, labels)?;
        self.combiner = Some(combiner);
        Ok(())
    }

    /// Classifies one time-step (`n = 1` inputs), all provided streams
    /// assumed healthy. Equivalent to a single-item
    /// [`MultiModalEngine::classify_batch_into`].
    ///
    /// # Errors
    ///
    /// As [`MultiModalEngine::classify_batch_checked_into`].
    // darlint: hot
    pub fn classify_step_into(
        &mut self,
        inputs: &[(StreamId, StreamInput<'_>)],
        out: &mut Vec<MultiStepClassification>,
    ) -> Result<()> {
        self.classify_batch_checked_into(inputs, &[], out)
    }

    /// Classifies a batch of aligned time-steps, all provided streams
    /// assumed healthy.
    ///
    /// # Errors
    ///
    /// As [`MultiModalEngine::classify_batch_checked_into`].
    // darlint: hot
    pub fn classify_batch_into(
        &mut self,
        inputs: &[(StreamId, StreamInput<'_>)],
        out: &mut Vec<MultiStepClassification>,
    ) -> Result<()> {
        self.classify_batch_checked_into(inputs, &[], out)
    }

    /// Health-aware batch classification over whichever subset of
    /// registered streams is usable. A stream participates when its
    /// input is provided *and* its status (default
    /// [`ModalityStatus::Healthy`]; typically from
    /// [`crate::health::HealthPolicy::select_subset`]) is not
    /// [`ModalityStatus::Unavailable`]. Fusion follows the healthy-subset
    /// policy: every registered stream → N-ary fusion; a plural strict
    /// subset → the same combiner with absent parents marginalized out; a
    /// single survivor → its class-map expansion (bitwise the legacy
    /// CNN-only / IMU-only fallbacks). After one warm-up call at a given
    /// batch shape, a steady-state serial call performs zero heap
    /// allocations end to end.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotReady`] when no stream is usable (or the
    /// Bayesian combiner is missing); a dataset error on shape
    /// mismatches or unknown stream ids; otherwise propagates model
    /// errors.
    // darlint: hot
    pub fn classify_batch_checked_into(
        &mut self,
        inputs: &[(StreamId, StreamInput<'_>)],
        statuses: &[(StreamId, ModalityStatus)],
        out: &mut Vec<MultiStepClassification>,
    ) -> Result<()> {
        if self.streams.is_empty() {
            return Err(CoreError::NotReady("no streams registered".into()));
        }
        for (id, _) in inputs {
            if !self.streams.iter().any(|s| s.descriptor.id == *id) {
                return Err(CoreError::Dataset(format!("unknown stream {id}")));
            }
        }
        // Resolve each stream's participation and the batch length.
        let mut n: Option<usize> = None;
        for stream in &mut self.streams {
            let id = stream.descriptor.id;
            let status = statuses
                .iter()
                .find(|(s, _)| *s == id)
                .map(|(_, st)| *st)
                .unwrap_or(ModalityStatus::Healthy);
            let input = inputs.iter().find(|(s, _)| *s == id).map(|(_, i)| i);
            stream.status = status;
            stream.present = status != ModalityStatus::Unavailable && input.is_some();
            if !stream.present {
                stream.probs.clear();
                continue;
            }
            if let Some(input) = input {
                let len = input.len();
                match n {
                    None => n = Some(len),
                    Some(m) if m != len => {
                        return Err(CoreError::Dataset(format!(
                            "stream {id} batch length {len} disagrees with {m}"
                        )));
                    }
                    _ => {}
                }
            }
        }
        let Some(n) = n else {
            return Err(CoreError::NotReady(
                "every registered stream is unavailable — nothing to classify from".into(),
            ));
        };
        if n == 0 {
            out.clear();
            return Ok(());
        }
        self.predict_streams(inputs, n)?;
        self.fuse_batch(n, out)
    }

    /// Runs every present stream's model over its assembled input,
    /// filling the per-stream posterior buffers. Serial handles process
    /// streams in order on the caller's thread (the zero-alloc path);
    /// non-serial handles assemble camera tensors first, then run each
    /// stream on its own scoped worker and join in registry order, so
    /// results and error precedence are deterministic either way.
    // darlint: hot
    fn predict_streams(&mut self, inputs: &[(StreamId, StreamInput<'_>)], n: usize) -> Result<()> {
        let classes = self.classes;
        let MultiModalEngine {
            streams,
            ws,
            parallelism,
            ..
        } = self;
        if parallelism.is_serial() {
            for stream in streams.iter_mut() {
                if !stream.present {
                    continue;
                }
                let id = stream.descriptor.id;
                let Some((_, input)) = inputs.iter().find(|(s, _)| *s == id) else {
                    stream.present = false;
                    stream.probs.clear();
                    continue;
                };
                match input {
                    StreamInput::Frames(frames) => {
                        let (w, h) = (frames[0].width(), frames[0].height());
                        let mut tensor = ws.checkout(&[n, 1, h, w]);
                        let run = frames_to_tensor_into(frames, &mut tensor).and_then(|()| {
                            stream.model.predict_proba_into(&tensor, &mut stream.probs)
                        });
                        ws.restore(tensor);
                        run?;
                    }
                    StreamInput::Windows(t) => {
                        stream.model.predict_proba_into(t, &mut stream.probs)?;
                    }
                }
            }
        } else {
            // Assemble camera batches on the caller thread first (the
            // workspace is not shared across workers), then fan the
            // model branches out.
            let mut checkouts: Vec<Option<Tensor>> = Vec::with_capacity(streams.len());
            let mut assemble_err = None;
            for stream in streams.iter() {
                let id = stream.descriptor.id;
                let input = inputs.iter().find(|(s, _)| *s == id).map(|(_, i)| i);
                match (stream.present, input) {
                    (true, Some(StreamInput::Frames(frames))) => {
                        let (w, h) = (frames[0].width(), frames[0].height());
                        let mut tensor = ws.checkout(&[n, 1, h, w]);
                        match frames_to_tensor_into(frames, &mut tensor) {
                            Ok(()) => checkouts.push(Some(tensor)),
                            Err(e) => {
                                ws.restore(tensor);
                                assemble_err = Some(e);
                                break;
                            }
                        }
                    }
                    _ => checkouts.push(None),
                }
            }
            if let Some(e) = assemble_err {
                for t in checkouts.into_iter().flatten() {
                    ws.restore(t);
                }
                return Err(e);
            }
            let mut first_err: Option<CoreError> = None;
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(streams.len());
                for (stream, checkout) in streams.iter_mut().zip(&checkouts) {
                    if !stream.present {
                        handles.push(None);
                        continue;
                    }
                    let id = stream.descriptor.id;
                    let input = inputs.iter().find(|(s, _)| *s == id).map(|(_, i)| i);
                    handles.push(Some(scope.spawn(move || match (checkout, input) {
                        (Some(tensor), _) => {
                            stream.model.predict_proba_into(tensor, &mut stream.probs)
                        }
                        (None, Some(StreamInput::Windows(t))) => {
                            stream.model.predict_proba_into(t, &mut stream.probs)
                        }
                        _ => Ok(()),
                    })));
                }
                // Join every worker before surfacing the first error, so
                // no thread outlives the scope with a live borrow.
                for h in handles {
                    let joined = match h {
                        None => Ok(()),
                        Some(h) => h.join().unwrap_or(Err(CoreError::WorkerPanicked {
                            stage: "MultiModalEngine stream branch",
                        })),
                    };
                    if let Err(e) = joined {
                        first_err.get_or_insert(e);
                    }
                }
            });
            for t in checkouts.into_iter().flatten() {
                ws.restore(t);
            }
            if let Some(e) = first_err {
                return Err(e);
            }
        }
        // Posterior width check — catches a model/descriptor mismatch
        // that slipped past registration (e.g. a refit model).
        for stream in streams.iter() {
            if !stream.present {
                continue;
            }
            let native = stream.descriptor.native_classes(classes);
            if stream.probs.len() != n * native {
                return Err(CoreError::Dataset(format!(
                    "stream {} produced {} probabilities for {n}×{native}",
                    stream.descriptor.id,
                    stream.probs.len()
                )));
            }
        }
        Ok(())
    }

    /// Fuses the per-stream posteriors item by item and writes results
    /// into `out` (entries updated in place, vector truncated/grown to
    /// the batch length — the legacy engine's reuse discipline).
    // darlint: hot
    fn fuse_batch(&mut self, n: usize, out: &mut Vec<MultiStepClassification>) -> Result<()> {
        let classes = self.classes;
        let total_streams = self.streams.len();
        let degraded = self
            .streams
            .iter()
            .any(|s| !s.present || s.status == ModalityStatus::Degraded);
        let mut scores = std::mem::take(&mut self.scores_buf);
        let mut full = 0u64;
        let mut partial = 0u64;
        let mut single_count = 0u64;
        for i in 0..n {
            let mut parents: [Option<&[f32]>; MAX_STREAMS] = [None; MAX_STREAMS];
            let mut single: Option<usize> = None;
            let mut used = 0usize;
            for (k, stream) in self.streams.iter().enumerate() {
                if !stream.present {
                    continue;
                }
                let native = stream.descriptor.native_classes(classes);
                parents[k] = Some(&stream.probs[i * native..(i + 1) * native]);
                single = Some(k);
                used += 1;
            }
            let Some(last_present) = single else {
                // Unreachable: the caller resolved `n` from a present
                // stream. Kept as a defensive error, not a panic.
                self.scores_buf = scores;
                return Err(CoreError::NotReady(
                    "every registered stream is unavailable — nothing to classify from".into(),
                ));
            };
            let fuse_result = if used == 1 {
                let stream = &self.streams[last_present];
                match parents[last_present] {
                    Some(row) => stream
                        .descriptor
                        .class_map
                        .expand_into(row, classes, &mut scores),
                    // Unreachable: `last_present` was recorded from a
                    // Some(_) parent. Defensive error, not a panic.
                    None => Err(CoreError::NotReady(
                        "surviving stream lost its posterior row".into(),
                    )),
                }
            } else {
                match self.kind {
                    CombinerKind::Bayesian => match &self.combiner {
                        Some(c) => c.combine_subset_into(&parents[..total_streams], &mut scores),
                        None => Err(CoreError::NotReady(
                            "no n-ary combiner installed — call fit_combiner or set_combiner"
                                .into(),
                        )),
                    },
                    CombinerKind::Product => {
                        let mut factors: [(Option<&[f32]>, &ClassMap, f32); MAX_STREAMS] =
                            [(None, &ClassMap::Identity, 1.0); MAX_STREAMS];
                        for (k, stream) in self.streams.iter().enumerate() {
                            factors[k] = (
                                parents[k],
                                &stream.descriptor.class_map,
                                stream.descriptor.weight,
                            );
                        }
                        product_combine_subset_into(&factors[..total_streams], classes, &mut scores)
                    }
                    CombinerKind::CnnOnly => {
                        // Primary-stream-only fusion: expand the first
                        // *present* stream (the legacy CNN-only baseline
                        // when the front camera is up).
                        match self
                            .streams
                            .iter()
                            .enumerate()
                            .find_map(|(k, s)| parents[k].map(|row| (s, row)))
                        {
                            Some((stream, row)) => {
                                stream
                                    .descriptor
                                    .class_map
                                    .expand_into(row, classes, &mut scores)
                            }
                            // Unreachable: `used >= 1` was established
                            // above. Defensive error, not a panic.
                            None => Err(CoreError::NotReady(
                                "every registered stream is unavailable — nothing to \
                                 classify from"
                                    .into(),
                            )),
                        }
                    }
                }
            };
            if let Err(e) = fuse_result {
                // The scores buffer stays taken on error; that only
                // forfeits its reuse.
                self.scores_buf = scores;
                return Err(e);
            }
            let best = scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(c, _)| c)
                .unwrap_or(0);
            if used == total_streams {
                full += 1;
            } else if used > 1 {
                partial += 1;
            } else {
                single_count += 1;
            }
            if out.len() <= i {
                // Growth path: only taken while `out` is still shorter
                // than the batch (warm-up or a larger batch shape); the
                // empty vectors are filled by the shared slot path below.
                out.push(MultiStepClassification {
                    class: 0,
                    scores: Vec::new(),
                    used: Vec::new(),
                    degraded: false,
                });
            }
            if let Some(slot) = out.get_mut(i) {
                slot.class = best;
                slot.scores.clear();
                slot.scores.extend_from_slice(&scores);
                slot.used.clear();
                for (k, stream) in self.streams.iter().enumerate() {
                    if parents[k].is_some() {
                        slot.used.push(stream.descriptor.id);
                    }
                }
                slot.degraded = degraded;
            }
        }
        out.truncate(n);
        self.counters.full += full;
        self.counters.partial += partial;
        self.counters.single += single_count;
        if degraded {
            self.counters.degraded += n as u64;
        }
        self.scores_buf = scores;
        Ok(())
    }
}

impl std::fmt::Debug for MultiModalEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiModalEngine")
            .field("classes", &self.classes)
            .field("kind", &self.kind)
            .field("streams", &self.stream_ids())
            .field("fitted", &self.combiner.as_ref().map(|c| c.is_fitted()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{IMU_FEATURES, WINDOW_LEN};
    use crate::engine::{AnalyticsEngine, EngineConfig, ImuModelSlot};
    use crate::ensemble::{product_combine_into, BayesianCombiner};
    use crate::models::{CnnConfig, RnnConfig};
    use darnet_sim::{Behavior, DriverProfile, FrameRenderer};

    fn tiny_models() -> (FrameCnn, ImuRnn, BayesianCombiner) {
        let cnn_config = CnnConfig {
            input_size: 24,
            classes: 6,
            width: 0.5,
            ..CnnConfig::default()
        };
        let cnn = FrameCnn::new(cnn_config, 1);
        let rnn_config = RnnConfig {
            hidden: 4,
            depth: 1,
            ..RnnConfig::default()
        };
        let mut rnn = ImuRnn::new(rnn_config, 2);
        let x = Tensor::ones(&[6, WINDOW_LEN, IMU_FEATURES]);
        rnn.fit(&x, &[0, 1, 2, 0, 1, 2], 1).unwrap();
        let mut combiner = BayesianCombiner::darnet();
        let cnn_probs = Tensor::full(&[6, 6], 1.0 / 6.0);
        let imu_probs = Tensor::full(&[6, 3], 1.0 / 3.0);
        combiner
            .fit(&cnn_probs, &imu_probs, &[0, 1, 2, 3, 4, 5])
            .unwrap();
        (cnn, rnn, combiner)
    }

    fn legacy_engine(kind: CombinerKind) -> AnalyticsEngine {
        let (cnn, rnn, combiner) = tiny_models();
        AnalyticsEngine::new(
            cnn,
            ImuModelSlot::Rnn(rnn),
            combiner,
            EngineConfig { combiner: kind },
        )
    }

    /// An N=2 registry engine wired exactly like the legacy pair engine:
    /// same models (same seeds), same CPT, same parent order (camera
    /// before IMU, the legacy convention).
    fn registry_engine(kind: CombinerKind) -> MultiModalEngine {
        let (cnn, rnn, combiner) = tiny_models();
        let mut engine = MultiModalEngine::new(6, kind);
        engine
            .register(
                ModalityDescriptor::darnet_camera(),
                StreamModelSlot::Cnn(cnn),
            )
            .unwrap();
        engine
            .register(ModalityDescriptor::darnet_imu(), StreamModelSlot::Rnn(rnn))
            .unwrap();
        engine.set_combiner(combiner.to_nary()).unwrap();
        engine
    }

    fn test_batch(n: usize) -> (Vec<Frame>, Tensor) {
        let renderer = FrameRenderer::new(7).with_size(24);
        let driver = DriverProfile::generate(0, 42);
        let behaviors = [
            Behavior::NormalDriving,
            Behavior::Reaching,
            Behavior::HairMakeup,
            Behavior::Talking,
            Behavior::Texting,
            Behavior::EatingDrinking,
        ];
        let frames: Vec<Frame> = (0..n)
            .map(|i| renderer.render(&driver, behaviors[i % behaviors.len()], i as f64 * 0.31))
            .collect();
        let mut windows = Tensor::zeros(&[n, WINDOW_LEN, IMU_FEATURES]);
        for (i, v) in windows.data_mut().iter_mut().enumerate() {
            *v = (i % 7) as f32 * 0.1;
        }
        (frames, windows)
    }

    fn assert_bitwise(a: &[f32], b: &[f32], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: lane {i}: {x} vs {y}");
        }
    }

    #[test]
    fn identity_expansion_is_verbatim() {
        let probs = [0.25f32, 0.05, 0.1, 0.3, 0.2, 0.1];
        let mut scores = Vec::new();
        ClassMap::Identity
            .expand_into(&probs, 6, &mut scores)
            .unwrap();
        assert_bitwise(&scores, &probs, "identity");
        assert!(ClassMap::Identity
            .expand_into(&probs[..5], 6, &mut scores)
            .is_err());
    }

    #[test]
    fn projection_expansion_matches_legacy_imu_only_formula() {
        let map = ClassMap::darnet_imu();
        let imu = [0.5f32, 0.3, 0.2];
        let mut scores = Vec::new();
        map.expand_into(&imu, 6, &mut scores).unwrap();
        // The frozen legacy formula: fanout-split then total-normalize.
        let fanout = [4.0f32, 1.0, 1.0];
        let m = [0usize, 1, 2, 0, 0, 0];
        let mut expected: Vec<f32> = (0..6).map(|c| imu[m[c]] / fanout[m[c]]).collect();
        let total: f32 = expected.iter().sum();
        for s in &mut expected {
            *s /= total;
        }
        assert_bitwise(&scores, &expected, "projection expansion");
        // 1-to-1 classes keep their full mass.
        assert!((scores[1] - imu[1]).abs() < 1e-6);
        assert!((scores[2] - imu[2]).abs() < 1e-6);
        assert!(map.expand_into(&imu[..2], 6, &mut scores).is_err());
    }

    #[test]
    fn product_subset_pair_is_bitwise_legacy() {
        let cnn = [0.4f32, 0.3, 0.1, 0.05, 0.05, 0.1];
        let imu = [0.2f32, 0.0, 0.8];
        let mut legacy = Vec::new();
        product_combine_into(&cnn, &imu, &mut legacy).unwrap();
        let camera = ModalityDescriptor::darnet_camera();
        let imu_desc = ModalityDescriptor::darnet_imu();
        let mut scores = Vec::new();
        product_combine_subset_into(
            &[
                (Some(&cnn[..]), &camera.class_map, camera.weight),
                (Some(&imu[..]), &imu_desc.class_map, imu_desc.weight),
            ],
            6,
            &mut scores,
        )
        .unwrap();
        assert_bitwise(&scores, &legacy, "product pair");
        // All-absent is an error; a lone present parent is its expansion
        // factor (unnormalized identity row normalizes to itself).
        assert!(
            product_combine_subset_into(&[(None, &camera.class_map, 1.0)], 6, &mut scores).is_err()
        );
    }

    #[test]
    fn n2_registry_engine_is_bitwise_legacy_for_every_combiner() {
        let (frames, windows) = test_batch(5);
        for kind in [
            CombinerKind::Bayesian,
            CombinerKind::Product,
            CombinerKind::CnnOnly,
        ] {
            let mut legacy = legacy_engine(kind);
            let expected = legacy.classify_batch(&frames, &windows).unwrap();

            let mut registry = registry_engine(kind);
            let inputs = [
                (StreamId::CAMERA_FRONT, StreamInput::Frames(&frames)),
                (StreamId::IMU, StreamInput::Windows(&windows)),
            ];
            let mut out = Vec::new();
            registry.classify_batch_into(&inputs, &mut out).unwrap();
            assert_eq!(out.len(), expected.len());
            for (i, (got, want)) in out.iter().zip(&expected).enumerate() {
                assert_bitwise(&got.scores, &want.scores, &format!("{kind:?} item {i}"));
                assert_eq!(got.class, want.behavior.index(), "{kind:?} item {i} class");
                assert_eq!(got.used, vec![StreamId::CAMERA_FRONT, StreamId::IMU]);
                assert!(!got.degraded);
            }
            assert_eq!(registry.counters().full, frames.len() as u64);

            // Repeat calls reuse buffers and stay identical; the session
            // workspace stops allocating after warm-up.
            let misses = registry.ws.cold_misses();
            let snapshot = out.clone();
            registry.classify_batch_into(&inputs, &mut out).unwrap();
            assert_eq!(out, snapshot);
            assert_eq!(registry.ws.cold_misses(), misses, "workspace grew");
        }
    }

    #[test]
    fn parallel_registry_engine_is_bitwise_serial() {
        let (frames, windows) = test_batch(4);
        let inputs = [
            (StreamId::CAMERA_FRONT, StreamInput::Frames(&frames)),
            (StreamId::IMU, StreamInput::Windows(&windows)),
        ];
        let mut serial = registry_engine(CombinerKind::Bayesian);
        let mut expected = Vec::new();
        serial.classify_batch_into(&inputs, &mut expected).unwrap();

        let mut parallel = registry_engine(CombinerKind::Bayesian);
        parallel.set_parallelism(Parallelism::new(4).with_min_work(1));
        let mut out = Vec::new();
        parallel.classify_batch_into(&inputs, &mut out).unwrap();
        assert_eq!(out, expected);
    }

    #[test]
    fn unavailable_stream_falls_back_to_survivor_bitwise() {
        let (frames, windows) = test_batch(1);

        // Camera down → IMU-only expansion, bitwise the legacy fallback.
        let mut legacy = legacy_engine(CombinerKind::Bayesian);
        let row =
            Tensor::from_vec(windows.data().to_vec(), &[1, WINDOW_LEN, IMU_FEATURES]).unwrap();
        let imu_only = legacy
            .classify_step_degraded(None, Some(&row), false)
            .unwrap();

        let mut registry = registry_engine(CombinerKind::Bayesian);
        let inputs = [
            (StreamId::CAMERA_FRONT, StreamInput::Frames(&frames)),
            (StreamId::IMU, StreamInput::Windows(&windows)),
        ];
        let statuses = [(StreamId::CAMERA_FRONT, ModalityStatus::Unavailable)];
        let mut out = Vec::new();
        registry
            .classify_batch_checked_into(&inputs, &statuses, &mut out)
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_bitwise(&out[0].scores, &imu_only.scores, "imu-only fallback");
        assert_eq!(out[0].used, vec![StreamId::IMU]);
        assert!(out[0].degraded);
        assert_eq!(registry.counters().single, 1);

        // IMU down → CNN posterior verbatim, bitwise the legacy fallback.
        let cnn_only = legacy
            .classify_step_degraded(Some(&frames[0]), None, false)
            .unwrap();
        let statuses = [(StreamId::IMU, ModalityStatus::Unavailable)];
        registry
            .classify_batch_checked_into(&inputs, &statuses, &mut out)
            .unwrap();
        assert_bitwise(&out[0].scores, &cnn_only.scores, "cnn-only fallback");
        assert_eq!(out[0].used, vec![StreamId::CAMERA_FRONT]);

        // Everything down → NotReady.
        let statuses = [
            (StreamId::CAMERA_FRONT, ModalityStatus::Unavailable),
            (StreamId::IMU, ModalityStatus::Unavailable),
        ];
        assert!(matches!(
            registry.classify_batch_checked_into(&inputs, &statuses, &mut out),
            Err(CoreError::NotReady(_))
        ));
    }

    #[test]
    fn degraded_stream_still_fuses_but_flags() {
        let (frames, windows) = test_batch(2);
        let inputs = [
            (StreamId::CAMERA_FRONT, StreamInput::Frames(&frames)),
            (StreamId::IMU, StreamInput::Windows(&windows)),
        ];
        let mut registry = registry_engine(CombinerKind::Bayesian);
        let statuses = [(StreamId::CAMERA_FRONT, ModalityStatus::Degraded)];
        let mut out = Vec::new();
        registry
            .classify_batch_checked_into(&inputs, &statuses, &mut out)
            .unwrap();
        assert!(out.iter().all(|o| o.degraded));
        assert_eq!(out[0].used.len(), 2);
        assert_eq!(registry.counters().full, 2);
        assert_eq!(registry.counters().degraded, 2);
    }

    #[test]
    fn three_stream_registry_fuses_any_subset() {
        let (cnn, rnn, _) = tiny_models();
        let side_cnn = FrameCnn::new(
            CnnConfig {
                input_size: 24,
                classes: 6,
                width: 0.5,
                ..CnnConfig::default()
            },
            3,
        );
        let mut engine = MultiModalEngine::new(6, CombinerKind::Bayesian);
        // Ascending StreamId: IMU, front camera, side camera.
        engine
            .register(ModalityDescriptor::darnet_imu(), StreamModelSlot::Rnn(rnn))
            .unwrap();
        engine
            .register(
                ModalityDescriptor::darnet_camera(),
                StreamModelSlot::Cnn(cnn),
            )
            .unwrap();
        engine
            .register(
                ModalityDescriptor::new(StreamId::CAMERA_SIDE, ClassMap::Identity),
                StreamModelSlot::Cnn(side_cnn),
            )
            .unwrap();
        let imu_rows = Tensor::full(&[6, 3], 1.0 / 3.0);
        let cam_rows = Tensor::full(&[6, 6], 1.0 / 6.0);
        engine
            .fit_combiner(&[&imu_rows, &cam_rows, &cam_rows], &[0, 1, 2, 3, 4, 5])
            .unwrap();

        let (frames, windows) = test_batch(3);
        let inputs = [
            (StreamId::IMU, StreamInput::Windows(&windows)),
            (StreamId::CAMERA_FRONT, StreamInput::Frames(&frames)),
            (StreamId::CAMERA_SIDE, StreamInput::Frames(&frames)),
        ];
        let mut out = Vec::new();
        engine.classify_batch_into(&inputs, &mut out).unwrap();
        assert_eq!(out.len(), 3);
        for o in &out {
            assert_eq!(o.scores.len(), 6);
            assert!((o.scores.iter().sum::<f32>() - 1.0).abs() < 1e-4);
            assert_eq!(o.used.len(), 3);
        }
        assert_eq!(engine.counters().full, 3);

        // Drop the side camera (no input at all): plural strict subset.
        let two = [
            (StreamId::IMU, StreamInput::Windows(&windows)),
            (StreamId::CAMERA_FRONT, StreamInput::Frames(&frames)),
        ];
        engine.classify_batch_into(&two, &mut out).unwrap();
        assert!(out.iter().all(|o| o.used.len() == 2 && o.degraded));
        assert_eq!(engine.counters().partial, 3);

        // Single survivor: expansion path.
        let one = [(StreamId::IMU, StreamInput::Windows(&windows))];
        engine.classify_batch_into(&one, &mut out).unwrap();
        assert!(out.iter().all(|o| o.used == vec![StreamId::IMU]));
        assert_eq!(engine.counters().single, 3);
    }

    #[test]
    fn registration_is_validated() {
        let (cnn, rnn, _) = tiny_models();
        let mut engine = MultiModalEngine::new(6, CombinerKind::Bayesian);
        // A 6-class model cannot serve a 3-class projection descriptor.
        assert!(engine
            .register(ModalityDescriptor::darnet_imu(), StreamModelSlot::Cnn(cnn))
            .is_err());
        engine
            .register(ModalityDescriptor::darnet_imu(), StreamModelSlot::Rnn(rnn))
            .unwrap();
        // Duplicate id.
        let (_, rnn2, _) = tiny_models();
        assert!(engine
            .register(ModalityDescriptor::darnet_imu(), StreamModelSlot::Rnn(rnn2))
            .is_err());
        // A combiner with the wrong parent cards is rejected.
        let wrong = NaryBayesianCombiner::new(6, vec![6, 3], 1.0);
        assert!(engine.set_combiner(wrong).is_err());
        // Nothing registered at all → NotReady.
        let mut empty = MultiModalEngine::new(6, CombinerKind::Bayesian);
        let mut out = Vec::new();
        assert!(matches!(
            empty.classify_batch_into(&[], &mut out),
            Err(CoreError::NotReady(_))
        ));
        // Unknown input id → Dataset error.
        let windows = Tensor::zeros(&[1, WINDOW_LEN, IMU_FEATURES]);
        let unknown = [(StreamId(9), StreamInput::Windows(&windows))];
        assert!(matches!(
            engine.classify_batch_into(&unknown, &mut out),
            Err(CoreError::Dataset(_))
        ));
        // No usable stream (inputs empty) → NotReady.
        assert!(matches!(
            engine.classify_batch_into(&[], &mut out),
            Err(CoreError::NotReady(_))
        ));
    }

    #[test]
    fn empty_batch_clears_output() {
        let mut engine = registry_engine(CombinerKind::Bayesian);
        let frames: Vec<Frame> = Vec::new();
        let windows = Tensor::zeros(&[0, WINDOW_LEN, IMU_FEATURES]);
        let inputs = [
            (StreamId::CAMERA_FRONT, StreamInput::Frames(&frames)),
            (StreamId::IMU, StreamInput::Windows(&windows)),
        ];
        let mut out = vec![MultiStepClassification {
            class: 0,
            scores: vec![1.0],
            used: vec![StreamId::IMU],
            degraded: false,
        }];
        engine.classify_batch_into(&inputs, &mut out).unwrap();
        assert!(out.is_empty());
    }
}
