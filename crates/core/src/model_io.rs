//! Model persistence.
//!
//! The paper commits to "making the software and learning models available
//! to the general research community"; this module provides the model
//! half: a compact binary weight format (`DNWT`) plus save/load for every
//! trainable component. The format is a length-prefixed sequence of
//! tensors (rank, dims, little-endian `f32` data) with a magic header and
//! version byte.

use std::io::Write as _;
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use darnet_tensor::Tensor;

use crate::error::CoreError;
use crate::models::{FrameCnn, ImuRnn};
use crate::Result;

const MAGIC: &[u8; 4] = b"DNWT";
const VERSION: u8 = 1;

/// Serializes a list of tensors into the `DNWT` binary format.
pub fn encode_tensors(tensors: &[Tensor]) -> Vec<u8> {
    let total: usize = tensors.iter().map(|t| t.len() * 4 + 64).sum();
    let mut buf = BytesMut::with_capacity(16 + total);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u32(tensors.len() as u32);
    for t in tensors {
        buf.put_u8(t.rank() as u8);
        for &d in t.dims() {
            buf.put_u32(d as u32);
        }
        for &v in t.data() {
            buf.put_f32_le(v);
        }
    }
    buf.to_vec()
}

/// Deserializes a `DNWT` byte stream back into tensors.
///
/// # Errors
///
/// Returns [`CoreError::Dataset`] on a bad magic, unsupported version, or
/// truncated payload.
pub fn decode_tensors(data: &[u8]) -> Result<Vec<Tensor>> {
    let mut buf = Bytes::copy_from_slice(data);
    let fail = |msg: &str| CoreError::Dataset(format!("weight decode: {msg}"));
    if buf.remaining() < 9 {
        return Err(fail("truncated header"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(fail("bad magic"));
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(fail(&format!("unsupported version {version}")));
    }
    let count = buf.get_u32() as usize;
    let mut out = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        if buf.remaining() < 1 {
            return Err(fail("truncated tensor header"));
        }
        let rank = buf.get_u8() as usize;
        if buf.remaining() < rank * 4 {
            return Err(fail("truncated dims"));
        }
        let dims: Vec<usize> = (0..rank).map(|_| buf.get_u32() as usize).collect();
        let len: usize = dims.iter().product();
        if buf.remaining() < len * 4 {
            return Err(fail("truncated data"));
        }
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(buf.get_f32_le());
        }
        out.push(Tensor::from_vec(data, &dims)?);
    }
    Ok(out)
}

fn write_file(path: &Path, bytes: &[u8]) -> Result<()> {
    let mut f = std::fs::File::create(path)
        .map_err(|e| CoreError::Dataset(format!("creating {}: {e}", path.display())))?;
    f.write_all(bytes)
        .map_err(|e| CoreError::Dataset(format!("writing {}: {e}", path.display())))?;
    Ok(())
}

fn read_file(path: &Path) -> Result<Vec<u8>> {
    std::fs::read(path).map_err(|e| CoreError::Dataset(format!("reading {}: {e}", path.display())))
}

impl FrameCnn {
    /// Exports every trainable parameter value in layer order.
    pub fn export_weights(&mut self) -> Vec<Tensor> {
        self.all_params_mut()
            .iter()
            .map(|p| p.value.clone())
            .collect()
    }

    /// Imports parameter values previously produced by
    /// [`FrameCnn::export_weights`] on an identically configured model.
    ///
    /// # Errors
    ///
    /// Returns an error if count or shapes disagree.
    pub fn import_weights(&mut self, weights: &[Tensor]) -> Result<()> {
        let mut params = self.all_params_mut();
        if params.len() != weights.len() {
            return Err(CoreError::Dataset(format!(
                "weight count mismatch: model has {}, file has {}",
                params.len(),
                weights.len()
            )));
        }
        for (p, w) in params.iter_mut().zip(weights) {
            if p.value.dims() != w.dims() {
                return Err(CoreError::Dataset(format!(
                    "weight shape mismatch: {:?} vs {:?}",
                    p.value.dims(),
                    w.dims()
                )));
            }
            p.value = w.clone();
        }
        Ok(())
    }

    /// Saves the model weights to a `DNWT` file.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be written.
    pub fn save_weights(&mut self, path: &Path) -> Result<()> {
        let w = self.export_weights();
        write_file(path, &encode_tensors(&w))
    }

    /// Loads weights from a `DNWT` file into this (identically configured)
    /// model.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O, decode, or shape problems.
    pub fn load_weights(&mut self, path: &Path) -> Result<()> {
        let tensors = decode_tensors(&read_file(path)?)?;
        self.import_weights(&tensors)
    }
}

impl ImuRnn {
    /// Exports every trainable parameter value plus the fitted
    /// standardizer (mean and std rows appended at the end).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotReady`] if the model has not been fitted
    /// (the standardizer is part of the inference function).
    pub fn export_weights(&mut self) -> Result<Vec<Tensor>> {
        let (mean, std) = self
            .standardizer_params()
            .ok_or_else(|| CoreError::NotReady("imu rnn not fitted".into()))?;
        let mut out: Vec<Tensor> = self
            .all_params_mut()
            .iter()
            .map(|p| p.value.clone())
            .collect();
        out.push(mean);
        out.push(std);
        Ok(out)
    }

    /// Imports weights + standardizer produced by
    /// [`ImuRnn::export_weights`].
    ///
    /// # Errors
    ///
    /// Returns an error on count/shape mismatch.
    pub fn import_weights(&mut self, weights: &[Tensor]) -> Result<()> {
        if weights.len() < 2 {
            return Err(CoreError::Dataset("weight file too short".into()));
        }
        let (params_part, std_part) = weights.split_at(weights.len() - 2);
        {
            let mut params = self.all_params_mut();
            if params.len() != params_part.len() {
                return Err(CoreError::Dataset(format!(
                    "weight count mismatch: model has {}, file has {}",
                    params.len(),
                    params_part.len()
                )));
            }
            for (p, w) in params.iter_mut().zip(params_part) {
                if p.value.dims() != w.dims() {
                    return Err(CoreError::Dataset(format!(
                        "weight shape mismatch: {:?} vs {:?}",
                        p.value.dims(),
                        w.dims()
                    )));
                }
                p.value = w.clone();
            }
        }
        self.set_standardizer_params(&std_part[0], &std_part[1])?;
        Ok(())
    }

    /// Saves the model to a `DNWT` file.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O problems or an unfitted model.
    pub fn save_weights(&mut self, path: &Path) -> Result<()> {
        let w = self.export_weights()?;
        write_file(path, &encode_tensors(&w))
    }

    /// Loads a `DNWT` file into this (identically configured) model.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O, decode, or shape problems.
    pub fn load_weights(&mut self, path: &Path) -> Result<()> {
        let tensors = decode_tensors(&read_file(path)?)?;
        self.import_weights(&tensors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{CnnConfig, RnnConfig};
    use darnet_tensor::SplitMix64;

    #[test]
    fn tensor_codec_roundtrips() {
        let tensors = vec![
            Tensor::from_vec(vec![1.0, -2.5, 3.25], &[3]).unwrap(),
            Tensor::zeros(&[2, 3, 4]),
            Tensor::scalar(7.5),
        ];
        let encoded = encode_tensors(&tensors);
        let decoded = decode_tensors(&encoded).unwrap();
        assert_eq!(decoded, tensors);
    }

    #[test]
    fn codec_rejects_garbage() {
        assert!(decode_tensors(b"nope").is_err());
        assert!(decode_tensors(b"DNWT").is_err());
        let mut bad_version = encode_tensors(&[Tensor::scalar(1.0)]);
        bad_version[4] = 99;
        assert!(decode_tensors(&bad_version).is_err());
        let truncated = encode_tensors(&[Tensor::zeros(&[100])]);
        assert!(decode_tensors(&truncated[..20]).is_err());
    }

    #[test]
    fn cnn_weights_roundtrip_preserves_predictions() {
        let config = CnnConfig {
            input_size: 24,
            classes: 3,
            width: 0.5,
            ..CnnConfig::default()
        };
        let mut a = FrameCnn::new(config, 1);
        let mut b = FrameCnn::new(config, 2); // different init
        let x = {
            let mut rng = SplitMix64::new(3);
            let mut t = Tensor::zeros(&[2, 1, 24, 24]);
            for v in t.data_mut() {
                *v = rng.uniform(0.0, 1.0);
            }
            t
        };
        let before = a.predict_proba(&x).unwrap();
        let weights = a.export_weights();
        b.import_weights(&weights).unwrap();
        let after = b.predict_proba(&x).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn cnn_save_load_via_file() {
        let config = CnnConfig {
            input_size: 24,
            classes: 2,
            width: 0.5,
            ..CnnConfig::default()
        };
        let mut a = FrameCnn::new(config, 4);
        let path = std::env::temp_dir().join("darnet_cnn_test.dnwt");
        a.save_weights(&path).unwrap();
        let mut b = FrameCnn::new(config, 5);
        b.load_weights(&path).unwrap();
        let x = Tensor::full(&[1, 1, 24, 24], 0.5);
        assert_eq!(a.predict_proba(&x).unwrap(), b.predict_proba(&x).unwrap());
    }

    #[test]
    fn import_rejects_mismatched_architecture() {
        let mut small = FrameCnn::new(
            CnnConfig {
                input_size: 24,
                classes: 2,
                width: 0.5,
                ..CnnConfig::default()
            },
            6,
        );
        let mut big = FrameCnn::new(
            CnnConfig {
                input_size: 24,
                classes: 2,
                width: 1.0,
                ..CnnConfig::default()
            },
            7,
        );
        let w = small.export_weights();
        assert!(big.import_weights(&w).is_err());
    }

    #[test]
    fn rnn_weights_roundtrip_with_standardizer() {
        let config = RnnConfig {
            features: 4,
            hidden: 6,
            depth: 1,
            classes: 2,
            ..RnnConfig::default()
        };
        let mut a = ImuRnn::new(config, 8);
        // Fit briefly so the standardizer exists.
        let mut rng = SplitMix64::new(9);
        let mut x = Tensor::zeros(&[8, 5, 4]);
        for v in x.data_mut() {
            *v = rng.uniform(-2.0, 2.0);
        }
        a.fit(&x, &[0, 1, 0, 1, 0, 1, 0, 1], 2).unwrap();
        let before = a.predict_proba(&x).unwrap();

        let path = std::env::temp_dir().join("darnet_rnn_test.dnwt");
        a.save_weights(&path).unwrap();
        let mut b = ImuRnn::new(config, 10);
        b.load_weights(&path).unwrap();
        let after = b.predict_proba(&x).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn unfitted_rnn_cannot_be_saved() {
        let mut rnn = ImuRnn::new(
            RnnConfig {
                features: 4,
                hidden: 4,
                depth: 1,
                classes: 2,
                ..RnnConfig::default()
            },
            11,
        );
        assert!(rnn.export_weights().is_err());
    }
}
