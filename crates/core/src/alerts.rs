//! Real-time distraction alerting on top of per-time-step classifications
//! — the paper's motivating application ("providing real-time alerts to
//! drivers and fleet managers", §1).
//!
//! The policy is debounced both ways: an alert fires after `trigger_steps`
//! consecutive distracted classifications with mean confidence above a
//! threshold, and clears after `clear_steps` consecutive normal ones. This
//! addresses the usability concern the paper raises about false positives
//! ("a high false positive rate for distracted driving would diminish the
//! user experience", §5.2).

use darnet_sim::Behavior;
use serde::{Deserialize, Serialize};

use crate::engine::StepClassification;

/// Alert policy parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlertPolicy {
    /// Consecutive distracted steps required to raise an alert.
    pub trigger_steps: usize,
    /// Consecutive normal steps required to clear an active alert.
    pub clear_steps: usize,
    /// Minimum mean fused confidence over the trigger window.
    pub min_confidence: f32,
}

impl Default for AlertPolicy {
    fn default() -> Self {
        AlertPolicy {
            // 3 steps at the 4 Hz pipeline ≈ 750 ms of sustained
            // distraction before alerting.
            trigger_steps: 3,
            clear_steps: 4,
            min_confidence: 0.5,
        }
    }
}

/// Alert-state transition produced by one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlertEvent {
    /// Nothing changed.
    None,
    /// A new alert was raised for the given behaviour.
    Raised(Behavior),
    /// The active alert cleared.
    Cleared,
}

/// Stateful alert tracker for one driver.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertTracker {
    policy: AlertPolicy,
    distracted_streak: usize,
    normal_streak: usize,
    confidence_acc: f32,
    active: Option<Behavior>,
    raised_total: usize,
}

impl AlertTracker {
    /// Creates a tracker with the given policy.
    pub fn new(policy: AlertPolicy) -> Self {
        AlertTracker {
            policy,
            distracted_streak: 0,
            normal_streak: 0,
            confidence_acc: 0.0,
            active: None,
            raised_total: 0,
        }
    }

    /// The currently active alert, if any.
    pub fn active(&self) -> Option<Behavior> {
        self.active
    }

    /// Total alerts raised over the tracker's lifetime.
    pub fn raised_total(&self) -> usize {
        self.raised_total
    }

    /// Feeds one classification step; returns the transition it causes.
    pub fn observe(&mut self, step: &StepClassification) -> AlertEvent {
        let confidence = step.scores.iter().cloned().fold(0.0f32, f32::max);
        if step.behavior == Behavior::NormalDriving {
            self.distracted_streak = 0;
            self.confidence_acc = 0.0;
            if self.active.is_some() {
                self.normal_streak += 1;
                if self.normal_streak >= self.policy.clear_steps {
                    self.active = None;
                    self.normal_streak = 0;
                    return AlertEvent::Cleared;
                }
            }
            return AlertEvent::None;
        }
        // Distracted step.
        self.normal_streak = 0;
        self.distracted_streak += 1;
        self.confidence_acc += confidence;
        if self.active.is_none() && self.distracted_streak >= self.policy.trigger_steps {
            let mean_conf = self.confidence_acc / self.distracted_streak as f32;
            if mean_conf >= self.policy.min_confidence {
                self.active = Some(step.behavior);
                self.raised_total += 1;
                self.distracted_streak = 0;
                self.confidence_acc = 0.0;
                return AlertEvent::Raised(step.behavior);
            }
        }
        AlertEvent::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(behavior: Behavior, confidence: f32) -> StepClassification {
        let mut scores = vec![(1.0 - confidence) / 5.0; 6];
        scores[behavior.index()] = confidence;
        StepClassification {
            behavior,
            scores,
            cnn_probs: vec![1.0 / 6.0; 6],
            imu_probs: vec![1.0 / 3.0; 3],
            source: crate::engine::FusionSource::Fused,
            degraded: false,
        }
    }

    #[test]
    fn alert_fires_after_sustained_distraction() {
        let mut tracker = AlertTracker::new(AlertPolicy::default());
        assert_eq!(
            tracker.observe(&step(Behavior::Texting, 0.9)),
            AlertEvent::None
        );
        assert_eq!(
            tracker.observe(&step(Behavior::Texting, 0.9)),
            AlertEvent::None
        );
        assert_eq!(
            tracker.observe(&step(Behavior::Texting, 0.9)),
            AlertEvent::Raised(Behavior::Texting)
        );
        assert_eq!(tracker.active(), Some(Behavior::Texting));
        assert_eq!(tracker.raised_total(), 1);
    }

    #[test]
    fn single_blips_do_not_alert() {
        let mut tracker = AlertTracker::new(AlertPolicy::default());
        for _ in 0..10 {
            assert_eq!(
                tracker.observe(&step(Behavior::Talking, 0.9)),
                AlertEvent::None
            );
            assert_eq!(
                tracker.observe(&step(Behavior::Talking, 0.9)),
                AlertEvent::None
            );
            assert_eq!(
                tracker.observe(&step(Behavior::NormalDriving, 0.9)),
                AlertEvent::None
            );
        }
        assert_eq!(tracker.raised_total(), 0);
    }

    #[test]
    fn low_confidence_streaks_do_not_alert() {
        let mut tracker = AlertTracker::new(AlertPolicy::default());
        for _ in 0..6 {
            let event = tracker.observe(&step(Behavior::Reaching, 0.3));
            assert_eq!(event, AlertEvent::None);
        }
        assert_eq!(tracker.active(), None);
    }

    #[test]
    fn alert_clears_after_sustained_normal_driving() {
        let mut tracker = AlertTracker::new(AlertPolicy::default());
        for _ in 0..3 {
            tracker.observe(&step(Behavior::Texting, 0.9));
        }
        assert!(tracker.active().is_some());
        for _ in 0..3 {
            assert_eq!(
                tracker.observe(&step(Behavior::NormalDriving, 0.8)),
                AlertEvent::None
            );
        }
        assert_eq!(
            tracker.observe(&step(Behavior::NormalDriving, 0.8)),
            AlertEvent::Cleared
        );
        assert_eq!(tracker.active(), None);
    }

    #[test]
    fn distraction_interrupts_clearing() {
        let mut tracker = AlertTracker::new(AlertPolicy::default());
        for _ in 0..3 {
            tracker.observe(&step(Behavior::Talking, 0.9));
        }
        // Two normal steps, then distraction again: the clear streak
        // resets and the alert stays up.
        tracker.observe(&step(Behavior::NormalDriving, 0.8));
        tracker.observe(&step(Behavior::NormalDriving, 0.8));
        tracker.observe(&step(Behavior::Talking, 0.9));
        for _ in 0..3 {
            tracker.observe(&step(Behavior::NormalDriving, 0.8));
        }
        assert!(tracker.active().is_some(), "clear streak should have reset");
    }

    #[test]
    fn custom_policy_is_respected() {
        let mut tracker = AlertTracker::new(AlertPolicy {
            trigger_steps: 1,
            clear_steps: 1,
            min_confidence: 0.0,
        });
        assert_eq!(
            tracker.observe(&step(Behavior::HairMakeup, 0.4)),
            AlertEvent::Raised(Behavior::HairMakeup)
        );
        assert_eq!(
            tracker.observe(&step(Behavior::NormalDriving, 0.4)),
            AlertEvent::Cleared
        );
    }
}
