//! The modular analytics engine (paper §3.3): a 1-to-1 mapping between
//! device data-streams and models, combined at a later stage, classifying
//! at each time-step for near-real-time detection.

use darnet_sim::{Behavior, Frame};
use darnet_tensor::{Parallelism, Tensor, Workspace};

use crate::dataset::{frames_to_tensor, frames_to_tensor_into, IMU_FEATURES, WINDOW_LEN};
use crate::ensemble::{BayesianCombiner, CombinerKind, NaryBayesianCombiner};
use crate::error::CoreError;
use crate::health::ModalityStatus;
use crate::models::{FrameCnn, ImuRnn, ImuSvm};
use crate::privacy::{Downsampler, PrivacyLevel};
use crate::registry::{product_combine_subset_into, ModalityDescriptor};
use crate::Result;

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// How the two modalities are fused.
    pub combiner: CombinerKind,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            combiner: CombinerKind::Bayesian,
        }
    }
}

/// The IMU model slot: the engine's stream→model mapping is modular, so
/// either the paper's RNN or the SVM baseline can serve the IMU stream.
// One slot exists per engine and is never moved after construction, so the
// RNN/SVM size gap doesn't justify boxing the variants.
#[allow(clippy::large_enum_variant)]
pub enum ImuModelSlot {
    /// Deep bidirectional LSTM (the DarNet configuration).
    Rnn(ImuRnn),
    /// Linear SVM baseline.
    Svm(ImuSvm),
}

impl std::fmt::Debug for ImuModelSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImuModelSlot::Rnn(_) => f.write_str("ImuModelSlot::Rnn"),
            ImuModelSlot::Svm(_) => f.write_str("ImuModelSlot::Svm"),
        }
    }
}

/// Which posteriors a classification was computed from. Anything other
/// than [`FusionSource::Fused`] means the ensemble degraded gracefully to
/// the surviving modality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FusionSource {
    /// Both modalities contributed (the normal ensemble path).
    Fused,
    /// IMU stream was unavailable: the CNN posterior alone decided.
    CnnOnly,
    /// Camera stream was unavailable: the IMU posterior alone decided,
    /// expanded from 3 IMU classes to the 6-class taxonomy.
    ImuOnly,
}

/// Running counts of which path each classification took.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FallbackCounters {
    /// Classifications fused from both modalities.
    pub fused: u64,
    /// CNN-only fallbacks (IMU stream down).
    pub cnn_only: u64,
    /// IMU-only fallbacks (camera stream down).
    pub imu_only: u64,
    /// Classifications (any source) computed from a degraded stream.
    pub degraded: u64,
}

/// One per-time-step classification result.
#[derive(Debug, Clone, PartialEq)]
pub struct StepClassification {
    /// The fused 6-class decision.
    pub behavior: Behavior,
    /// Fused class scores (normalized).
    pub scores: Vec<f32>,
    /// The CNN's 6-class probabilities (empty on an IMU-only fallback).
    pub cnn_probs: Vec<f32>,
    /// The IMU model's 3-class probabilities (empty on a CNN-only
    /// fallback).
    pub imu_probs: Vec<f32>,
    /// Which posteriors produced the decision.
    pub source: FusionSource,
    /// `true` if a contributing stream was lossy enough to be flagged
    /// degraded (but still used).
    pub degraded: bool,
}

/// The assembled engine: frame CNN + IMU model + combiner, with optional
/// per-privacy-level dCNN students for distorted input.
pub struct AnalyticsEngine {
    cnn: FrameCnn,
    imu: ImuModelSlot,
    /// The fitted pair combiner, held in its N-ary registry form: the
    /// legacy CPT is carried over verbatim, so N=2 fusion through
    /// [`NaryBayesianCombiner::combine_subset_into`] is bit-for-bit the
    /// historical [`BayesianCombiner::combine_into`].
    nary: NaryBayesianCombiner,
    /// Registry descriptors for the engine's two fixed streams, in the
    /// legacy CPT's parent order: front camera (identity) then IMU
    /// (6→3 projection).
    descriptors: [ModalityDescriptor; 2],
    config: EngineConfig,
    downsampler: Downsampler,
    students: Vec<(PrivacyLevel, FrameCnn)>,
    fallbacks: FallbackCounters,
    parallelism: Parallelism,
    /// Session buffers for the zero-alloc `*_into` classification path:
    /// a workspace for the assembled input tensors plus flat probability
    /// and score buffers reused across calls.
    pub(crate) ws: Workspace,
    cnn_buf: Vec<f32>,
    imu_buf: Vec<f32>,
    scores_buf: Vec<f32>,
    pub(crate) tuple_frames: Vec<Frame>,
}

impl AnalyticsEngine {
    /// Assembles an engine from trained components.
    pub fn new(
        cnn: FrameCnn,
        imu: ImuModelSlot,
        combiner: BayesianCombiner,
        config: EngineConfig,
    ) -> Self {
        let full = cnn.config().input_size;
        AnalyticsEngine {
            cnn,
            imu,
            nary: combiner.to_nary(),
            descriptors: [
                ModalityDescriptor::darnet_camera(),
                ModalityDescriptor::darnet_imu(),
            ],
            config,
            downsampler: Downsampler::new(full),
            students: Vec::new(),
            fallbacks: FallbackCounters::default(),
            parallelism: Parallelism::serial(),
            ws: Workspace::new(),
            cnn_buf: Vec::new(),
            imu_buf: Vec::new(),
            scores_buf: Vec::new(),
            tuple_frames: Vec::new(),
        }
    }

    /// Installs a [`Parallelism`] handle: every model's tensor products
    /// fan out across its threads, and a non-serial handle additionally
    /// runs the CNN and IMU branches of [`AnalyticsEngine::classify_batch`]
    /// concurrently.
    pub fn set_parallelism(&mut self, par: Parallelism) {
        self.parallelism = par;
        self.cnn.set_parallelism(par);
        if let ImuModelSlot::Rnn(m) = &mut self.imu {
            m.set_parallelism(par);
        }
        for (_, student) in &mut self.students {
            student.set_parallelism(par);
        }
    }

    /// Running counts of fused vs fallback classifications.
    pub fn fallback_counters(&self) -> FallbackCounters {
        self.fallbacks
    }

    /// `(pool_hits, cold_misses)` of the engine's session workspace.
    /// Once the `_into` paths are warm at a given batch shape, the cold
    /// misses stay constant across calls — the observable form of the
    /// zero-alloc steady state (DESIGN.md §12).
    pub fn workspace_stats(&self) -> (u64, u64) {
        (self.ws.pool_hits(), self.ws.cold_misses())
    }

    /// Registers a distilled dCNN student for a privacy level.
    pub fn register_dcnn(&mut self, level: PrivacyLevel, mut student: FrameCnn) {
        student.set_parallelism(self.parallelism);
        self.students.retain(|(l, _)| *l != level);
        self.students.push((level, student));
    }

    /// Privacy levels with registered students.
    pub fn privacy_levels(&self) -> Vec<PrivacyLevel> {
        self.students.iter().map(|(l, _)| *l).collect()
    }

    fn imu_probs(&mut self, window: &Tensor) -> Result<Vec<f32>> {
        if window.dims() != [1, WINDOW_LEN, IMU_FEATURES] {
            return Err(CoreError::Dataset(format!(
                "expected [1, {WINDOW_LEN}, {IMU_FEATURES}] window, got {:?}",
                window.dims()
            )));
        }
        let probs = match &mut self.imu {
            ImuModelSlot::Rnn(m) => m.predict_proba(window)?,
            ImuModelSlot::Svm(m) => m.predict_proba(window)?,
        };
        Ok(probs.into_vec())
    }

    fn fuse(&self, cnn_probs: &[f32], imu_probs: &[f32]) -> Result<Vec<f32>> {
        let mut scores = Vec::with_capacity(6);
        self.fuse_into(cnn_probs, imu_probs, &mut scores)?;
        Ok(scores)
    }

    /// Fuses the pair of posteriors through the registry primitives (the
    /// N=2 special case): bitwise-identical to the historical pair
    /// combiners.
    // darlint: hot
    fn fuse_into(&self, cnn_probs: &[f32], imu_probs: &[f32], scores: &mut Vec<f32>) -> Result<()> {
        match self.config.combiner {
            CombinerKind::Bayesian => self
                .nary
                .combine_subset_into(&[Some(cnn_probs), Some(imu_probs)], scores),
            CombinerKind::Product => product_combine_subset_into(
                &[
                    (
                        Some(cnn_probs),
                        &self.descriptors[0].class_map,
                        self.descriptors[0].weight,
                    ),
                    (
                        Some(imu_probs),
                        &self.descriptors[1].class_map,
                        self.descriptors[1].weight,
                    ),
                ],
                6,
                scores,
            ),
            CombinerKind::CnnOnly => self.descriptors[0]
                .class_map
                .expand_into(cnn_probs, 6, scores),
        }
    }

    fn decide(
        &mut self,
        scores: Vec<f32>,
        cnn_probs: Vec<f32>,
        imu_probs: Vec<f32>,
        source: FusionSource,
        degraded: bool,
    ) -> Result<StepClassification> {
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let behavior = Behavior::from_index(best)
            .ok_or_else(|| CoreError::Dataset(format!("class index {best} out of range")))?;
        match source {
            FusionSource::Fused => self.fallbacks.fused += 1,
            FusionSource::CnnOnly => self.fallbacks.cnn_only += 1,
            FusionSource::ImuOnly => self.fallbacks.imu_only += 1,
        }
        if degraded {
            self.fallbacks.degraded += 1;
        }
        Ok(StepClassification {
            behavior,
            scores,
            cnn_probs,
            imu_probs,
            source,
            degraded,
        })
    }

    fn classify_with_cnn_probs(
        &mut self,
        cnn_probs: Vec<f32>,
        window: &Tensor,
    ) -> Result<StepClassification> {
        let imu_probs = self.imu_probs(window)?;
        let scores = self.fuse(&cnn_probs, &imu_probs)?;
        self.decide(scores, cnn_probs, imu_probs, FusionSource::Fused, false)
    }

    /// Expands the IMU model's 3-class posterior onto the 6-class
    /// taxonomy via the registry's projection expansion (each IMU
    /// class's mass split uniformly across the behaviours mapping to
    /// it) — bitwise the historical hand-rolled expansion.
    fn imu_only_scores(&self, imu_probs: &[f32]) -> Result<Vec<f32>> {
        let mut scores = Vec::with_capacity(6);
        self.descriptors[1]
            .class_map
            .expand_into(imu_probs, 6, &mut scores)?;
        Ok(scores)
    }

    /// Degradation-tolerant classification: classifies from whichever
    /// modalities are present, falling back to the surviving model's
    /// posterior when one is `None`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotReady`] when both modalities are absent;
    /// propagates model errors otherwise.
    pub fn classify_step_degraded(
        &mut self,
        frame: Option<&Frame>,
        window: Option<&Tensor>,
        flag_degraded: bool,
    ) -> Result<StepClassification> {
        match (frame, window) {
            (Some(frame), Some(window)) => {
                let mut out = self.classify_step(frame, window)?;
                if flag_degraded {
                    out.degraded = true;
                    self.fallbacks.degraded += 1;
                }
                Ok(out)
            }
            (Some(frame), None) => {
                let frames = frames_to_tensor(std::slice::from_ref(frame))?;
                let cnn_probs = self.cnn.predict_proba(&frames)?.into_vec();
                self.decide(
                    cnn_probs.clone(),
                    cnn_probs,
                    Vec::new(),
                    FusionSource::CnnOnly,
                    flag_degraded,
                )
            }
            (None, Some(window)) => {
                let imu_probs = self.imu_probs(window)?;
                let scores = self.imu_only_scores(&imu_probs)?;
                self.decide(
                    scores,
                    Vec::new(),
                    imu_probs,
                    FusionSource::ImuOnly,
                    flag_degraded,
                )
            }
            (None, None) => Err(CoreError::NotReady(
                "both modality streams unavailable — nothing to classify from".into(),
            )),
        }
    }

    /// Health-aware classification: both inputs are physically present,
    /// but each stream's [`ModalityStatus`] (from
    /// [`crate::health::HealthPolicy::assess`] over the controller's
    /// delivery accounting) gates whether it participates. An
    /// `Unavailable` stream's posterior is dropped entirely; a `Degraded`
    /// one still fuses but flags the result.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotReady`] when both streams are unavailable.
    pub fn classify_step_checked(
        &mut self,
        frame: &Frame,
        window: &Tensor,
        camera: ModalityStatus,
        imu: ModalityStatus,
    ) -> Result<StepClassification> {
        let use_frame = (camera != ModalityStatus::Unavailable).then_some(frame);
        let use_window = (imu != ModalityStatus::Unavailable).then_some(window);
        let degraded = (use_frame.is_some() && camera == ModalityStatus::Degraded)
            || (use_window.is_some() && imu == ModalityStatus::Degraded);
        self.classify_step_degraded(use_frame, use_window, degraded)
    }

    /// Classifies one time-step: a full-resolution frame plus the IMU
    /// window ending at the same instant.
    ///
    /// # Errors
    ///
    /// Propagates model errors; returns a dataset error on a malformed
    /// window.
    pub fn classify_step(&mut self, frame: &Frame, window: &Tensor) -> Result<StepClassification> {
        let frames = frames_to_tensor(std::slice::from_ref(frame))?;
        let cnn_probs = self.cnn.predict_proba(&frames)?.into_vec();
        self.classify_with_cnn_probs(cnn_probs, window)
    }

    /// Classifies a batch of aligned time-steps in one pass: `frames[i]`
    /// pairs with window `i` of the `[n, WINDOW_LEN, IMU_FEATURES]`
    /// tensor. Each item's result is identical to what
    /// [`AnalyticsEngine::classify_step`] would produce for it alone; the
    /// batch amortizes the per-call model overhead, and a non-serial
    /// [`Parallelism`] handle runs the CNN and IMU branches on concurrent
    /// threads before the combiner joins them.
    ///
    /// # Errors
    ///
    /// Propagates model errors; returns a dataset error when the window
    /// count does not match the frame count.
    pub fn classify_batch(
        &mut self,
        frames: &[Frame],
        windows: &Tensor,
    ) -> Result<Vec<StepClassification>> {
        let n = frames.len();
        if windows.dims() != [n, WINDOW_LEN, IMU_FEATURES] {
            return Err(CoreError::Dataset(format!(
                "expected [{n}, {WINDOW_LEN}, {IMU_FEATURES}] windows, got {:?}",
                windows.dims()
            )));
        }
        if n == 0 {
            return Ok(Vec::new());
        }
        let frame_tensor = frames_to_tensor(frames)?;
        let (cnn_probs, imu_probs) = self.predict_branches(&frame_tensor, windows)?;
        let classes = cnn_probs.dims()[1];
        let imu_classes = imu_probs.dims()[1];
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let cp = cnn_probs.data()[i * classes..(i + 1) * classes].to_vec();
            let ip = imu_probs.data()[i * imu_classes..(i + 1) * imu_classes].to_vec();
            let scores = self.fuse(&cp, &ip)?;
            out.push(self.decide(scores, cp, ip, FusionSource::Fused, false)?);
        }
        Ok(out)
    }

    /// [`AnalyticsEngine::classify_step`] on the session's reused
    /// buffers: equivalent to calling
    /// [`AnalyticsEngine::classify_batch_into`] with a single-item batch.
    ///
    /// # Errors
    ///
    /// Propagates model errors; returns a dataset error on a malformed
    /// window.
    pub fn classify_step_into(
        &mut self,
        frame: &Frame,
        window: &Tensor,
        out: &mut Vec<StepClassification>,
    ) -> Result<()> {
        self.classify_batch_into(std::slice::from_ref(frame), window, out)
    }

    /// [`AnalyticsEngine::classify_batch`] writing results into a reused
    /// output vector: existing entries are updated in place (their inner
    /// vectors keep their capacity) and the vector is truncated or grown
    /// to the batch length. After one warm-up call at a given batch
    /// shape, a steady-state call performs **zero heap allocations** end
    /// to end — input assembly, both model branches, fusion, and result
    /// write-back all run on workspace checkouts and reused buffers —
    /// and every result is bitwise-identical to
    /// [`AnalyticsEngine::classify_batch`].
    ///
    /// # Errors
    ///
    /// Propagates model errors; returns a dataset error when the window
    /// count does not match the frame count.
    // darlint: hot
    pub fn classify_batch_into(
        &mut self,
        frames: &[Frame],
        windows: &Tensor,
        out: &mut Vec<StepClassification>,
    ) -> Result<()> {
        let n = frames.len();
        if windows.dims() != [n, WINDOW_LEN, IMU_FEATURES] {
            return Err(CoreError::Dataset(format!(
                "expected [{n}, {WINDOW_LEN}, {IMU_FEATURES}] windows, got {:?}",
                windows.dims()
            )));
        }
        if n == 0 {
            out.clear();
            return Ok(());
        }
        let (w, h) = (frames[0].width(), frames[0].height());
        let mut frame_tensor = self.ws.checkout(&[n, 1, h, w]);
        let filled = frames_to_tensor_into(frames, &mut frame_tensor);
        if let Err(e) = filled {
            self.ws.restore(frame_tensor);
            return Err(e);
        }
        let branches = self.predict_branches_into(&frame_tensor, windows);
        self.ws.restore(frame_tensor);
        branches?;
        let classes = self.cnn_buf.len() / n;
        let imu_classes = self.imu_buf.len() / n;
        // Take the buffers out of `self` so the per-item loop can borrow
        // them as slices while `self` mutates its counters. On an error
        // return they stay taken (empty); that only forfeits their reuse.
        let cnn_buf = std::mem::take(&mut self.cnn_buf);
        let imu_buf = std::mem::take(&mut self.imu_buf);
        let mut scores = std::mem::take(&mut self.scores_buf);
        for i in 0..n {
            let cp = &cnn_buf[i * classes..(i + 1) * classes];
            let ip = &imu_buf[i * imu_classes..(i + 1) * imu_classes];
            self.fuse_into(cp, ip, &mut scores)?;
            let best = scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(c, _)| c)
                .unwrap_or(0);
            let behavior = Behavior::from_index(best)
                .ok_or_else(|| CoreError::Dataset(format!("class index {best} out of range")))?;
            self.fallbacks.fused += 1;
            if let Some(slot) = out.get_mut(i) {
                slot.behavior = behavior;
                slot.scores.clear();
                slot.scores.extend_from_slice(&scores);
                slot.cnn_probs.clear();
                slot.cnn_probs.extend_from_slice(cp);
                slot.imu_probs.clear();
                slot.imu_probs.extend_from_slice(ip);
                slot.source = FusionSource::Fused;
                slot.degraded = false;
            } else {
                // Growth path: only taken while `out` is still shorter
                // than the batch (warm-up or a larger batch shape).
                out.push(StepClassification {
                    behavior,
                    scores: scores.clone(),
                    // darlint: allow(hot-alloc) — growth path, never taken warm
                    cnn_probs: cp.to_vec(),
                    // darlint: allow(hot-alloc) — growth path, never taken warm
                    imu_probs: ip.to_vec(),
                    source: FusionSource::Fused,
                    degraded: false,
                });
            }
        }
        out.truncate(n);
        self.cnn_buf = cnn_buf;
        self.imu_buf = imu_buf;
        self.scores_buf = scores;
        Ok(())
    }

    /// Runs both model branches over a batch through their zero-alloc
    /// `predict_proba_into` paths, filling `self.cnn_buf` / `self.imu_buf`
    /// with row-major probabilities. Same branch/thread structure as
    /// [`AnalyticsEngine::predict_branches`].
    // darlint: hot
    fn predict_branches_into(&mut self, frame_tensor: &Tensor, windows: &Tensor) -> Result<()> {
        let AnalyticsEngine {
            cnn,
            imu,
            parallelism,
            cnn_buf,
            imu_buf,
            ..
        } = self;
        let run_imu = |imu: &mut ImuModelSlot, buf: &mut Vec<f32>| match imu {
            ImuModelSlot::Rnn(m) => m.predict_proba_into(windows, buf),
            ImuModelSlot::Svm(m) => {
                // The SVM baseline has no workspace path; fall back to its
                // allocating prediction and copy the rows out.
                let probs = m.predict_proba(windows)?;
                buf.clear();
                buf.extend_from_slice(probs.data());
                Ok(())
            }
        };
        if parallelism.is_serial() {
            cnn.predict_proba_into(frame_tensor, cnn_buf)?;
            run_imu(imu, imu_buf)
        } else {
            let (cnn_result, imu_result) = std::thread::scope(|scope| {
                let cnn_branch = scope.spawn(move || cnn.predict_proba_into(frame_tensor, cnn_buf));
                let imu_result = run_imu(imu, imu_buf);
                let cnn_result = match cnn_branch.join() {
                    Ok(r) => r,
                    Err(_) => Err(CoreError::WorkerPanicked {
                        stage: "AnalyticsEngine frame-CNN branch",
                    }),
                };
                (cnn_result, imu_result)
            });
            cnn_result?;
            imu_result
        }
    }

    /// Runs both model branches over a batch. The CNN and IMU models are
    /// disjoint engine state, so with a non-serial handle the CNN branch
    /// gets a scoped worker thread while the IMU branch runs on the
    /// caller's thread; the join order is fixed, so results are
    /// deterministic either way.
    fn predict_branches(
        &mut self,
        frame_tensor: &Tensor,
        windows: &Tensor,
    ) -> Result<(Tensor, Tensor)> {
        let AnalyticsEngine {
            cnn,
            imu,
            parallelism,
            ..
        } = self;
        let run_imu = |imu: &mut ImuModelSlot| match imu {
            ImuModelSlot::Rnn(m) => m.predict_proba(windows),
            ImuModelSlot::Svm(m) => m.predict_proba(windows),
        };
        if parallelism.is_serial() {
            let cnn_probs = cnn.predict_proba(frame_tensor)?;
            let imu_probs = run_imu(imu)?;
            Ok((cnn_probs, imu_probs))
        } else {
            let (cnn_probs, imu_probs) = std::thread::scope(|scope| {
                let cnn_branch = scope.spawn(move || cnn.predict_proba(frame_tensor));
                let imu_probs = run_imu(imu);
                let cnn_probs = match cnn_branch.join() {
                    Ok(probs) => probs,
                    Err(_) => Err(CoreError::WorkerPanicked {
                        stage: "AnalyticsEngine frame-CNN branch",
                    }),
                };
                (cnn_probs, imu_probs)
            });
            Ok((cnn_probs?, imu_probs?))
        }
    }

    /// Classifies one time-step from a *distorted* frame tagged with its
    /// privacy level (the paper's remote privacy path: "the analytics
    /// engine picks the appropriate classifier").
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotReady`] if no student is registered for the
    /// level.
    pub fn classify_step_private(
        &mut self,
        distorted: &Frame,
        level: PrivacyLevel,
        window: &Tensor,
    ) -> Result<StepClassification> {
        let restored = self.downsampler.restore(distorted);
        let frames = frames_to_tensor(std::slice::from_ref(&restored))?;
        let student = self
            .students
            .iter_mut()
            .find(|(l, _)| *l == level)
            .map(|(_, s)| s)
            .ok_or_else(|| {
                CoreError::NotReady(format!("no dCNN registered for {}", level.model_name()))
            })?;
        let cnn_probs = student.predict_proba(&frames)?.into_vec();
        self.classify_with_cnn_probs(cnn_probs, window)
    }
}

impl std::fmt::Debug for AnalyticsEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalyticsEngine")
            .field("combiner", &self.config.combiner)
            .field("imu", &self.imu)
            .field("privacy_levels", &self.privacy_levels())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{CnnConfig, RnnConfig};

    fn tiny_engine(kind: CombinerKind) -> AnalyticsEngine {
        let cnn_config = CnnConfig {
            input_size: 24,
            classes: 6,
            width: 0.5,
            ..CnnConfig::default()
        };
        let cnn = FrameCnn::new(cnn_config, 1);
        let rnn_config = RnnConfig {
            hidden: 4,
            depth: 1,
            ..RnnConfig::default()
        };
        let mut rnn = ImuRnn::new(rnn_config, 2);
        // Minimal fit so the standardizer exists.
        let x = Tensor::ones(&[6, WINDOW_LEN, IMU_FEATURES]);
        rnn.fit(&x, &[0, 1, 2, 0, 1, 2], 1).unwrap();
        let mut combiner = BayesianCombiner::darnet();
        let cnn_probs = Tensor::full(&[6, 6], 1.0 / 6.0);
        let imu_probs = Tensor::full(&[6, 3], 1.0 / 3.0);
        combiner
            .fit(&cnn_probs, &imu_probs, &[0, 1, 2, 3, 4, 5])
            .unwrap();
        AnalyticsEngine::new(
            cnn,
            ImuModelSlot::Rnn(rnn),
            combiner,
            EngineConfig { combiner: kind },
        )
    }

    #[test]
    fn classify_step_returns_distribution() {
        let mut engine = tiny_engine(CombinerKind::Bayesian);
        let frame = Frame::new(24, 24);
        let window = Tensor::zeros(&[1, WINDOW_LEN, IMU_FEATURES]);
        let out = engine.classify_step(&frame, &window).unwrap();
        assert_eq!(out.scores.len(), 6);
        assert!((out.scores.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        assert_eq!(out.cnn_probs.len(), 6);
        assert_eq!(out.imu_probs.len(), 3);
    }

    #[test]
    fn classify_batch_matches_per_item_steps() {
        use darnet_sim::{DriverProfile, FrameRenderer};

        let renderer = FrameRenderer::new(7).with_size(24);
        let driver = DriverProfile::generate(0, 42);
        let behaviors = [
            Behavior::NormalDriving,
            Behavior::Reaching,
            Behavior::HairMakeup,
            Behavior::Talking,
            Behavior::Texting,
        ];
        let frames: Vec<Frame> = behaviors
            .iter()
            .enumerate()
            .map(|(i, &b)| renderer.render(&driver, b, i as f64 * 0.31))
            .collect();
        let n = frames.len();
        let mut windows = Tensor::zeros(&[n, WINDOW_LEN, IMU_FEATURES]);
        for (i, v) in windows.data_mut().iter_mut().enumerate() {
            *v = (i % 7) as f32 * 0.1;
        }

        let mut serial = tiny_engine(CombinerKind::Bayesian);
        let batch = serial.classify_batch(&frames, &windows).unwrap();
        assert_eq!(batch.len(), n);
        assert_eq!(serial.fallback_counters().fused, n as u64);

        // A concurrent engine must produce bitwise-identical results.
        let mut parallel = tiny_engine(CombinerKind::Bayesian);
        parallel.set_parallelism(Parallelism::new(4).with_min_work(1));
        let par_batch = parallel.classify_batch(&frames, &windows).unwrap();

        // And the batch must match per-item classification exactly.
        let mut single = tiny_engine(CombinerKind::Bayesian);
        let row = WINDOW_LEN * IMU_FEATURES;
        for i in 0..n {
            let w = Tensor::from_vec(
                windows.data()[i * row..(i + 1) * row].to_vec(),
                &[1, WINDOW_LEN, IMU_FEATURES],
            )
            .unwrap();
            let step = single.classify_step(&frames[i], &w).unwrap();
            assert_eq!(batch[i], step, "serial batch item {i} diverged");
            assert_eq!(par_batch[i], step, "parallel batch item {i} diverged");
        }
    }

    #[test]
    fn classify_batch_into_matches_allocating_path() {
        use darnet_sim::{DriverProfile, FrameRenderer};

        let renderer = FrameRenderer::new(11).with_size(24);
        let driver = DriverProfile::generate(0, 42);
        let behaviors = [
            Behavior::NormalDriving,
            Behavior::Texting,
            Behavior::Reaching,
        ];
        let frames: Vec<Frame> = behaviors
            .iter()
            .enumerate()
            .map(|(i, &b)| renderer.render(&driver, b, i as f64 * 0.29))
            .collect();
        let n = frames.len();
        let mut windows = Tensor::zeros(&[n, WINDOW_LEN, IMU_FEATURES]);
        for (i, v) in windows.data_mut().iter_mut().enumerate() {
            *v = (i % 5) as f32 * 0.2;
        }

        let mut baseline = tiny_engine(CombinerKind::Bayesian);
        let expected = baseline.classify_batch(&frames, &windows).unwrap();

        // Serial engine: repeated calls reuse the session buffers and stay
        // bitwise-identical; the engine workspace stops allocating after
        // the first call.
        let mut engine = tiny_engine(CombinerKind::Bayesian);
        let mut out = Vec::new();
        engine
            .classify_batch_into(&frames, &windows, &mut out)
            .unwrap();
        assert_eq!(out, expected);
        let misses = engine.ws.cold_misses();
        for round in 0..2 {
            engine
                .classify_batch_into(&frames, &windows, &mut out)
                .unwrap();
            assert_eq!(out, expected, "round {round} diverged");
        }
        assert_eq!(engine.ws.cold_misses(), misses, "engine workspace grew");
        assert_eq!(engine.fallback_counters().fused, 3 * n as u64);

        // Concurrent engine: same results bitwise.
        let mut parallel = tiny_engine(CombinerKind::Bayesian);
        parallel.set_parallelism(Parallelism::new(4).with_min_work(1));
        let mut par_out = Vec::new();
        parallel
            .classify_batch_into(&frames, &windows, &mut par_out)
            .unwrap();
        assert_eq!(par_out, expected);

        // A shorter batch truncates the reused output vector.
        let short_windows = Tensor::from_vec(
            windows.data()[..WINDOW_LEN * IMU_FEATURES].to_vec(),
            &[1, WINDOW_LEN, IMU_FEATURES],
        )
        .unwrap();
        engine
            .classify_batch_into(&frames[..1], &short_windows, &mut out)
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], expected[0]);
    }

    #[test]
    fn classify_tuples_into_matches_allocating_path() {
        use darnet_collect::runtime::AlignedTuple;

        let tuples: Vec<AlignedTuple> = (0..4)
            .map(|i| AlignedTuple {
                t: i as f64 * 0.25,
                frame: Frame::new(24, 24),
                window: (0..WINDOW_LEN * IMU_FEATURES)
                    .map(|k| ((k + i) % 9) as f32 * 0.1)
                    .collect(),
            })
            .collect();

        let mut baseline = tiny_engine(CombinerKind::Bayesian);
        let expected = baseline.classify_tuples(&tuples).unwrap();

        let mut engine = tiny_engine(CombinerKind::Bayesian);
        let mut out = Vec::new();
        for round in 0..3 {
            engine.classify_tuples_into(&tuples, &mut out).unwrap();
            assert_eq!(out, expected, "round {round} diverged");
        }

        // Malformed tuple windows are rejected without disturbing state.
        let bad = vec![AlignedTuple {
            t: 0.0,
            frame: Frame::new(24, 24),
            window: vec![0.0; 7],
        }];
        assert!(engine.classify_tuples_into(&bad, &mut out).is_err());
        engine.classify_tuples_into(&tuples, &mut out).unwrap();
        assert_eq!(out, expected);
    }

    #[test]
    fn classify_step_into_matches_classify_step() {
        let frame = Frame::new(24, 24);
        let window = Tensor::zeros(&[1, WINDOW_LEN, IMU_FEATURES]);
        let mut baseline = tiny_engine(CombinerKind::Bayesian);
        let expected = baseline.classify_step(&frame, &window).unwrap();
        let mut engine = tiny_engine(CombinerKind::Bayesian);
        let mut out = Vec::new();
        engine
            .classify_step_into(&frame, &window, &mut out)
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], expected);
    }

    #[test]
    fn classify_batch_rejects_mismatched_windows() {
        let mut engine = tiny_engine(CombinerKind::Bayesian);
        let frames = vec![Frame::new(24, 24), Frame::new(24, 24)];
        let windows = Tensor::zeros(&[3, WINDOW_LEN, IMU_FEATURES]);
        assert!(engine.classify_batch(&frames, &windows).is_err());
        assert!(engine
            .classify_batch(&[], &Tensor::zeros(&[0, WINDOW_LEN, IMU_FEATURES]))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn malformed_window_is_rejected() {
        let mut engine = tiny_engine(CombinerKind::Bayesian);
        let frame = Frame::new(24, 24);
        let bad = Tensor::zeros(&[1, 5, IMU_FEATURES]);
        assert!(engine.classify_step(&frame, &bad).is_err());
    }

    #[test]
    fn cnn_only_mode_ignores_imu() {
        let mut engine = tiny_engine(CombinerKind::CnnOnly);
        let frame = Frame::new(24, 24);
        let window = Tensor::zeros(&[1, WINDOW_LEN, IMU_FEATURES]);
        let out = engine.classify_step(&frame, &window).unwrap();
        assert_eq!(out.scores, out.cnn_probs);
    }

    #[test]
    fn fused_path_reports_source_and_counts() {
        let mut engine = tiny_engine(CombinerKind::Bayesian);
        let frame = Frame::new(24, 24);
        let window = Tensor::zeros(&[1, WINDOW_LEN, IMU_FEATURES]);
        let out = engine.classify_step(&frame, &window).unwrap();
        assert_eq!(out.source, FusionSource::Fused);
        assert!(!out.degraded);
        assert_eq!(engine.fallback_counters().fused, 1);
    }

    #[test]
    fn missing_imu_falls_back_to_cnn_posterior() {
        let mut engine = tiny_engine(CombinerKind::Bayesian);
        let frame = Frame::new(24, 24);
        let out = engine
            .classify_step_degraded(Some(&frame), None, false)
            .unwrap();
        assert_eq!(out.source, FusionSource::CnnOnly);
        assert_eq!(out.scores, out.cnn_probs);
        assert!(out.imu_probs.is_empty());
        assert_eq!(engine.fallback_counters().cnn_only, 1);
    }

    #[test]
    fn missing_camera_falls_back_to_imu_posterior() {
        let mut engine = tiny_engine(CombinerKind::Bayesian);
        let window = Tensor::zeros(&[1, WINDOW_LEN, IMU_FEATURES]);
        let out = engine
            .classify_step_degraded(None, Some(&window), false)
            .unwrap();
        assert_eq!(out.source, FusionSource::ImuOnly);
        assert!(out.cnn_probs.is_empty());
        assert_eq!(out.scores.len(), 6);
        assert!((out.scores.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        // The expansion conserves each IMU class's mass: talking/texting map
        // 1-to-1, so their 6-class score equals the 3-class posterior.
        assert!((out.scores[1] - out.imu_probs[1]).abs() < 1e-6);
        assert!((out.scores[2] - out.imu_probs[2]).abs() < 1e-6);
        assert_eq!(engine.fallback_counters().imu_only, 1);
    }

    #[test]
    fn both_streams_down_is_an_error() {
        let mut engine = tiny_engine(CombinerKind::Bayesian);
        assert!(matches!(
            engine.classify_step_degraded(None, None, false),
            Err(CoreError::NotReady(_))
        ));
    }

    #[test]
    fn stale_stream_health_drives_fallback() {
        use crate::health::HealthPolicy;
        use darnet_collect::StreamHealth;

        let policy = HealthPolicy::default();
        let now = 30.0;
        // Camera stream went silent 20 s ago; IMU is fresh and gap-free.
        let camera_health = StreamHealth {
            agent_id: 1,
            delivered: 20,
            duplicates: 0,
            highest_seq: 19,
            gaps: 0,
            last_arrival: 10.0,
            shed: 0,
        };
        let imu_health = StreamHealth {
            agent_id: 0,
            last_arrival: 29.9,
            ..camera_health
        };
        let camera = policy.assess(Some(&camera_health), now);
        let imu = policy.assess(Some(&imu_health), now);
        assert_eq!(camera, ModalityStatus::Unavailable);
        assert_eq!(imu, ModalityStatus::Healthy);

        let mut engine = tiny_engine(CombinerKind::Bayesian);
        let frame = Frame::new(24, 24);
        let window = Tensor::zeros(&[1, WINDOW_LEN, IMU_FEATURES]);
        let out = engine
            .classify_step_checked(&frame, &window, camera, imu)
            .unwrap();
        assert_eq!(out.source, FusionSource::ImuOnly);
        assert_eq!(engine.fallback_counters().imu_only, 1);
        assert_eq!(engine.fallback_counters().fused, 0);
    }

    #[test]
    fn degraded_stream_still_fuses_but_flags() {
        let mut engine = tiny_engine(CombinerKind::Bayesian);
        let frame = Frame::new(24, 24);
        let window = Tensor::zeros(&[1, WINDOW_LEN, IMU_FEATURES]);
        let out = engine
            .classify_step_checked(
                &frame,
                &window,
                ModalityStatus::Degraded,
                ModalityStatus::Healthy,
            )
            .unwrap();
        assert_eq!(out.source, FusionSource::Fused);
        assert!(out.degraded);
        assert_eq!(engine.fallback_counters().degraded, 1);
        assert_eq!(engine.fallback_counters().fused, 1);
    }

    #[test]
    fn private_path_requires_registered_student() {
        let mut engine = tiny_engine(CombinerKind::Bayesian);
        let small = Frame::new(8, 8);
        let window = Tensor::zeros(&[1, WINDOW_LEN, IMU_FEATURES]);
        assert!(matches!(
            engine.classify_step_private(&small, PrivacyLevel::Medium, &window),
            Err(CoreError::NotReady(_))
        ));
        // Register and retry.
        let student = FrameCnn::new(
            CnnConfig {
                input_size: 24,
                classes: 6,
                width: 0.5,
                ..CnnConfig::default()
            },
            9,
        );
        engine.register_dcnn(PrivacyLevel::Medium, student);
        assert_eq!(engine.privacy_levels(), vec![PrivacyLevel::Medium]);
        let out = engine
            .classify_step_private(&small, PrivacyLevel::Medium, &window)
            .unwrap();
        assert_eq!(out.scores.len(), 6);
    }
}
