//! The modular analytics engine (paper §3.3): a 1-to-1 mapping between
//! device data-streams and models, combined at a later stage, classifying
//! at each time-step for near-real-time detection.

use darnet_sim::{Behavior, Frame};
use darnet_tensor::Tensor;

use crate::dataset::{frames_to_tensor, IMU_FEATURES, WINDOW_LEN};
use crate::ensemble::{product_combine, BayesianCombiner, CombinerKind};
use crate::error::CoreError;
use crate::models::{FrameCnn, ImuRnn, ImuSvm};
use crate::privacy::{Downsampler, PrivacyLevel};
use crate::Result;

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// How the two modalities are fused.
    pub combiner: CombinerKind,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            combiner: CombinerKind::Bayesian,
        }
    }
}

/// The IMU model slot: the engine's stream→model mapping is modular, so
/// either the paper's RNN or the SVM baseline can serve the IMU stream.
pub enum ImuModelSlot {
    /// Deep bidirectional LSTM (the DarNet configuration).
    Rnn(ImuRnn),
    /// Linear SVM baseline.
    Svm(ImuSvm),
}

impl std::fmt::Debug for ImuModelSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImuModelSlot::Rnn(_) => f.write_str("ImuModelSlot::Rnn"),
            ImuModelSlot::Svm(_) => f.write_str("ImuModelSlot::Svm"),
        }
    }
}

/// One per-time-step classification result.
#[derive(Debug, Clone, PartialEq)]
pub struct StepClassification {
    /// The fused 6-class decision.
    pub behavior: Behavior,
    /// Fused class scores (normalized).
    pub scores: Vec<f32>,
    /// The CNN's 6-class probabilities.
    pub cnn_probs: Vec<f32>,
    /// The IMU model's 3-class probabilities.
    pub imu_probs: Vec<f32>,
}

/// The assembled engine: frame CNN + IMU model + combiner, with optional
/// per-privacy-level dCNN students for distorted input.
pub struct AnalyticsEngine {
    cnn: FrameCnn,
    imu: ImuModelSlot,
    combiner: BayesianCombiner,
    config: EngineConfig,
    downsampler: Downsampler,
    students: Vec<(PrivacyLevel, FrameCnn)>,
}

impl AnalyticsEngine {
    /// Assembles an engine from trained components.
    pub fn new(
        cnn: FrameCnn,
        imu: ImuModelSlot,
        combiner: BayesianCombiner,
        config: EngineConfig,
    ) -> Self {
        let full = cnn.config().input_size;
        AnalyticsEngine {
            cnn,
            imu,
            combiner,
            config,
            downsampler: Downsampler::new(full),
            students: Vec::new(),
        }
    }

    /// Registers a distilled dCNN student for a privacy level.
    pub fn register_dcnn(&mut self, level: PrivacyLevel, student: FrameCnn) {
        self.students.retain(|(l, _)| *l != level);
        self.students.push((level, student));
    }

    /// Privacy levels with registered students.
    pub fn privacy_levels(&self) -> Vec<PrivacyLevel> {
        self.students.iter().map(|(l, _)| *l).collect()
    }

    fn imu_probs(&mut self, window: &Tensor) -> Result<Vec<f32>> {
        if window.dims() != [1, WINDOW_LEN, IMU_FEATURES] {
            return Err(CoreError::Dataset(format!(
                "expected [1, {WINDOW_LEN}, {IMU_FEATURES}] window, got {:?}",
                window.dims()
            )));
        }
        let probs = match &mut self.imu {
            ImuModelSlot::Rnn(m) => m.predict_proba(window)?,
            ImuModelSlot::Svm(m) => m.predict_proba(window)?,
        };
        Ok(probs.into_vec())
    }

    fn fuse(&self, cnn_probs: &[f32], imu_probs: &[f32]) -> Result<Vec<f32>> {
        match self.config.combiner {
            CombinerKind::Bayesian => self.combiner.combine(cnn_probs, imu_probs),
            CombinerKind::Product => product_combine(cnn_probs, imu_probs),
            CombinerKind::CnnOnly => Ok(cnn_probs.to_vec()),
        }
    }

    fn classify_with_cnn_probs(
        &mut self,
        cnn_probs: Vec<f32>,
        window: &Tensor,
    ) -> Result<StepClassification> {
        let imu_probs = self.imu_probs(window)?;
        let scores = self.fuse(&cnn_probs, &imu_probs)?;
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let behavior = Behavior::from_index(best)
            .ok_or_else(|| CoreError::Dataset(format!("class index {best} out of range")))?;
        Ok(StepClassification {
            behavior,
            scores,
            cnn_probs,
            imu_probs,
        })
    }

    /// Classifies one time-step: a full-resolution frame plus the IMU
    /// window ending at the same instant.
    ///
    /// # Errors
    ///
    /// Propagates model errors; returns a dataset error on a malformed
    /// window.
    pub fn classify_step(&mut self, frame: &Frame, window: &Tensor) -> Result<StepClassification> {
        let frames = frames_to_tensor(std::slice::from_ref(frame))?;
        let cnn_probs = self.cnn.predict_proba(&frames)?.into_vec();
        self.classify_with_cnn_probs(cnn_probs, window)
    }

    /// Classifies one time-step from a *distorted* frame tagged with its
    /// privacy level (the paper's remote privacy path: "the analytics
    /// engine picks the appropriate classifier").
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotReady`] if no student is registered for the
    /// level.
    pub fn classify_step_private(
        &mut self,
        distorted: &Frame,
        level: PrivacyLevel,
        window: &Tensor,
    ) -> Result<StepClassification> {
        let restored = self.downsampler.restore(distorted);
        let frames = frames_to_tensor(std::slice::from_ref(&restored))?;
        let student = self
            .students
            .iter_mut()
            .find(|(l, _)| *l == level)
            .map(|(_, s)| s)
            .ok_or_else(|| {
                CoreError::NotReady(format!("no dCNN registered for {}", level.model_name()))
            })?;
        let cnn_probs = student.predict_proba(&frames)?.into_vec();
        self.classify_with_cnn_probs(cnn_probs, window)
    }
}

impl std::fmt::Debug for AnalyticsEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalyticsEngine")
            .field("combiner", &self.config.combiner)
            .field("imu", &self.imu)
            .field("privacy_levels", &self.privacy_levels())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{CnnConfig, RnnConfig};

    fn tiny_engine(kind: CombinerKind) -> AnalyticsEngine {
        let cnn_config = CnnConfig {
            input_size: 24,
            classes: 6,
            width: 0.5,
            ..CnnConfig::default()
        };
        let cnn = FrameCnn::new(cnn_config, 1);
        let rnn_config = RnnConfig {
            hidden: 4,
            depth: 1,
            ..RnnConfig::default()
        };
        let mut rnn = ImuRnn::new(rnn_config, 2);
        // Minimal fit so the standardizer exists.
        let x = Tensor::ones(&[6, WINDOW_LEN, IMU_FEATURES]);
        rnn.fit(&x, &[0, 1, 2, 0, 1, 2], 1).unwrap();
        let mut combiner = BayesianCombiner::darnet();
        let cnn_probs = Tensor::full(&[6, 6], 1.0 / 6.0);
        let imu_probs = Tensor::full(&[6, 3], 1.0 / 3.0);
        combiner
            .fit(&cnn_probs, &imu_probs, &[0, 1, 2, 3, 4, 5])
            .unwrap();
        AnalyticsEngine::new(
            cnn,
            ImuModelSlot::Rnn(rnn),
            combiner,
            EngineConfig { combiner: kind },
        )
    }

    #[test]
    fn classify_step_returns_distribution() {
        let mut engine = tiny_engine(CombinerKind::Bayesian);
        let frame = Frame::new(24, 24);
        let window = Tensor::zeros(&[1, WINDOW_LEN, IMU_FEATURES]);
        let out = engine.classify_step(&frame, &window).unwrap();
        assert_eq!(out.scores.len(), 6);
        assert!((out.scores.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        assert_eq!(out.cnn_probs.len(), 6);
        assert_eq!(out.imu_probs.len(), 3);
    }

    #[test]
    fn malformed_window_is_rejected() {
        let mut engine = tiny_engine(CombinerKind::Bayesian);
        let frame = Frame::new(24, 24);
        let bad = Tensor::zeros(&[1, 5, IMU_FEATURES]);
        assert!(engine.classify_step(&frame, &bad).is_err());
    }

    #[test]
    fn cnn_only_mode_ignores_imu() {
        let mut engine = tiny_engine(CombinerKind::CnnOnly);
        let frame = Frame::new(24, 24);
        let window = Tensor::zeros(&[1, WINDOW_LEN, IMU_FEATURES]);
        let out = engine.classify_step(&frame, &window).unwrap();
        assert_eq!(out.scores, out.cnn_probs);
    }

    #[test]
    fn private_path_requires_registered_student() {
        let mut engine = tiny_engine(CombinerKind::Bayesian);
        let small = Frame::new(8, 8);
        let window = Tensor::zeros(&[1, WINDOW_LEN, IMU_FEATURES]);
        assert!(matches!(
            engine.classify_step_private(&small, PrivacyLevel::Medium, &window),
            Err(CoreError::NotReady(_))
        ));
        // Register and retry.
        let student = FrameCnn::new(
            CnnConfig {
                input_size: 24,
                classes: 6,
                width: 0.5,
                ..CnnConfig::default()
            },
            9,
        );
        engine.register_dcnn(PrivacyLevel::Medium, student);
        assert_eq!(engine.privacy_levels(), vec![PrivacyLevel::Medium]);
        let out = engine
            .classify_step_private(&small, PrivacyLevel::Medium, &window)
            .unwrap();
        assert_eq!(out.scores.len(), 6);
    }
}
