//! Evaluation: Top-1 accuracy and confusion matrices (the paper's Table 2
//! and Figure 5 metrics).

use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::Result;

/// A square confusion matrix; rows are true classes, columns predictions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<usize>, // row-major [true][pred]
}

impl ConfusionMatrix {
    /// Creates an empty matrix over `classes` classes.
    pub fn new(classes: usize) -> Self {
        ConfusionMatrix {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Builds a matrix from parallel label/prediction slices.
    ///
    /// # Errors
    ///
    /// Returns an error if lengths differ or any index is out of range.
    pub fn from_predictions(
        labels: &[usize],
        predictions: &[usize],
        classes: usize,
    ) -> Result<Self> {
        if labels.len() != predictions.len() {
            return Err(CoreError::Dataset(format!(
                "{} labels vs {} predictions",
                labels.len(),
                predictions.len()
            )));
        }
        let mut m = ConfusionMatrix::new(classes);
        for (&l, &p) in labels.iter().zip(predictions) {
            m.record(l, p)?;
        }
        Ok(m)
    }

    /// Records one observation.
    ///
    /// # Errors
    ///
    /// Returns an error if either index is out of range.
    pub fn record(&mut self, truth: usize, prediction: usize) -> Result<()> {
        if truth >= self.classes || prediction >= self.classes {
            return Err(CoreError::Dataset(format!(
                "class index out of range: ({truth}, {prediction}) for {} classes",
                self.classes
            )));
        }
        self.counts[truth * self.classes + prediction] += 1;
        Ok(())
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Raw count for `(truth, prediction)`.
    pub fn count(&self, truth: usize, prediction: usize) -> usize {
        self.counts[truth * self.classes + prediction]
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Top-1 accuracy (diagonal mass / total), 0.0 when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: usize = (0..self.classes).map(|i| self.count(i, i)).sum();
        diag as f64 / total as f64
    }

    /// Per-class recall (diagonal / row sum), `None` for empty rows.
    pub fn per_class_accuracy(&self) -> Vec<Option<f64>> {
        (0..self.classes)
            .map(|i| {
                let row: usize = (0..self.classes).map(|j| self.count(i, j)).sum();
                if row == 0 {
                    None
                } else {
                    Some(self.count(i, i) as f64 / row as f64)
                }
            })
            .collect()
    }

    /// Row-normalized rates: `rate[i][j] = P(pred=j | true=i)`.
    pub fn row_normalized(&self) -> Vec<Vec<f64>> {
        (0..self.classes)
            .map(|i| {
                let row: usize = (0..self.classes).map(|j| self.count(i, j)).sum();
                (0..self.classes)
                    .map(|j| {
                        if row == 0 {
                            0.0
                        } else {
                            self.count(i, j) as f64 / row as f64
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Misclassification rate from true class `i` into predicted class `j`.
    pub fn confusion_rate(&self, i: usize, j: usize) -> f64 {
        self.row_normalized()[i][j]
    }

    /// Per-class precision (diagonal / column sum), `None` for classes
    /// never predicted.
    pub fn per_class_precision(&self) -> Vec<Option<f64>> {
        (0..self.classes)
            .map(|j| {
                let col: usize = (0..self.classes).map(|i| self.count(i, j)).sum();
                if col == 0 {
                    None
                } else {
                    Some(self.count(j, j) as f64 / col as f64)
                }
            })
            .collect()
    }

    /// Per-class F1 scores (harmonic mean of precision and recall), `None`
    /// where either is undefined.
    pub fn per_class_f1(&self) -> Vec<Option<f64>> {
        let precision = self.per_class_precision();
        let recall = self.per_class_accuracy();
        precision
            .iter()
            .zip(&recall)
            .map(|(p, r)| match (p, r) {
                (Some(p), Some(r)) if p + r > 0.0 => Some(2.0 * p * r / (p + r)),
                (Some(_), Some(_)) => Some(0.0),
                _ => None,
            })
            .collect()
    }

    /// Macro-averaged F1 over the classes where it is defined (0.0 if none
    /// are).
    pub fn macro_f1(&self) -> f64 {
        let f1s: Vec<f64> = self.per_class_f1().into_iter().flatten().collect();
        if f1s.is_empty() {
            0.0
        } else {
            f1s.iter().sum::<f64>() / f1s.len() as f64
        }
    }

    /// Renders an ASCII table with row/column class names (paper Figure 5
    /// style, row-normalized percentages).
    pub fn to_table(&self, names: &[&str]) -> String {
        let rates = self.row_normalized();
        let mut out = String::new();
        out.push_str(&format!("{:>18} |", "true \\ pred"));
        for name in names.iter().take(self.classes) {
            out.push_str(&format!(" {:>8}", truncate(name, 8)));
        }
        out.push('\n');
        out.push_str(&"-".repeat(20 + 9 * self.classes));
        out.push('\n');
        for (i, row) in rates.iter().enumerate() {
            let name = names.get(i).copied().unwrap_or("?");
            out.push_str(&format!("{:>18} |", truncate(name, 18)));
            for &r in row {
                out.push_str(&format!(" {:>7.1}%", r * 100.0));
            }
            out.push('\n');
        }
        out
    }
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        &s[..n]
    }
}

impl std::fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ConfusionMatrix({} classes, {} samples, top-1 {:.2}%)",
            self.classes,
            self.total(),
            self.accuracy() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_have_unit_accuracy() {
        let m = ConfusionMatrix::from_predictions(&[0, 1, 2], &[0, 1, 2], 3).unwrap();
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.total(), 3);
    }

    #[test]
    fn accuracy_counts_diagonal_only() {
        let m = ConfusionMatrix::from_predictions(&[0, 0, 1, 1], &[0, 1, 1, 0], 2).unwrap();
        assert_eq!(m.accuracy(), 0.5);
        assert_eq!(m.count(0, 1), 1);
        assert_eq!(m.count(1, 0), 1);
    }

    #[test]
    fn row_normalization_sums_to_one_for_nonempty_rows() {
        let m = ConfusionMatrix::from_predictions(&[0, 0, 0, 1], &[0, 1, 1, 1], 3).unwrap();
        let rates = m.row_normalized();
        assert!((rates[0].iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((rates[1].iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(rates[2].iter().sum::<f64>(), 0.0); // empty row
    }

    #[test]
    fn per_class_accuracy_handles_empty_rows() {
        let m = ConfusionMatrix::from_predictions(&[0], &[0], 2).unwrap();
        let per = m.per_class_accuracy();
        assert_eq!(per[0], Some(1.0));
        assert_eq!(per[1], None);
    }

    #[test]
    fn mismatched_lengths_and_bad_indices_are_rejected() {
        assert!(ConfusionMatrix::from_predictions(&[0], &[0, 1], 2).is_err());
        assert!(ConfusionMatrix::from_predictions(&[5], &[0], 2).is_err());
    }

    #[test]
    fn table_renders_names_and_rates() {
        let m = ConfusionMatrix::from_predictions(&[0, 1], &[0, 0], 2).unwrap();
        let table = m.to_table(&["Normal", "Texting"]);
        assert!(table.contains("Normal"));
        assert!(table.contains("100.0%"));
    }

    #[test]
    fn precision_counts_columns() {
        // Predictions: class 0 predicted 3 times, right twice.
        let m = ConfusionMatrix::from_predictions(&[0, 0, 1, 1], &[0, 0, 0, 1], 2).unwrap();
        let p = m.per_class_precision();
        assert!((p[0].unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(p[1], Some(1.0));
    }

    #[test]
    fn precision_is_none_for_never_predicted_classes() {
        let m = ConfusionMatrix::from_predictions(&[0, 1], &[0, 0], 2).unwrap();
        assert_eq!(m.per_class_precision()[1], None);
        assert_eq!(m.per_class_f1()[1], None);
    }

    #[test]
    fn f1_is_harmonic_mean() {
        // Class 0: precision 2/3, recall 1.0 → F1 = 0.8.
        let m = ConfusionMatrix::from_predictions(&[0, 0, 1, 1], &[0, 0, 0, 1], 2).unwrap();
        let f1 = m.per_class_f1();
        assert!((f1[0].unwrap() - 0.8).abs() < 1e-12);
        // Class 1: precision 1.0, recall 0.5 → F1 = 2/3.
        assert!((f1[1].unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.macro_f1() - (0.8 + 2.0 / 3.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_matrix_has_unit_macro_f1() {
        let m = ConfusionMatrix::from_predictions(&[0, 1, 2], &[0, 1, 2], 3).unwrap();
        assert_eq!(m.macro_f1(), 1.0);
        assert_eq!(ConfusionMatrix::new(2).macro_f1(), 0.0);
    }

    #[test]
    fn confusion_rate_reads_off_diagonal() {
        let m = ConfusionMatrix::from_predictions(&[0, 0, 0, 0], &[0, 0, 0, 1], 2).unwrap();
        assert!((m.confusion_rate(0, 1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display_summarizes() {
        let m = ConfusionMatrix::from_predictions(&[0, 1], &[0, 1], 2).unwrap();
        let s = m.to_string();
        assert!(s.contains("100.00%"));
    }
}
