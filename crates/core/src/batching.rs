//! Micro-batching front for the analytics engine.
//!
//! The collect pipeline emits aligned frame+window tuples one at a time
//! (4 Hz per driver); the engine classifies far more efficiently in
//! batches, which amortize per-call model overhead and give the parallel
//! backend enough work per dispatch. A [`MicroBatcher`] sits between the
//! two: tuples queue as they arrive and flush as one batch when either the
//! batch-size cap is reached or the oldest queued tuple has waited past
//! the deadline — so latency is bounded by `max_delay` even at low rates,
//! and throughput approaches the batched optimum at high rates.
//!
//! Time is passed in explicitly (`now`, seconds on the caller's clock), so
//! the batcher is deterministic and clock-source agnostic, matching the
//! discrete-event style of [`darnet_collect::runtime`].

use darnet_collect::runtime::AlignedTuple;
use darnet_sim::Frame;
use darnet_tensor::Tensor;

use crate::dataset::{IMU_FEATURES, WINDOW_LEN};
use crate::engine::{AnalyticsEngine, StepClassification};
use crate::error::CoreError;
use crate::Result;

/// Flush policy for a [`MicroBatcher`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroBatchConfig {
    /// Flush as soon as this many tuples are queued.
    pub max_batch: usize,
    /// Flush when the oldest queued tuple has waited this many seconds,
    /// even if the batch is not full — the latency bound.
    pub max_delay: f64,
}

impl Default for MicroBatchConfig {
    fn default() -> Self {
        MicroBatchConfig {
            max_batch: 32,
            max_delay: 0.25,
        }
    }
}

/// Queues aligned tuples and releases them in size- or deadline-triggered
/// batches (see the [module docs](self)).
#[derive(Debug, Clone, Default)]
pub struct MicroBatcher {
    config: MicroBatchConfig,
    queue: Vec<AlignedTuple>,
    /// Arrival time of the oldest queued tuple.
    oldest_arrival: Option<f64>,
}

impl MicroBatcher {
    /// Creates an empty batcher. `max_batch` is clamped to at least 1.
    pub fn new(config: MicroBatchConfig) -> Self {
        MicroBatcher {
            config: MicroBatchConfig {
                max_batch: config.max_batch.max(1),
                ..config
            },
            queue: Vec::new(),
            oldest_arrival: None,
        }
    }

    /// The flush policy.
    pub fn config(&self) -> MicroBatchConfig {
        self.config
    }

    /// Queued tuple count.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// When the queued work must flush at the latest (the oldest tuple's
    /// arrival plus `max_delay`), or `None` if the queue is empty. Event
    /// loops can schedule their next wake-up from this.
    pub fn next_deadline(&self) -> Option<f64> {
        self.oldest_arrival.map(|t| t + self.config.max_delay)
    }

    /// Queues one tuple arriving at `now`. Returns the full batch when
    /// this push reaches `max_batch`, `None` otherwise.
    pub fn push(&mut self, tuple: AlignedTuple, now: f64) -> Option<Vec<AlignedTuple>> {
        self.oldest_arrival.get_or_insert(now);
        self.queue.push(tuple);
        if self.queue.len() >= self.config.max_batch {
            Some(self.flush())
        } else {
            None
        }
    }

    /// Whether a batch would flush at `now`: either the queue is full or
    /// the oldest tuple's deadline has passed.
    pub fn ready(&self, now: f64) -> bool {
        self.queue.len() >= self.config.max_batch || self.next_deadline().is_some_and(|d| now >= d)
    }

    /// Takes the queued batch if [`MicroBatcher::ready`] at `now`.
    pub fn take_ready(&mut self, now: f64) -> Option<Vec<AlignedTuple>> {
        self.ready(now).then(|| self.flush())
    }

    /// Unconditionally drains the queue (end-of-stream).
    pub fn flush(&mut self) -> Vec<AlignedTuple> {
        self.oldest_arrival = None;
        std::mem::take(&mut self.queue)
    }
}

/// Splits a tuple batch into the engine's inputs: the frames and a
/// `[n, WINDOW_LEN, IMU_FEATURES]` window tensor.
///
/// # Errors
///
/// Returns a dataset error when a tuple's window is not
/// `WINDOW_LEN × IMU_FEATURES` long.
pub fn tuples_to_inputs(tuples: &[AlignedTuple]) -> Result<(Vec<Frame>, Tensor)> {
    let row = WINDOW_LEN * IMU_FEATURES;
    let mut frames = Vec::with_capacity(tuples.len());
    let mut windows = Vec::with_capacity(tuples.len() * row);
    for tup in tuples {
        if tup.window.len() != row {
            return Err(CoreError::Dataset(format!(
                "tuple at t={} has a {}-element window, expected {row}",
                tup.t,
                tup.window.len()
            )));
        }
        frames.push(tup.frame.clone());
        windows.extend_from_slice(&tup.window);
    }
    let windows = Tensor::from_vec(windows, &[tuples.len(), WINDOW_LEN, IMU_FEATURES])?;
    Ok((frames, windows))
}

impl AnalyticsEngine {
    /// Classifies a flushed micro-batch of aligned tuples — the
    /// collect-to-engine feed path. Results are in tuple order and
    /// identical to classifying each tuple alone.
    ///
    /// # Errors
    ///
    /// Propagates model and window-shape errors.
    pub fn classify_tuples(&mut self, tuples: &[AlignedTuple]) -> Result<Vec<StepClassification>> {
        let (frames, windows) = tuples_to_inputs(tuples)?;
        self.classify_batch(&frames, &windows)
    }

    /// [`AnalyticsEngine::classify_tuples`] on the session's reused
    /// buffers: the frame scratch list and window tensor are engine-owned
    /// (frames are `clone_from`ed into place, so their pixel buffers keep
    /// their capacity), and classification runs through
    /// [`AnalyticsEngine::classify_batch_into`]. After one warm-up call
    /// at a given batch shape the drain loop performs zero heap
    /// allocations per flush; results are bitwise-identical to
    /// [`AnalyticsEngine::classify_tuples`].
    ///
    /// # Errors
    ///
    /// Propagates model and window-shape errors.
    // darlint: hot
    pub fn classify_tuples_into(
        &mut self,
        tuples: &[AlignedTuple],
        out: &mut Vec<StepClassification>,
    ) -> Result<()> {
        let n = tuples.len();
        if n == 0 {
            out.clear();
            return Ok(());
        }
        let row = WINDOW_LEN * IMU_FEATURES;
        for tup in tuples {
            if tup.window.len() != row {
                return Err(CoreError::Dataset(format!(
                    "tuple at t={} has a {}-element window, expected {row}",
                    tup.t,
                    tup.window.len()
                )));
            }
        }
        let mut windows = self.ws.checkout(&[n, WINDOW_LEN, IMU_FEATURES]);
        let wd = windows.data_mut();
        for (i, tup) in tuples.iter().enumerate() {
            wd[i * row..(i + 1) * row].copy_from_slice(&tup.window);
        }
        let mut frames = std::mem::take(&mut self.tuple_frames);
        for (i, tup) in tuples.iter().enumerate() {
            if let Some(slot) = frames.get_mut(i) {
                slot.clone_pixels_from(&tup.frame);
            } else {
                frames.push(tup.frame.clone());
            }
        }
        frames.truncate(n);
        let result = self.classify_batch_into(&frames, &windows, out);
        self.tuple_frames = frames;
        self.ws.restore(windows);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(t: f64) -> AlignedTuple {
        AlignedTuple {
            t,
            frame: Frame::new(4, 4),
            window: vec![0.0; WINDOW_LEN * IMU_FEATURES],
        }
    }

    #[test]
    fn size_cap_flushes_exactly_at_max_batch() {
        let mut b = MicroBatcher::new(MicroBatchConfig {
            max_batch: 3,
            max_delay: 10.0,
        });
        assert!(b.push(tuple(0.0), 0.0).is_none());
        assert!(b.push(tuple(0.1), 0.1).is_none());
        let batch = b.push(tuple(0.2), 0.2).expect("third push fills the batch");
        assert_eq!(batch.len(), 3);
        assert!(b.is_empty());
        assert_eq!(b.next_deadline(), None);
    }

    #[test]
    fn deadline_flushes_a_partial_batch() {
        let mut b = MicroBatcher::new(MicroBatchConfig {
            max_batch: 32,
            max_delay: 0.25,
        });
        b.push(tuple(1.0), 1.0);
        b.push(tuple(1.1), 1.1);
        // The deadline tracks the *oldest* tuple.
        assert_eq!(b.next_deadline(), Some(1.25));
        assert!(!b.ready(1.2));
        assert!(b.take_ready(1.2).is_none());
        assert!(b.ready(1.25));
        let batch = b.take_ready(1.3).expect("deadline passed");
        assert_eq!(batch.len(), 2);
        assert!(b.is_empty());
    }

    #[test]
    fn deadline_resets_after_flush() {
        let mut b = MicroBatcher::new(MicroBatchConfig {
            max_batch: 8,
            max_delay: 0.25,
        });
        b.push(tuple(0.0), 0.0);
        b.flush();
        b.push(tuple(5.0), 5.0);
        assert_eq!(b.next_deadline(), Some(5.25));
    }

    #[test]
    fn flush_drains_everything() {
        let mut b = MicroBatcher::new(MicroBatchConfig::default());
        for i in 0..5 {
            b.push(tuple(i as f64), i as f64);
        }
        assert_eq!(b.len(), 5);
        assert_eq!(b.flush().len(), 5);
        assert!(b.flush().is_empty());
    }

    #[test]
    fn zero_max_batch_is_clamped() {
        let mut b = MicroBatcher::new(MicroBatchConfig {
            max_batch: 0,
            max_delay: 1.0,
        });
        assert!(b.push(tuple(0.0), 0.0).is_some());
    }

    #[test]
    fn tuples_to_inputs_validates_window_length() {
        let good = vec![tuple(0.0), tuple(0.25)];
        let (frames, windows) = tuples_to_inputs(&good).unwrap();
        assert_eq!(frames.len(), 2);
        assert_eq!(windows.dims(), &[2, WINDOW_LEN, IMU_FEATURES]);
        let bad = vec![AlignedTuple {
            t: 0.0,
            frame: Frame::new(4, 4),
            window: vec![0.0; 7],
        }];
        assert!(tuples_to_inputs(&bad).is_err());
    }
}
