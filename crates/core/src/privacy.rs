//! Privacy-preserving analytics (paper §4.3): nearest-neighbour
//! down-sampling at three distortion levels, and the unsupervised
//! distillation that trains one dCNN student per level to mimic the
//! full-resolution teacher's outputs under an L2 loss.

use darnet_nn::Sgd;
use darnet_sim::Frame;
use darnet_tensor::{SplitMix64, Tensor};

use crate::dataset::frames_to_tensor;
use crate::models::FrameCnn;
use crate::Result;

/// The paper's three distortion levels. With 48×48 source frames the
/// target sizes keep the paper's exact linear ratios (3×, 6×, 12×) and
/// data-volume reductions (9×, 36×, 144×).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrivacyLevel {
    /// dCNN-L: 1/3 linear resolution (paper: 300→100; here 48→16).
    Low,
    /// dCNN-M: 1/6 linear resolution (paper: 300→50; here 48→8).
    Medium,
    /// dCNN-H: 1/12 linear resolution (paper: 300→25; here 48→4).
    High,
}

impl PrivacyLevel {
    /// All three levels, low to high.
    pub const ALL: [PrivacyLevel; 3] =
        [PrivacyLevel::Low, PrivacyLevel::Medium, PrivacyLevel::High];

    /// The linear down-sampling divisor.
    pub fn divisor(self) -> usize {
        match self {
            PrivacyLevel::Low => 3,
            PrivacyLevel::Medium => 6,
            PrivacyLevel::High => 12,
        }
    }

    /// Target edge length for a `full`-pixel square frame.
    pub fn target_size(self, full: usize) -> usize {
        (full / self.divisor()).max(1)
    }

    /// Data-volume reduction factor (the paper's ~9×/25×/144×; exact
    /// thirds give 9×/36×/144×).
    pub fn data_reduction(self) -> usize {
        self.divisor() * self.divisor()
    }

    /// Model name used in the paper's Table 3.
    pub fn model_name(self) -> &'static str {
        match self {
            PrivacyLevel::Low => "dCNN-L",
            PrivacyLevel::Medium => "dCNN-M",
            PrivacyLevel::High => "dCNN-H",
        }
    }
}

impl std::fmt::Display for PrivacyLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.model_name())
    }
}

/// The distortion module: down-samples frames before they leave the
/// vehicle, and restores the nominal geometry server-side so the fixed-
/// input dCNN can consume them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Downsampler {
    full_size: usize,
}

impl Downsampler {
    /// Creates a distortion module for `full_size`-pixel square frames.
    pub fn new(full_size: usize) -> Self {
        Downsampler { full_size }
    }

    /// The full-resolution edge length.
    pub fn full_size(&self) -> usize {
        self.full_size
    }

    /// Down-samples a frame to the level's target size (what is
    /// transmitted — this is the privacy/bandwidth win).
    pub fn distort(&self, frame: &Frame, level: PrivacyLevel) -> Frame {
        let target = level.target_size(self.full_size);
        frame.downsample_nearest(target, target)
    }

    /// Re-expands a distorted frame to the nominal input size with
    /// nearest-neighbour up-sampling (server-side, before the dCNN).
    // darlint: cold — privacy restore builds a frame at a new geometry; only the by-value classify_step_private path calls it
    pub fn restore(&self, frame: &Frame) -> Frame {
        frame.upsample_nearest(self.full_size, self.full_size)
    }

    /// Distort-then-restore: exactly the pixels the dCNN sees.
    pub fn roundtrip(&self, frame: &Frame, level: PrivacyLevel) -> Frame {
        self.restore(&self.distort(frame, level))
    }

    /// Distorts a whole set and returns the dCNN input tensor
    /// `[n, 1, full, full]`.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty batch.
    pub fn roundtrip_tensor(&self, frames: &[Frame], level: PrivacyLevel) -> Result<Tensor> {
        let distorted: Vec<Frame> = frames.iter().map(|f| self.roundtrip(f, level)).collect();
        frames_to_tensor(&distorted)
    }
}

/// Hyperparameters for dCNN distillation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistillConfig {
    /// SGD learning rate (the paper trains the dCNN with SGD).
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Epochs over the unlabeled pool.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Distillation temperature (softens teacher/student outputs; 1.0 =
    /// plain softmax matching).
    pub temperature: f32,
}

impl Default for DistillConfig {
    fn default() -> Self {
        DistillConfig {
            lr: 0.05,
            momentum: 0.9,
            epochs: 6,
            batch_size: 32,
            temperature: 2.0,
        }
    }
}

/// Trains a dCNN student for `level` by distillation (paper §4.3):
///
/// 1. each unlabeled frame is passed through the teacher at full
///    resolution (on-device — the original image never leaves the car),
/// 2. the frame is down-sampled and sent to the server,
/// 3. the student processes the distorted frame and is trained to minimize
///    the L2 distance between its outputs and the teacher's.
///
/// The student reuses the teacher's architecture and is initialized from
/// the teacher's weights, as in the paper.
///
/// # Errors
///
/// Propagates model errors.
pub fn distill_dcnn(
    teacher: &mut FrameCnn,
    unlabeled: &[Frame],
    level: PrivacyLevel,
    config: &DistillConfig,
    seed: u64,
) -> Result<FrameCnn> {
    let full = teacher.config().input_size;
    let downsampler = Downsampler::new(full);
    let mut student = FrameCnn::new(*teacher.config(), seed);
    student.copy_params_from(teacher)?;

    let mut opt = Sgd::with_momentum(config.lr, config.momentum).clip_norm(5.0);
    let mut rng = SplitMix64::new(seed ^ 0xD157);
    let mut order: Vec<usize> = (0..unlabeled.len()).collect();
    for epoch in 0..config.epochs {
        rng.shuffle(&mut order);
        opt.lr = config.lr / (1.0 + 0.3 * epoch as f32);
        for chunk in order.chunks(config.batch_size.max(1)) {
            let batch_frames: Vec<Frame> = chunk.iter().map(|&i| unlabeled[i].clone()).collect();
            // Step 1: teacher on original frames (device side).
            let full_tensor = frames_to_tensor(&batch_frames)?;
            let teacher_logits = teacher.logits(&full_tensor)?;
            // Steps 2–4: student on distorted frames, L2 against teacher.
            let distorted = downsampler.roundtrip_tensor(&batch_frames, level)?;
            student.distill_step_with_temperature(
                &distorted,
                &teacher_logits,
                &mut opt,
                config.temperature,
            )?;
        }
    }
    Ok(student)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::CnnConfig;
    use darnet_sim::{Behavior, DriverProfile, FrameRenderer};

    #[test]
    fn levels_have_paper_ratios() {
        assert_eq!(PrivacyLevel::Low.target_size(48), 16);
        assert_eq!(PrivacyLevel::Medium.target_size(48), 8);
        assert_eq!(PrivacyLevel::High.target_size(48), 4);
        assert_eq!(PrivacyLevel::Low.data_reduction(), 9);
        assert_eq!(PrivacyLevel::Medium.data_reduction(), 36);
        assert_eq!(PrivacyLevel::High.data_reduction(), 144);
        // Matches the paper's 300 → 100/50/25.
        assert_eq!(PrivacyLevel::Low.target_size(300), 100);
        assert_eq!(PrivacyLevel::Medium.target_size(300), 50);
        assert_eq!(PrivacyLevel::High.target_size(300), 25);
    }

    #[test]
    fn model_names_match_table3() {
        assert_eq!(PrivacyLevel::Low.to_string(), "dCNN-L");
        assert_eq!(PrivacyLevel::Medium.to_string(), "dCNN-M");
        assert_eq!(PrivacyLevel::High.to_string(), "dCNN-H");
    }

    #[test]
    fn distortion_loses_information_monotonically() {
        let renderer = FrameRenderer::new(5).with_noise(0.0);
        let driver = DriverProfile::generate(0, 42);
        let frame = renderer.render(&driver, Behavior::Texting, 1.0);
        let ds = Downsampler::new(48);
        let l1 = |a: &Frame, b: &Frame| -> f32 {
            a.pixels()
                .iter()
                .zip(b.pixels())
                .map(|(x, y)| (x - y).abs())
                .sum()
        };
        let err_low = l1(&frame, &ds.roundtrip(&frame, PrivacyLevel::Low));
        let err_med = l1(&frame, &ds.roundtrip(&frame, PrivacyLevel::Medium));
        let err_high = l1(&frame, &ds.roundtrip(&frame, PrivacyLevel::High));
        assert!(err_low < err_med, "{err_low} vs {err_med}");
        assert!(err_med < err_high, "{err_med} vs {err_high}");
    }

    #[test]
    fn roundtrip_tensor_has_full_shape() {
        let ds = Downsampler::new(48);
        let frames = vec![Frame::new(48, 48); 2];
        let t = ds.roundtrip_tensor(&frames, PrivacyLevel::Medium).unwrap();
        assert_eq!(t.dims(), &[2, 1, 48, 48]);
    }

    #[test]
    fn distillation_trains_student_toward_teacher() {
        let config = CnnConfig {
            input_size: 24,
            classes: 3,
            width: 0.5,
            batch_size: 8,
            ..CnnConfig::default()
        };
        let mut teacher = FrameCnn::new(config, 1);
        let renderer = FrameRenderer::new(9).with_size(24);
        let driver = DriverProfile::generate(0, 42);
        let frames: Vec<Frame> = (0..24)
            .map(|i| renderer.render(&driver, Behavior::ALL[i % 6], i as f64 * 0.4))
            .collect();
        let d_config = DistillConfig {
            epochs: 4,
            batch_size: 8,
            ..DistillConfig::default()
        };
        let mut student =
            distill_dcnn(&mut teacher, &frames, PrivacyLevel::Low, &d_config, 7).unwrap();
        // The student should agree with the teacher on most frames.
        let ds = Downsampler::new(24);
        let full = frames_to_tensor(&frames).unwrap();
        let distorted = ds.roundtrip_tensor(&frames, PrivacyLevel::Low).unwrap();
        let t_pred = teacher.predict(&full).unwrap();
        let s_pred = student.predict(&distorted).unwrap();
        let agree = t_pred.iter().zip(&s_pred).filter(|(a, b)| a == b).count();
        assert!(
            agree as f32 / t_pred.len() as f32 > 0.6,
            "agreement {agree}/{}",
            t_pred.len()
        );
    }
}
