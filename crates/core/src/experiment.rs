//! End-to-end experiment drivers regenerating every table and figure of
//! the paper (see `DESIGN.md` §4 for the experiment index). The
//! `darnet-bench` binaries are thin wrappers over these functions; the
//! integration tests run them at reduced scale.

use std::sync::Arc;

use darnet_collect::runtime::{run_campaign, run_canonical_campaign, CampaignConfig};
use darnet_collect::{FaultConfig, LinkConfig, StreamId};
use darnet_nn::SvmConfig;
use darnet_sim::schedule::{
    build_canonical_schedule, build_extended_schedule, build_schedule, CanonicalScheduleConfig,
    ExtendedScheduleConfig, ScheduleConfig, TABLE1_FRAME_COUNTS,
};
use darnet_sim::{
    Behavior, CanonicalBehavior, DrivingWorld, ExtendedBehavior, Frame, Segment, WorldConfig,
};
use darnet_tensor::{SplitMix64, Tensor};

use crate::dataset::{
    CanonicalDataset, ExtendedFrameDataset, MultimodalDataset, IMU_FEATURES, WINDOW_LEN,
};
use crate::ensemble::{product_combine, BayesianCombiner, CombinerKind};
use crate::eval::ConfusionMatrix;
use crate::health::{HealthPolicy, ModalityStatus};
use crate::models::{CnnConfig, FrameCnn, ImuRnn, ImuSvm, RnnConfig};
use crate::privacy::{distill_dcnn, DistillConfig, Downsampler, PrivacyLevel};
use crate::registry::{
    ClassMap, ModalityDescriptor, MultiModalEngine, MultiStepClassification, StreamInput,
    StreamModelSlot,
};
use crate::{CoreError, Result};

/// Knobs shared by every experiment driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// Master seed.
    pub seed: u64,
    /// Scale factor on the paper's Table-1 frame counts.
    pub scale: f64,
    /// Square frame edge length.
    pub frame_size: usize,
    /// CNN training epochs.
    pub cnn_epochs: usize,
    /// CNN width multiplier.
    pub cnn_width: f32,
    /// RNN training epochs.
    pub rnn_epochs: usize,
    /// LSTM hidden units per direction.
    pub rnn_hidden: usize,
    /// Stacked BiLSTM layers.
    pub rnn_depth: usize,
    /// Train fraction of the 80/20 split.
    pub train_frac: f64,
    /// Number of drivers in the main campaign (paper: 5).
    pub drivers: usize,
}

impl ExperimentConfig {
    /// Reduced-scale preset for tests: trains in seconds.
    pub fn fast() -> Self {
        ExperimentConfig {
            seed: 0xDA12_2017,
            scale: 0.02,
            frame_size: 48,
            cnn_epochs: 4,
            cnn_width: 0.75,
            rnn_epochs: 4,
            rnn_hidden: 12,
            rnn_depth: 1,
            train_frac: 0.8,
            drivers: 5,
        }
    }

    /// Full-reproduction preset used by the `repro_*` binaries: the
    /// paper's class balance at 1/10 frame count, a wider CNN, and the
    /// paper's 2-layer bidirectional LSTM (32 hidden units per direction —
    /// a CPU-budget reduction of the paper's 64, documented in DESIGN.md).
    pub fn paper() -> Self {
        ExperimentConfig {
            seed: 0xDA12_2017,
            scale: 0.1,
            frame_size: 48,
            cnn_epochs: 10,
            cnn_width: 1.5,
            rnn_epochs: 8,
            rnn_hidden: 32,
            rnn_depth: 2,
            train_frac: 0.8,
            drivers: 5,
        }
    }
}

/// Builds the world + schedule and runs the full collection campaign
/// through the middleware, returning the labeled multimodal dataset and
/// the schedule it came from.
///
/// # Errors
///
/// Propagates collection and dataset errors.
pub fn collect_multimodal(
    config: &ExperimentConfig,
) -> Result<(MultimodalDataset, Vec<Segment<Behavior>>)> {
    let world = Arc::new(DrivingWorld::new(WorldConfig {
        drivers: config.drivers,
        frame_size: config.frame_size,
        seed: config.seed,
        ..WorldConfig::default()
    }));
    let schedule = build_schedule(&ScheduleConfig {
        drivers: config.drivers,
        scale: config.scale,
        ..ScheduleConfig::default()
    });
    let campaign = CampaignConfig {
        seed: config.seed ^ 0xCA11,
        ..CampaignConfig::default()
    };
    let recordings = run_campaign(&world, &schedule, &campaign)?;
    let dataset = MultimodalDataset::from_recordings(&recordings, &schedule)?;
    Ok((dataset, schedule))
}

// ---------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------

/// One row of the Table-1 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Class number (1-based, as in the paper).
    pub class: usize,
    /// Class description.
    pub description: &'static str,
    /// "Image, IMU" or "Image, —" (Table 1 data-type column).
    pub data_types: &'static str,
    /// The paper's frame count.
    pub paper_frames: usize,
    /// Target count at this run's scale.
    pub target_frames: usize,
    /// Frames actually collected through the middleware.
    pub collected_frames: usize,
}

/// The Table-1 reproduction report.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Report {
    /// One row per behaviour class.
    pub rows: Vec<Table1Row>,
    /// Total collected frames.
    pub total_collected: usize,
}

/// Regenerates Table 1: runs the collection campaign and tabulates
/// per-class frame counts against the paper's.
///
/// # Errors
///
/// Propagates collection errors.
pub fn run_table1(config: &ExperimentConfig) -> Result<Table1Report> {
    let (dataset, _) = collect_multimodal(config)?;
    let counts = dataset.class_counts();
    let rows = Behavior::ALL
        .iter()
        .enumerate()
        .map(|(i, b)| Table1Row {
            class: i + 1,
            description: b.name(),
            data_types: if b.table1_has_imu() {
                "Image, IMU"
            } else {
                "Image, \u{2014}"
            },
            paper_frames: TABLE1_FRAME_COUNTS[i],
            target_frames: (TABLE1_FRAME_COUNTS[i] as f64 * config.scale).round() as usize,
            collected_frames: counts[i],
        })
        .collect();
    Ok(Table1Report {
        rows,
        total_collected: dataset.len(),
    })
}

// ---------------------------------------------------------------------
// Table 2 / Figure 5
// ---------------------------------------------------------------------

/// Every artifact of one full multimodal training run, reused by the
/// Table-2/Figure-5 reports and the ablations.
pub struct TrainedStack {
    /// Training split.
    pub train: MultimodalDataset,
    /// Evaluation split.
    pub eval: MultimodalDataset,
    /// Trained frame CNN (6 classes).
    pub cnn: FrameCnn,
    /// Trained IMU BiLSTM (3 classes).
    pub rnn: ImuRnn,
    /// Trained IMU SVM (3 classes).
    pub svm: ImuSvm,
    /// Bayesian combiner fitted for CNN+RNN.
    pub bn_rnn: BayesianCombiner,
    /// Bayesian combiner fitted for CNN+SVM.
    pub bn_svm: BayesianCombiner,
    /// CNN probabilities on the evaluation split.
    pub cnn_probs_eval: Tensor,
    /// RNN probabilities on the evaluation split.
    pub rnn_probs_eval: Tensor,
    /// SVM probabilities on the evaluation split.
    pub svm_probs_eval: Tensor,
}

/// Trains the full DarNet stack (CNN, RNN, SVM, both combiners) on a
/// freshly collected campaign.
///
/// # Errors
///
/// Propagates collection/training errors.
pub fn train_stack(config: &ExperimentConfig) -> Result<TrainedStack> {
    let (dataset, _) = collect_multimodal(config)?;
    train_stack_on(config, dataset)
}

/// Trains the full stack on an already-collected dataset (ablations reuse
/// this to vary the collection pipeline).
///
/// # Errors
///
/// Propagates training errors.
pub fn train_stack_on(
    config: &ExperimentConfig,
    dataset: MultimodalDataset,
) -> Result<TrainedStack> {
    let (train, eval) = dataset.split(config.train_frac, config.seed ^ 0x5911);

    // Frame CNN.
    let mut cnn = FrameCnn::new(
        CnnConfig {
            input_size: config.frame_size,
            classes: 6,
            width: config.cnn_width,
            ..CnnConfig::default()
        },
        config.seed ^ 0xC99,
    );
    let train_frames = train.frames_tensor()?;
    let train_labels6 = train.labels6();
    cnn.fit(&train_frames, &train_labels6, config.cnn_epochs)?;

    // IMU models.
    let train_windows = train.imu_tensor()?;
    let train_labels3 = train.labels3();
    let mut rnn = ImuRnn::new(
        RnnConfig {
            hidden: config.rnn_hidden,
            depth: config.rnn_depth,
            ..RnnConfig::default()
        },
        config.seed ^ 0x44,
    );
    rnn.fit(&train_windows, &train_labels3, config.rnn_epochs)?;
    let mut svm = ImuSvm::new(WINDOW_LEN, IMU_FEATURES, 3, SvmConfig::default());
    let mut svm_rng = SplitMix64::new(config.seed ^ 0x55);
    svm.fit(&train_windows, &train_labels3, &mut svm_rng)?;

    // Combiners: CPTs from training-set observations (paper §4.2).
    let cnn_probs_train = cnn.predict_proba(&train_frames)?;
    let rnn_probs_train = rnn.predict_proba(&train_windows)?;
    let svm_probs_train = svm.predict_proba(&train_windows)?;
    let mut bn_rnn = BayesianCombiner::darnet();
    bn_rnn.fit(&cnn_probs_train, &rnn_probs_train, &train_labels6)?;
    let mut bn_svm = BayesianCombiner::darnet();
    bn_svm.fit(&cnn_probs_train, &svm_probs_train, &train_labels6)?;

    // Evaluation-split probabilities (computed once, reused by reports).
    let eval_frames = eval.frames_tensor()?;
    let eval_windows = eval.imu_tensor()?;
    let cnn_probs_eval = cnn.predict_proba(&eval_frames)?;
    let rnn_probs_eval = rnn.predict_proba(&eval_windows)?;
    let svm_probs_eval = svm.predict_proba(&eval_windows)?;

    Ok(TrainedStack {
        train,
        eval,
        cnn,
        rnn,
        svm,
        bn_rnn,
        bn_svm,
        cnn_probs_eval,
        rnn_probs_eval,
        svm_probs_eval,
    })
}

/// The Table-2 (+ §5.2 IMU-only numbers) and Figure-5 report.
#[derive(Debug, Clone)]
pub struct Table2Report {
    /// Top-1 of the CNN+RNN ensemble (paper: 87.02%).
    pub top1_cnn_rnn: f64,
    /// Top-1 of the CNN+SVM ensemble (paper: 86.23%).
    pub top1_cnn_svm: f64,
    /// Top-1 of the frame-only CNN (paper: 73.88%).
    pub top1_cnn: f64,
    /// RNN accuracy on the IMU stream alone, 3 classes (paper: 97.44%).
    pub imu_rnn_top1: f64,
    /// SVM accuracy on the IMU stream alone, 3 classes (paper: 95.37%).
    pub imu_svm_top1: f64,
    /// Figure 5a: CNN+RNN confusion matrix.
    pub cm_cnn_rnn: ConfusionMatrix,
    /// Figure 5b: CNN+SVM confusion matrix.
    pub cm_cnn_svm: ConfusionMatrix,
    /// Figure 5c: CNN-only confusion matrix.
    pub cm_cnn: ConfusionMatrix,
}

fn accuracy(preds: &[usize], labels: &[usize]) -> f64 {
    let correct = preds.iter().zip(labels).filter(|(a, b)| a == b).count();
    correct as f64 / labels.len().max(1) as f64
}

/// Computes the Table-2/Figure-5 report from a trained stack.
///
/// # Errors
///
/// Propagates model errors.
pub fn table2_from_stack(stack: &TrainedStack) -> Result<Table2Report> {
    let labels6 = stack.eval.labels6();
    let labels3 = stack.eval.labels3();

    let preds_cnn = stack.cnn_probs_eval.argmax_rows()?;
    let preds_rnn_ens = stack
        .bn_rnn
        .predict_batch(&stack.cnn_probs_eval, &stack.rnn_probs_eval)?;
    let preds_svm_ens = stack
        .bn_svm
        .predict_batch(&stack.cnn_probs_eval, &stack.svm_probs_eval)?;
    let preds_rnn_only = stack.rnn_probs_eval.argmax_rows()?;
    let preds_svm_only = stack.svm_probs_eval.argmax_rows()?;

    Ok(Table2Report {
        top1_cnn_rnn: accuracy(&preds_rnn_ens, &labels6),
        top1_cnn_svm: accuracy(&preds_svm_ens, &labels6),
        top1_cnn: accuracy(&preds_cnn, &labels6),
        imu_rnn_top1: accuracy(&preds_rnn_only, &labels3),
        imu_svm_top1: accuracy(&preds_svm_only, &labels3),
        cm_cnn_rnn: ConfusionMatrix::from_predictions(&labels6, &preds_rnn_ens, 6)?,
        cm_cnn_svm: ConfusionMatrix::from_predictions(&labels6, &preds_svm_ens, 6)?,
        cm_cnn: ConfusionMatrix::from_predictions(&labels6, &preds_cnn, 6)?,
    })
}

/// Regenerates Table 2 and Figure 5 end to end.
///
/// # Errors
///
/// Propagates collection/training errors.
pub fn run_table2(config: &ExperimentConfig) -> Result<Table2Report> {
    let stack = train_stack(config)?;
    table2_from_stack(&stack)
}

// ---------------------------------------------------------------------
// Table 3 / Figure 4 (privacy study)
// ---------------------------------------------------------------------

/// Configuration for the privacy (dCNN) study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivacyExperimentConfig {
    /// Master seed.
    pub seed: u64,
    /// Drivers in the extended dataset (paper: 10).
    pub drivers: usize,
    /// Seconds of footage per class per driver.
    pub seconds_per_class: f64,
    /// Sampling fps for the labeled dataset.
    pub fps: f64,
    /// Frame edge length.
    pub frame_size: usize,
    /// Teacher CNN width.
    pub cnn_width: f32,
    /// Teacher supervised epochs.
    pub teacher_epochs: usize,
    /// Distillation settings.
    pub distill: DistillConfig,
    /// Multiplier on the unlabeled pool size relative to the training
    /// split (distillation needs no labels, so students see more data —
    /// the regularization effect behind dCNN-L ≥ CNN).
    pub unlabeled_multiplier: f64,
    /// Fraction of training labels flipped (annotation noise in the
    /// hand-labeled video dataset).
    pub label_noise: f64,
}

impl PrivacyExperimentConfig {
    /// Reduced-scale preset for tests.
    pub fn fast() -> Self {
        PrivacyExperimentConfig {
            seed: 0xD155,
            drivers: 4,
            seconds_per_class: 5.0,
            fps: 3.0,
            frame_size: 48,
            cnn_width: 1.0,
            teacher_epochs: 8,
            distill: DistillConfig {
                epochs: 4,
                ..DistillConfig::default()
            },
            unlabeled_multiplier: 1.5,
            label_noise: 0.2,
        }
    }

    /// Full preset for the `repro_table3` binary.
    pub fn paper() -> Self {
        PrivacyExperimentConfig {
            seed: 0xD155,
            drivers: 10,
            // A deliberately small labeled set (the paper's 18-class CNN
            // reaches only 78.87%) with a much larger unlabeled pool for
            // the label-free distillation.
            seconds_per_class: 3.0,
            fps: 3.0,
            // 96 px frames: the paper's absolute distortion sizes
            // (100/50/25 px) still contain gross pose; see DESIGN.md §2.
            frame_size: 96,
            cnn_width: 1.5,
            teacher_epochs: 10,
            distill: DistillConfig {
                epochs: 8,
                temperature: 3.0,
                ..DistillConfig::default()
            },
            unlabeled_multiplier: 3.0,
            label_noise: 0.2,
        }
    }
}

/// The Table-3 report.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Report {
    /// Baseline full-resolution CNN Top-1 (paper: 78.87%).
    pub cnn_top1: f64,
    /// `(level, top1)` per distortion level (paper: 80.00 / 77.78 /
    /// 63.13%).
    pub dcnn_top1: Vec<(PrivacyLevel, f64)>,
}

/// Regenerates Table 3: trains the 18-class teacher, distills one dCNN
/// per level on an unlabeled pool, and evaluates everything on the same
/// held-out split.
///
/// # Errors
///
/// Propagates training errors.
pub fn run_table3(config: &PrivacyExperimentConfig) -> Result<Table3Report> {
    let world = DrivingWorld::new(WorldConfig {
        drivers: config.drivers,
        frame_size: config.frame_size,
        seed: config.seed,
        ..WorldConfig::default()
    });
    let schedule = build_extended_schedule(&ExtendedScheduleConfig {
        drivers: config.drivers,
        seconds_per_class: config.seconds_per_class,
        segment_seconds: 15.0,
    });
    let dataset = ExtendedFrameDataset::generate(&world, &schedule, config.fps);
    // Driver-disjoint evaluation: every 5th driver (or the last one, for
    // tiny rosters) is held out, exposing the teacher's identity
    // overfitting (the paper's §5.3 hypothesis for why dCNN-L can beat
    // the full-resolution CNN).
    let holdout = config.drivers.min(5);
    let (train, eval) = dataset.split_by_driver(holdout, holdout - 1);

    // Teacher: supervised training on the labeled split.
    let mut teacher = FrameCnn::new(
        CnnConfig {
            input_size: config.frame_size,
            classes: 18,
            width: config.cnn_width,
            ..CnnConfig::default()
        },
        config.seed ^ 0x7,
    );
    let train_idx: Vec<usize> = (0..train.len()).collect();
    let train_frames = train.frames_tensor_of(&train_idx)?;
    // Hand-annotated video labels are imperfect near segment boundaries;
    // the teacher partially memorizes this noise (the overfitting §5.3
    // describes), while the label-free distilled students do not.
    let noisy_train = train.with_label_noise(config.label_noise, config.seed ^ 0x9A);
    teacher.fit(&train_frames, noisy_train.labels(), config.teacher_epochs)?;

    // Unlabeled pool: the training frames plus freshly generated footage
    // at offset times (the paper's method is fully unsupervised, so new
    // data can be incorporated freely).
    let mut unlabeled: Vec<Frame> = train.frames().to_vec();
    let extra_needed =
        ((train.len() as f64) * (config.unlabeled_multiplier - 1.0)).max(0.0) as usize;
    if extra_needed > 0 {
        let mut rng = SplitMix64::new(config.seed ^ 0x11);
        let per_class = extra_needed / 18 + 1;
        'outer: for k in 0..per_class {
            for b in ExtendedBehavior::ALL {
                let driver = rng.next_usize(config.drivers);
                let t = 500.0 + k as f64 * 1.7 + b.index() as f64 * 29.3;
                unlabeled.push(world.render_extended_frame(driver, b, t));
                if unlabeled.len() >= train.len() + extra_needed {
                    break 'outer;
                }
            }
        }
    }

    // Evaluation tensors.
    let eval_idx: Vec<usize> = (0..eval.len()).collect();
    let eval_frames_full = eval.frames_tensor_of(&eval_idx)?;
    let cnn_top1 = teacher.evaluate(&eval_frames_full, eval.labels())? as f64;

    let downsampler = Downsampler::new(config.frame_size);
    let mut dcnn_top1 = Vec::new();
    for level in PrivacyLevel::ALL {
        let mut student = distill_dcnn(
            &mut teacher,
            &unlabeled,
            level,
            &config.distill,
            config.seed ^ (0x100 + level.divisor() as u64),
        )?;
        let eval_distorted = downsampler.roundtrip_tensor(eval.frames(), level)?;
        let acc = student.evaluate(&eval_distorted, eval.labels())? as f64;
        dcnn_top1.push((level, acc));
    }
    Ok(Table3Report {
        cnn_top1,
        dcnn_top1,
    })
}

/// Regenerates Figure 4: one frame at full resolution and at the three
/// distortion levels, written as PGM files into `dir`. Returns the file
/// paths.
///
/// # Errors
///
/// Returns an I/O-wrapping dataset error if the directory is not
/// writable.
pub fn run_fig4(dir: &std::path::Path, seed: u64) -> Result<Vec<std::path::PathBuf>> {
    let world = DrivingWorld::new(WorldConfig {
        seed,
        ..WorldConfig::default()
    });
    let frame = world.render_frame(0, Behavior::Texting, 3.0);
    let downsampler = Downsampler::new(frame.width());
    let mut paths = Vec::new();
    let write = |name: &str, f: &Frame| -> Result<std::path::PathBuf> {
        let path = dir.join(name);
        std::fs::write(&path, f.to_pgm())
            .map_err(|e| crate::CoreError::Dataset(format!("writing {}: {e}", path.display())))?;
        Ok(path)
    };
    paths.push(write("fig4_full.pgm", &frame)?);
    for level in PrivacyLevel::ALL {
        let distorted = downsampler.distort(&frame, level);
        paths.push(write(
            &format!("fig4_{}.pgm", level.model_name().to_lowercase()),
            &distorted,
        )?);
    }
    Ok(paths)
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §6)
// ---------------------------------------------------------------------

/// Combiner-ablation result: Top-1 per fusion strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct CombinerAblation {
    /// The paper's Bayesian-network combiner.
    pub bayesian: f64,
    /// Independence-product fusion.
    pub product: f64,
    /// CNN only.
    pub cnn_only: f64,
}

/// Compares fusion strategies on a trained stack's evaluation split.
///
/// # Errors
///
/// Propagates combiner errors.
pub fn run_ablation_combiner(stack: &TrainedStack) -> Result<CombinerAblation> {
    let labels6 = stack.eval.labels6();
    let n = labels6.len();
    let bayes_preds = stack
        .bn_rnn
        .predict_batch(&stack.cnn_probs_eval, &stack.rnn_probs_eval)?;
    let mut product_preds = Vec::with_capacity(n);
    for i in 0..n {
        let c = &stack.cnn_probs_eval.data()[i * 6..(i + 1) * 6];
        let m = &stack.rnn_probs_eval.data()[i * 3..(i + 1) * 3];
        let scores = product_combine(c, m)?;
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        product_preds.push(best);
    }
    let cnn_preds = stack.cnn_probs_eval.argmax_rows()?;
    Ok(CombinerAblation {
        bayesian: accuracy(&bayes_preds, &labels6),
        product: accuracy(&product_preds, &labels6),
        cnn_only: accuracy(&cnn_preds, &labels6),
    })
}

/// Clock-sync ablation result.
#[derive(Debug, Clone, PartialEq)]
pub struct ClockSyncAblation {
    /// Max observed agent clock error with the 5 s sync protocol on.
    pub max_error_synced: f64,
    /// Max observed agent clock error with synchronization disabled.
    pub max_error_unsynced: f64,
}

/// Measures the clock-error impact of disabling the paper's 5-second
/// master–slave synchronization protocol.
///
/// # Errors
///
/// Propagates collection errors.
pub fn run_ablation_clocksync(config: &ExperimentConfig) -> Result<ClockSyncAblation> {
    let world = Arc::new(DrivingWorld::new(WorldConfig {
        drivers: config.drivers,
        frame_size: config.frame_size,
        seed: config.seed,
        ..WorldConfig::default()
    }));
    let schedule = build_schedule(&ScheduleConfig {
        drivers: config.drivers,
        scale: config.scale,
        ..ScheduleConfig::default()
    });
    let synced = run_campaign(
        &world,
        &schedule,
        &CampaignConfig {
            seed: config.seed ^ 0xCA11,
            sync_enabled: true,
            ..CampaignConfig::default()
        },
    )?;
    let unsynced = run_campaign(
        &world,
        &schedule,
        &CampaignConfig {
            seed: config.seed ^ 0xCA11,
            sync_enabled: false,
            ..CampaignConfig::default()
        },
    )?;
    let max = |recs: &[darnet_collect::runtime::DriverRecording]| {
        recs.iter().map(|r| r.max_clock_error).fold(0.0, f64::max)
    };
    Ok(ClockSyncAblation {
        max_error_synced: max(&synced),
        max_error_unsynced: max(&unsynced),
    })
}

/// Smoothing/alignment ablation result: IMU-only RNN accuracy with the
/// controller's smoothing window on vs. off.
#[derive(Debug, Clone, PartialEq)]
pub struct AlignmentAblation {
    /// RNN 3-class accuracy with the paper's smoothing pipeline.
    pub smoothed: f64,
    /// RNN 3-class accuracy with smoothing disabled (window = 1).
    pub unsmoothed: f64,
}

/// Measures the effect of the controller's sliding-moving-average
/// smoothing on downstream IMU classification.
///
/// # Errors
///
/// Propagates collection/training errors.
pub fn run_ablation_alignment(config: &ExperimentConfig) -> Result<AlignmentAblation> {
    let run = |window: usize| -> Result<f64> {
        let world = Arc::new(DrivingWorld::new(WorldConfig {
            drivers: config.drivers,
            frame_size: config.frame_size,
            seed: config.seed,
            ..WorldConfig::default()
        }));
        let schedule = build_schedule(&ScheduleConfig {
            drivers: config.drivers,
            scale: config.scale,
            ..ScheduleConfig::default()
        });
        let mut campaign = CampaignConfig {
            seed: config.seed ^ 0xCA11,
            ..CampaignConfig::default()
        };
        campaign.controller.smoothing_window = window;
        let recordings = run_campaign(&world, &schedule, &campaign)?;
        let dataset = MultimodalDataset::from_recordings(&recordings, &schedule)?;
        let (train, eval) = dataset.split(config.train_frac, config.seed ^ 0x5911);
        let mut rnn = ImuRnn::new(
            RnnConfig {
                hidden: config.rnn_hidden,
                depth: config.rnn_depth,
                ..RnnConfig::default()
            },
            config.seed ^ 0x44,
        );
        rnn.fit(&train.imu_tensor()?, &train.labels3(), config.rnn_epochs)?;
        Ok(rnn.evaluate(&eval.imu_tensor()?, &eval.labels3())? as f64)
    };
    Ok(AlignmentAblation {
        smoothed: run(3)?,
        unsmoothed: run(1)?,
    })
}

/// Pre-training ablation result.
#[derive(Debug, Clone, PartialEq)]
pub struct PretrainAblation {
    /// Eval Top-1 after fine-tuning a proxy-pretrained CNN.
    pub pretrained: f64,
    /// Eval Top-1 training the same budget from scratch.
    pub from_scratch: f64,
}

/// Reproduces the paper's transfer-learning rationale: pre-train the CNN
/// on a *proxy* world (different drivers — standing in for ILSVRC),
/// replace the head, fine-tune, and compare against from-scratch training
/// with the same fine-tuning budget.
///
/// # Errors
///
/// Propagates training errors.
pub fn run_ablation_pretrain(config: &ExperimentConfig) -> Result<PretrainAblation> {
    let (dataset, _) = collect_multimodal(config)?;
    let (train, eval) = dataset.split(config.train_frac, config.seed ^ 0x5911);
    let train_frames = train.frames_tensor()?;
    let train_labels = train.labels6();
    let eval_frames = eval.frames_tensor()?;
    let eval_labels = eval.labels6();
    let cnn_config = CnnConfig {
        input_size: config.frame_size,
        classes: 6,
        width: config.cnn_width,
        ..CnnConfig::default()
    };
    let fine_tune_epochs = (config.cnn_epochs / 2).max(1);

    // Proxy pre-training: a different world (different driver identities
    // and seeds), same behaviour taxonomy.
    let proxy_world = DrivingWorld::new(WorldConfig {
        drivers: 8,
        frame_size: config.frame_size,
        seed: config.seed ^ 0xAAAA,
        ..WorldConfig::default()
    });
    let mut proxy_frames = Vec::new();
    let mut proxy_labels = Vec::new();
    let per_class = (train.len() / 6).max(8);
    for b in Behavior::ALL {
        for k in 0..per_class {
            let driver = k % 8;
            let t = k as f64 * 0.83 + b.index() as f64 * 11.0;
            proxy_frames.push(proxy_world.render_frame(driver, b, t));
            proxy_labels.push(b.index());
        }
    }
    let proxy_tensor = crate::dataset::frames_to_tensor(&proxy_frames)?;
    let mut pretrained = FrameCnn::new(cnn_config, config.seed ^ 0xC99);
    pretrained.fit(&proxy_tensor, &proxy_labels, config.cnn_epochs)?;
    pretrained.replace_head(6);
    pretrained.fit(&train_frames, &train_labels, fine_tune_epochs)?;
    let acc_pre = pretrained.evaluate(&eval_frames, &eval_labels)? as f64;

    let mut scratch = FrameCnn::new(cnn_config, config.seed ^ 0xC99);
    scratch.fit(&train_frames, &train_labels, fine_tune_epochs)?;
    let acc_scratch = scratch.evaluate(&eval_frames, &eval_labels)? as f64;

    Ok(PretrainAblation {
        pretrained: acc_pre,
        from_scratch: acc_scratch,
    })
}

/// Distillation-vs-supervised ablation result at one privacy level.
#[derive(Debug, Clone, PartialEq)]
pub struct DistillAblation {
    /// The privacy level studied.
    pub level: PrivacyLevel,
    /// Teacher Top-1 at full resolution.
    pub teacher_full: f64,
    /// Teacher applied directly to distorted frames (no adaptation).
    pub teacher_distorted: f64,
    /// Student trained *supervised* on distorted frames with the same
    /// labels and epoch budget.
    pub supervised: f64,
    /// Student distilled label-free from the teacher (the paper's §4.3
    /// method).
    pub distilled: f64,
}

/// Quantifies what the paper's unsupervised distillation buys at a given
/// privacy level, against (a) no adaptation at all and (b) supervised
/// training directly on distorted frames.
///
/// # Errors
///
/// Propagates training errors.
pub fn run_ablation_distill(
    config: &PrivacyExperimentConfig,
    level: PrivacyLevel,
) -> Result<DistillAblation> {
    let world = DrivingWorld::new(WorldConfig {
        drivers: config.drivers,
        frame_size: config.frame_size,
        seed: config.seed,
        ..WorldConfig::default()
    });
    let schedule = build_extended_schedule(&ExtendedScheduleConfig {
        drivers: config.drivers,
        seconds_per_class: config.seconds_per_class,
        segment_seconds: 15.0,
    });
    let dataset = ExtendedFrameDataset::generate(&world, &schedule, config.fps);
    let holdout = config.drivers.min(5);
    let (train, eval) = dataset.split_by_driver(holdout, holdout - 1);
    let cnn_config = CnnConfig {
        input_size: config.frame_size,
        classes: 18,
        width: config.cnn_width,
        ..CnnConfig::default()
    };
    let train_idx: Vec<usize> = (0..train.len()).collect();
    let train_frames = train.frames_tensor_of(&train_idx)?;
    let noisy = train.with_label_noise(config.label_noise, config.seed ^ 0x9A);
    let mut teacher = FrameCnn::new(cnn_config, config.seed ^ 0x7);
    teacher.fit(&train_frames, noisy.labels(), config.teacher_epochs)?;

    let eval_idx: Vec<usize> = (0..eval.len()).collect();
    let eval_full = eval.frames_tensor_of(&eval_idx)?;
    let teacher_full = teacher.evaluate(&eval_full, eval.labels())? as f64;

    let downsampler = Downsampler::new(config.frame_size);
    let eval_distorted = downsampler.roundtrip_tensor(eval.frames(), level)?;
    let teacher_distorted = teacher.evaluate(&eval_distorted, eval.labels())? as f64;

    // Supervised student: same architecture, same epochs, trained on
    // distorted frames with the (noisy) labels.
    let mut supervised = FrameCnn::new(cnn_config, config.seed ^ 0x13);
    let train_distorted = downsampler.roundtrip_tensor(train.frames(), level)?;
    supervised.fit(&train_distorted, noisy.labels(), config.distill.epochs)?;
    let supervised_acc = supervised.evaluate(&eval_distorted, eval.labels())? as f64;

    // Distilled student: the paper's method, label-free.
    let mut distilled = distill_dcnn(
        &mut teacher,
        train.frames(),
        level,
        &config.distill,
        config.seed ^ 0x17,
    )?;
    let distilled_acc = distilled.evaluate(&eval_distorted, eval.labels())? as f64;

    Ok(DistillAblation {
        level,
        teacher_full,
        teacher_distorted,
        supervised: supervised_acc,
        distilled: distilled_acc,
    })
}

// ---------------------------------------------------------------------
// Multiview N-stream ablation (modality registry, DESIGN.md §17)
// ---------------------------------------------------------------------

/// The canonical 8-class → IMU-class projection: each canonical class
/// keeps the IMU class of its base behaviour, and the drowsiness cues —
/// which leave both hands on the wheel — collapse onto the wheel class.
pub fn canonical_imu_projection() -> Vec<usize> {
    CanonicalBehavior::ALL
        .iter()
        .map(|b| b.base().map_or(0, |base| base.imu_class().index()))
        .collect()
}

/// Knobs for [`run_ablation_multiview`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiviewConfig {
    /// Master seed.
    pub seed: u64,
    /// Scale factor on the Table-1 frame counts for the base classes.
    pub scale: f64,
    /// Square frame edge length.
    pub frame_size: usize,
    /// Number of drivers in the campaign.
    pub drivers: usize,
    /// Seconds of each drowsiness class per driver.
    pub drowsy_seconds_per_class: f64,
    /// CNN training epochs (front and side view).
    pub cnn_epochs: usize,
    /// CNN width multiplier.
    pub cnn_width: f32,
    /// RNN training epochs.
    pub rnn_epochs: usize,
    /// LSTM hidden units per direction.
    pub rnn_hidden: usize,
    /// Stacked BiLSTM layers.
    pub rnn_depth: usize,
    /// Train fraction of the split.
    pub train_frac: f64,
    /// Max |Δt| (seconds) when adopting the nearest side frame for a
    /// front-camera anchor in the three-way join.
    pub side_tolerance: f64,
    /// Steady packet loss injected on the front-camera link in the
    /// faulted campaign.
    pub front_loss: f64,
    /// Fraction of the session after which the front-camera link blacks
    /// out for the remainder (drives its health verdict stale).
    pub front_blackout_frac: f64,
}

impl MultiviewConfig {
    /// Reduced-scale preset for tests: runs in seconds.
    pub fn fast() -> Self {
        MultiviewConfig {
            seed: 0xDA12_2017,
            scale: 0.02,
            frame_size: 48,
            drivers: 3,
            drowsy_seconds_per_class: 6.0,
            cnn_epochs: 4,
            cnn_width: 0.75,
            rnn_epochs: 4,
            rnn_hidden: 12,
            rnn_depth: 1,
            train_frac: 0.8,
            side_tolerance: 0.3,
            front_loss: 0.35,
            front_blackout_frac: 0.25,
        }
    }

    /// Fuller preset for the `repro_ablation_multiview` binary.
    pub fn paper() -> Self {
        MultiviewConfig {
            scale: 0.05,
            drivers: 5,
            drowsy_seconds_per_class: 20.0,
            cnn_epochs: 8,
            cnn_width: 1.0,
            rnn_epochs: 6,
            rnn_hidden: 24,
            rnn_depth: 2,
            ..MultiviewConfig::fast()
        }
    }
}

/// Multiview ablation result: canonical 8-class Top-1 per engine
/// configuration, all measured on the same clean evaluation split. The
/// `*_front_lost` scenarios gate fusion with the health verdicts a real
/// faulted campaign produced — the ablation never hand-sets a status.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiviewAblation {
    /// Evaluation-split size.
    pub eval_samples: usize,
    /// Front camera alone (single-survivor expansion = CNN argmax).
    pub front_only: f64,
    /// IMU + front camera, the legacy pairing as an N=2 registry.
    pub two_stream: f64,
    /// IMU + front + side camera through the 3-parent combiner.
    pub three_stream: f64,
    /// The 2-stream engine after the faulted campaign's health policy
    /// drops the front camera (falls back to the IMU projection alone).
    pub two_stream_front_lost: f64,
    /// The 3-stream engine under the same verdicts (side + IMU fuse on).
    pub three_stream_front_lost: f64,
    /// Whether the fault campaign actually drove the front-camera
    /// stream to [`ModalityStatus::Unavailable`].
    pub front_unusable_under_fault: bool,
}

fn worst_status(a: ModalityStatus, b: ModalityStatus) -> ModalityStatus {
    use ModalityStatus::{Degraded, Unavailable};
    match (a, b) {
        (Unavailable, _) | (_, Unavailable) => Unavailable,
        (Degraded, _) | (_, Degraded) => Degraded,
        _ => ModalityStatus::Healthy,
    }
}

fn score_engine(
    engine: &mut MultiModalEngine,
    inputs: &[(StreamId, StreamInput<'_>)],
    statuses: &[(StreamId, ModalityStatus)],
    labels: &[usize],
    out: &mut Vec<MultiStepClassification>,
) -> Result<f64> {
    engine.classify_batch_checked_into(inputs, statuses, out)?;
    let preds: Vec<usize> = out.iter().map(|o| o.class).collect();
    Ok(accuracy(&preds, labels))
}

/// Runs the N-stream multiview ablation: a clean canonical campaign
/// trains per-stream models and fits 2- and 3-parent combiners; a second
/// campaign with loss + blackout on the front-camera link produces the
/// health evidence whose [`HealthPolicy::select_subset`] verdicts gate
/// fusion on the clean evaluation split.
///
/// # Errors
///
/// Propagates collection, dataset, and training errors.
pub fn run_ablation_multiview(config: &MultiviewConfig) -> Result<MultiviewAblation> {
    let world = Arc::new(DrivingWorld::new(WorldConfig {
        drivers: config.drivers,
        frame_size: config.frame_size,
        seed: config.seed,
        ..WorldConfig::default()
    }));
    let schedule = build_canonical_schedule(&CanonicalScheduleConfig {
        base: ScheduleConfig {
            drivers: config.drivers,
            scale: config.scale,
            ..ScheduleConfig::default()
        },
        drowsy_seconds_per_class: config.drowsy_seconds_per_class,
    });
    let streams = [StreamId::IMU, StreamId::CAMERA_FRONT, StreamId::CAMERA_SIDE];
    let campaign = CampaignConfig {
        seed: config.seed ^ 0xCA11,
        ..CampaignConfig::default()
    };

    // Clean campaign → canonical three-stream dataset.
    let clean = run_canonical_campaign(&world, &schedule, &campaign, &streams, &[])?;
    let dataset = CanonicalDataset::from_recordings(&clean, &schedule, config.side_tolerance)?;
    let (train, eval) = dataset.split(config.train_frac, config.seed ^ 0x5911);
    if train.is_empty() || eval.is_empty() {
        return Err(CoreError::Dataset(
            "multiview campaign produced an empty split".into(),
        ));
    }

    // Per-stream models: the IMU RNN stays native 3-class behind the
    // canonical projection; both camera views train 8-class heads.
    let imu_map = canonical_imu_projection();
    let labels8_train = train.labels8();
    let labels3_train: Vec<usize> = labels8_train.iter().map(|&c| imu_map[c]).collect();
    let train_imu = train.imu_tensor()?;
    let train_front = train.front_tensor()?;
    let train_side = train.side_tensor()?;

    let cnn_config = CnnConfig {
        input_size: config.frame_size,
        classes: CanonicalBehavior::ALL.len(),
        width: config.cnn_width,
        ..CnnConfig::default()
    };
    let rnn_config = RnnConfig {
        hidden: config.rnn_hidden,
        depth: config.rnn_depth,
        ..RnnConfig::default()
    };
    let mut rnn = ImuRnn::new(rnn_config, config.seed ^ 0x44);
    rnn.fit(&train_imu, &labels3_train, config.rnn_epochs)?;
    let mut front = FrameCnn::new(cnn_config, config.seed ^ 0xC99);
    front.fit(&train_front, &labels8_train, config.cnn_epochs)?;
    let mut side = FrameCnn::new(cnn_config, config.seed ^ 0x51DE);
    side.fit(&train_side, &labels8_train, config.cnn_epochs)?;

    // Training posteriors for the combiner fits.
    let rnn_probs = rnn.predict_proba(&train_imu)?;
    let front_probs = front.predict_proba(&train_front)?;
    let side_probs = side.predict_proba(&train_side)?;

    // The 2-stream baseline engine owns weight-identical model copies
    // (trained once, transplanted) so both engines see the same models.
    let rnn_weights = rnn.export_weights()?;
    let front_weights = front.export_weights();
    let classes = CanonicalBehavior::ALL.len();

    let imu_desc = ModalityDescriptor::new(StreamId::IMU, ClassMap::Projection(imu_map.clone()));
    let front_desc = ModalityDescriptor::new(StreamId::CAMERA_FRONT, ClassMap::Identity);
    let side_desc = ModalityDescriptor::new(StreamId::CAMERA_SIDE, ClassMap::Identity);

    let mut two = MultiModalEngine::new(classes, CombinerKind::Bayesian);
    let mut rnn2 = ImuRnn::new(rnn_config, config.seed ^ 0x44);
    rnn2.import_weights(&rnn_weights)?;
    let mut front2 = FrameCnn::new(cnn_config, config.seed ^ 0xC99);
    front2.import_weights(&front_weights)?;
    two.register(imu_desc.clone(), StreamModelSlot::Rnn(rnn2))?;
    two.register(front_desc.clone(), StreamModelSlot::Cnn(front2))?;
    two.fit_combiner(&[&rnn_probs, &front_probs], &labels8_train)?;

    let mut three = MultiModalEngine::new(classes, CombinerKind::Bayesian);
    three.register(imu_desc, StreamModelSlot::Rnn(rnn))?;
    three.register(front_desc, StreamModelSlot::Cnn(front))?;
    three.register(side_desc, StreamModelSlot::Cnn(side))?;
    three.fit_combiner(&[&rnn_probs, &front_probs, &side_probs], &labels8_train)?;

    // Faulted campaign: steady loss plus a terminal blackout on the
    // front-camera link only. Its recorded per-stream health drives the
    // subset policy, aggregated as the worst verdict across drivers.
    let session_end = schedule
        .iter()
        .map(|s| s.start + s.duration)
        .fold(0.0, f64::max);
    let front_link = LinkConfig {
        loss: config.front_loss,
        faults: FaultConfig {
            blackout: Some((
                session_end * config.front_blackout_frac,
                session_end + campaign.drain_grace,
            )),
            ..FaultConfig::default()
        },
        ..LinkConfig::default()
    };
    let faulted = run_canonical_campaign(
        &world,
        &schedule,
        &campaign,
        &streams,
        &[(StreamId::CAMERA_FRONT, front_link)],
    )?;
    let policy = HealthPolicy::default();
    let mut statuses: Vec<(StreamId, ModalityStatus)> = Vec::with_capacity(streams.len());
    for id in streams {
        let mut status = ModalityStatus::Healthy;
        for rec in &faulted {
            let health = rec.health_for(id);
            let sel = policy.select_subset(&[(id, health.as_ref())], session_end);
            status = worst_status(status, sel.status_of(id));
        }
        statuses.push((id, status));
    }
    let front_unusable = statuses
        .iter()
        .any(|(id, st)| *id == StreamId::CAMERA_FRONT && *st == ModalityStatus::Unavailable);

    // Every scenario scores the same clean evaluation split, so the
    // numbers differ only by which streams the engine could use.
    let eval_front = eval.front_frames();
    let eval_side = eval.side_frames();
    let eval_imu = eval.imu_tensor()?;
    let labels8_eval = eval.labels8();
    let two_inputs = [
        (StreamId::IMU, StreamInput::Windows(&eval_imu)),
        (StreamId::CAMERA_FRONT, StreamInput::Frames(&eval_front)),
    ];
    let three_inputs = [
        (StreamId::IMU, StreamInput::Windows(&eval_imu)),
        (StreamId::CAMERA_FRONT, StreamInput::Frames(&eval_front)),
        (StreamId::CAMERA_SIDE, StreamInput::Frames(&eval_side)),
    ];
    let mut out = Vec::new();
    let two_stream = score_engine(&mut two, &two_inputs, &[], &labels8_eval, &mut out)?;
    let three_stream = score_engine(&mut three, &three_inputs, &[], &labels8_eval, &mut out)?;
    let front_only = score_engine(
        &mut three,
        &three_inputs,
        &[
            (StreamId::IMU, ModalityStatus::Unavailable),
            (StreamId::CAMERA_SIDE, ModalityStatus::Unavailable),
        ],
        &labels8_eval,
        &mut out,
    )?;
    let two_stream_front_lost =
        score_engine(&mut two, &two_inputs, &statuses, &labels8_eval, &mut out)?;
    let three_stream_front_lost = score_engine(
        &mut three,
        &three_inputs,
        &statuses,
        &labels8_eval,
        &mut out,
    )?;

    Ok(MultiviewAblation {
        eval_samples: eval.len(),
        front_only,
        two_stream,
        three_stream,
        two_stream_front_lost,
        three_stream_front_lost,
        front_unusable_under_fault: front_unusable,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_config_collects_all_classes() {
        let report = run_table1(&ExperimentConfig::fast()).unwrap();
        assert_eq!(report.rows.len(), 6);
        for row in &report.rows {
            assert!(row.collected_frames > 0, "class {} empty", row.class);
            // Within a sane factor of the target (camera/transmit edge
            // effects allowed).
            let target = row.target_frames.max(1) as f64;
            let ratio = row.collected_frames as f64 / target;
            assert!(
                (0.5..2.0).contains(&ratio),
                "class {}: {} vs target {}",
                row.class,
                row.collected_frames,
                row.target_frames
            );
        }
        assert_eq!(
            report.total_collected,
            report
                .rows
                .iter()
                .map(|r| r.collected_frames)
                .sum::<usize>()
        );
    }

    #[test]
    fn multiview_ablation_keeps_three_streams_ahead_under_front_loss() {
        let ab = run_ablation_multiview(&MultiviewConfig::fast()).unwrap();
        assert!(ab.eval_samples > 0);
        assert!(
            ab.front_unusable_under_fault,
            "blackout + loss should drive the front camera unusable: {ab:?}"
        );
        for v in [
            ab.front_only,
            ab.two_stream,
            ab.three_stream,
            ab.two_stream_front_lost,
            ab.three_stream_front_lost,
        ] {
            assert!((0.0..=1.0).contains(&v), "{ab:?}");
        }
        // The ISSUE gate: with the front camera lost, the 3-stream
        // engine (side + IMU keep fusing) must not fall behind the
        // 2-stream engine (reduced to the IMU projection alone).
        assert!(
            ab.three_stream_front_lost >= ab.two_stream_front_lost,
            "{ab:?}"
        );
    }

    #[test]
    fn canonical_imu_projection_extends_the_legacy_map() {
        let map = canonical_imu_projection();
        assert_eq!(map.len(), 8);
        // The six base classes reproduce the legacy 6→3 projection...
        assert_eq!(&map[..6], &[0, 1, 2, 0, 0, 0]);
        // ...and both drowsiness cues keep hands on the wheel.
        assert_eq!(&map[6..], &[0, 0]);
    }

    #[test]
    fn clocksync_ablation_shows_protocol_value() {
        let mut config = ExperimentConfig::fast();
        config.scale = 0.01;
        let ab = run_ablation_clocksync(&config).unwrap();
        assert!(ab.max_error_unsynced > ab.max_error_synced * 2.0);
        assert!(ab.max_error_synced < 0.05);
    }
}
