//! Dataset construction: from collection-campaign recordings to labeled
//! multimodal training data.
//!
//! The paper divides its collected dataset into an 80/20 partition for
//! training and evaluation (§5.1); IMU windows are 20 points at 4 Hz
//! (5 seconds, §4.2).

use darnet_collect::runtime::{DriverRecording, MultiStreamRecording};
use darnet_collect::StreamId;
use darnet_sim::{
    Behavior, CanonicalBehavior, DrivingWorld, ExtendedBehavior, Frame, ImuClass, Segment,
};
use darnet_tensor::{SplitMix64, Tensor};

use crate::error::CoreError;
use crate::Result;

/// The paper's IMU window length: 4 Hz × 5 s.
pub const WINDOW_LEN: usize = 20;
/// IMU features per grid point.
pub const IMU_FEATURES: usize = 12;

/// Looks up the scripted behaviour at session time `t` within a driver's
/// (sorted) segments, defaulting to normal driving outside the script.
pub fn label_at(segments: &[Segment<Behavior>], t: f64) -> Behavior {
    let idx = segments.partition_point(|s| s.start <= t);
    if idx == 0 {
        return segments
            .first()
            .map(|s| s.behavior)
            .unwrap_or(Behavior::NormalDriving);
    }
    let seg = &segments[idx - 1];
    if seg.contains(t) {
        seg.behavior
    } else {
        Behavior::NormalDriving
    }
}

/// [`label_at`] over the canonical 8-class taxonomy (the 6 manual
/// distractions plus the two drowsiness cues).
pub fn canonical_label_at(segments: &[Segment<CanonicalBehavior>], t: f64) -> CanonicalBehavior {
    let idx = segments.partition_point(|s| s.start <= t);
    if idx == 0 {
        return segments
            .first()
            .map(|s| s.behavior)
            .unwrap_or(CanonicalBehavior::NormalDriving);
    }
    let seg = &segments[idx - 1];
    if seg.contains(t) {
        seg.behavior
    } else {
        CanonicalBehavior::NormalDriving
    }
}

/// One N-stream sample: the front frame, the side frame nearest to it,
/// and the IMU window ending at the front frame's timestamp.
#[derive(Debug, Clone, PartialEq)]
pub struct CanonicalSample {
    /// Controller timestamp of the front frame.
    pub t: f64,
    /// Driver id.
    pub driver: usize,
    /// Ground-truth canonical 8-class behaviour.
    pub class: CanonicalBehavior,
    /// The front-camera frame.
    pub front: Frame,
    /// The side-camera frame nearest in time.
    pub side: Frame,
    /// Flattened `[WINDOW_LEN × IMU_FEATURES]` window, time-major.
    pub imu_window: Vec<f32>,
}

/// A labeled N-stream dataset over the canonical 8-class taxonomy, built
/// from multi-stream campaign recordings: every sample joins the front
/// camera, the side camera, and the IMU at one instant.
#[derive(Debug, Clone, Default)]
pub struct CanonicalDataset {
    samples: Vec<CanonicalSample>,
    frame_size: usize,
}

impl CanonicalDataset {
    /// Builds the dataset from canonical multi-stream recordings plus
    /// the schedule that produced them. The front camera anchors the
    /// join (as in [`MultimodalDataset::from_recordings`]); each front
    /// tuple then adopts the side frame nearest in time, and tuples with
    /// no side frame within `side_tolerance` seconds are dropped — a
    /// three-way-complete dataset, so single-stream ablations evaluate
    /// the exact same instants.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Dataset`] on inconsistent frame sizes.
    pub fn from_recordings(
        recordings: &[MultiStreamRecording],
        segments: &[Segment<CanonicalBehavior>],
        side_tolerance: f64,
    ) -> Result<Self> {
        let mut samples = Vec::new();
        let mut frame_size = 0usize;
        for rec in recordings {
            let mut script: Vec<Segment<CanonicalBehavior>> = segments
                .iter()
                .filter(|s| s.driver == rec.driver)
                .copied()
                .collect();
            script.sort_by(|a, b| a.start.total_cmp(&b.start));
            let side = rec.frames_for(StreamId::CAMERA_SIDE);
            for tup in rec.aligned_tuples_for(StreamId::CAMERA_FRONT, WINDOW_LEN) {
                // Nearest side frame by timestamp (the side stream is in
                // timestamp order).
                let at = side.partition_point(|f| f.t < tup.t);
                let nearest = [at.checked_sub(1), Some(at)]
                    .into_iter()
                    .flatten()
                    .filter_map(|i| side.get(i))
                    .min_by(|a, b| (a.t - tup.t).abs().total_cmp(&(b.t - tup.t).abs()));
                let Some(near) = nearest else { continue };
                if (near.t - tup.t).abs() > side_tolerance {
                    continue;
                }
                if frame_size == 0 {
                    frame_size = tup.frame.width();
                }
                for f in [&tup.frame, &near.frame] {
                    if f.width() != frame_size || f.height() != frame_size {
                        return Err(CoreError::Dataset(format!(
                            "inconsistent frame size {}x{} (expected {frame_size})",
                            f.width(),
                            f.height()
                        )));
                    }
                }
                samples.push(CanonicalSample {
                    t: tup.t,
                    driver: rec.driver,
                    class: canonical_label_at(&script, tup.t),
                    front: tup.frame,
                    side: near.frame.clone(),
                    imu_window: tup.window,
                });
            }
        }
        Ok(CanonicalDataset {
            samples,
            frame_size,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Square frame edge length.
    pub fn frame_size(&self) -> usize {
        self.frame_size
    }

    /// The samples.
    pub fn samples(&self) -> &[CanonicalSample] {
        &self.samples
    }

    /// Per-class sample counts over the canonical taxonomy.
    pub fn class_counts(&self) -> [usize; 8] {
        let mut counts = [0usize; 8];
        for s in &self.samples {
            counts[s.class.index()] += 1;
        }
        counts
    }

    /// Canonical 8-class labels (all samples).
    pub fn labels8(&self) -> Vec<usize> {
        self.samples.iter().map(|s| s.class.index()).collect()
    }

    /// Shuffled split into `(train, eval)` — same shuffle machinery as
    /// [`MultimodalDataset::split`].
    ///
    /// # Panics
    ///
    /// Panics if `train_frac` is not within `(0, 1)`.
    pub fn split(&self, train_frac: f64, seed: u64) -> (CanonicalDataset, CanonicalDataset) {
        assert!(
            train_frac > 0.0 && train_frac < 1.0,
            "train fraction must be in (0, 1)"
        );
        let mut idx: Vec<usize> = (0..self.samples.len()).collect();
        let mut rng = SplitMix64::new(seed);
        rng.shuffle(&mut idx);
        let n_train = ((self.samples.len() as f64) * train_frac).round() as usize;
        let take = |ids: &[usize]| CanonicalDataset {
            samples: ids.iter().map(|&i| self.samples[i].clone()).collect(),
            frame_size: self.frame_size,
        };
        (take(&idx[..n_train]), take(&idx[n_train..]))
    }

    fn camera_tensor(&self, pick: impl Fn(&CanonicalSample) -> &Frame) -> Result<Tensor> {
        if self.is_empty() {
            return Err(CoreError::Dataset("empty frame batch".into()));
        }
        let hw = self.frame_size * self.frame_size;
        let mut data = Vec::with_capacity(self.len() * hw);
        for s in &self.samples {
            data.extend_from_slice(pick(s).pixels());
        }
        Ok(Tensor::from_vec(
            data,
            &[self.len(), 1, self.frame_size, self.frame_size],
        )?)
    }

    /// Front frames as a `[n, 1, h, w]` tensor.
    ///
    /// # Errors
    ///
    /// Returns an error if the dataset is empty.
    pub fn front_tensor(&self) -> Result<Tensor> {
        self.camera_tensor(|s| &s.front)
    }

    /// Side frames as a `[n, 1, h, w]` tensor.
    ///
    /// # Errors
    ///
    /// Returns an error if the dataset is empty.
    pub fn side_tensor(&self) -> Result<Tensor> {
        self.camera_tensor(|s| &s.side)
    }

    /// IMU windows as a `[n, WINDOW_LEN, IMU_FEATURES]` tensor.
    ///
    /// # Errors
    ///
    /// Returns an error if the dataset is empty.
    pub fn imu_tensor(&self) -> Result<Tensor> {
        if self.is_empty() {
            return Err(CoreError::Dataset("empty imu batch".into()));
        }
        let mut data = Vec::with_capacity(self.len() * WINDOW_LEN * IMU_FEATURES);
        for s in &self.samples {
            data.extend_from_slice(&s.imu_window);
        }
        Ok(Tensor::from_vec(
            data,
            &[self.len(), WINDOW_LEN, IMU_FEATURES],
        )?)
    }

    /// Front frames of the samples (for the step-by-step engine path).
    pub fn front_frames(&self) -> Vec<Frame> {
        self.samples.iter().map(|s| s.front.clone()).collect()
    }

    /// Side frames of the samples.
    pub fn side_frames(&self) -> Vec<Frame> {
        self.samples.iter().map(|s| s.side.clone()).collect()
    }
}

/// One multimodal sample: a camera frame with the IMU window that ends at
/// the frame's timestamp.
#[derive(Debug, Clone, PartialEq)]
pub struct MultimodalSample {
    /// Controller timestamp of the frame.
    pub t: f64,
    /// Driver id.
    pub driver: usize,
    /// Ground-truth 6-class behaviour.
    pub behavior: Behavior,
    /// The camera frame.
    pub frame: Frame,
    /// Flattened `[WINDOW_LEN × IMU_FEATURES]` window, time-major.
    pub imu_window: Vec<f32>,
}

impl MultimodalSample {
    /// The 3-class IMU label implied by the behaviour.
    pub fn imu_class(&self) -> ImuClass {
        self.behavior.imu_class()
    }
}

/// A labeled multimodal dataset.
#[derive(Debug, Clone, Default)]
pub struct MultimodalDataset {
    samples: Vec<MultimodalSample>,
    frame_size: usize,
}

impl MultimodalDataset {
    /// Builds the dataset from campaign recordings plus the schedule that
    /// produced them (the schedule provides ground-truth labels — the
    /// paper's "each video was verified at a later point in time").
    ///
    /// For every received frame, the IMU window is the last [`WINDOW_LEN`]
    /// aligned grid points not after the frame timestamp; windows at the
    /// session start are front-padded with their earliest point. Frames
    /// with no IMU data at all are skipped.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Dataset`] if the recordings contain frames of
    /// inconsistent sizes.
    pub fn from_recordings(
        recordings: &[DriverRecording],
        segments: &[Segment<Behavior>],
    ) -> Result<Self> {
        let mut samples = Vec::new();
        let mut frame_size = 0usize;
        for rec in recordings {
            let mut script: Vec<Segment<Behavior>> = segments
                .iter()
                .filter(|s| s.driver == rec.driver)
                .copied()
                .collect();
            script.sort_by(|a, b| a.start.total_cmp(&b.start));
            // The collect pipeline owns frame↔window pairing; the dataset
            // adds ground-truth labels from the schedule on top.
            for tup in rec.aligned_tuples(WINDOW_LEN) {
                if frame_size == 0 {
                    frame_size = tup.frame.width();
                }
                if tup.frame.width() != frame_size || tup.frame.height() != frame_size {
                    return Err(CoreError::Dataset(format!(
                        "inconsistent frame size {}x{} (expected {frame_size})",
                        tup.frame.width(),
                        tup.frame.height()
                    )));
                }
                samples.push(MultimodalSample {
                    t: tup.t,
                    driver: rec.driver,
                    behavior: label_at(&script, tup.t),
                    frame: tup.frame,
                    imu_window: tup.window,
                });
            }
        }
        Ok(MultimodalDataset {
            samples,
            frame_size,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Square frame edge length.
    pub fn frame_size(&self) -> usize {
        self.frame_size
    }

    /// The samples.
    pub fn samples(&self) -> &[MultimodalSample] {
        &self.samples
    }

    /// Per-class sample counts (Table 1 reproduction).
    pub fn class_counts(&self) -> [usize; 6] {
        let mut counts = [0usize; 6];
        for s in &self.samples {
            counts[s.behavior.index()] += 1;
        }
        counts
    }

    /// Shuffled 80/20-style split: returns `(train, eval)` datasets.
    ///
    /// # Panics
    ///
    /// Panics if `train_frac` is not within `(0, 1)`.
    pub fn split(&self, train_frac: f64, seed: u64) -> (MultimodalDataset, MultimodalDataset) {
        assert!(
            train_frac > 0.0 && train_frac < 1.0,
            "train fraction must be in (0, 1)"
        );
        let mut idx: Vec<usize> = (0..self.samples.len()).collect();
        let mut rng = SplitMix64::new(seed);
        rng.shuffle(&mut idx);
        let n_train = ((self.samples.len() as f64) * train_frac).round() as usize;
        let take = |ids: &[usize]| MultimodalDataset {
            samples: ids.iter().map(|&i| self.samples[i].clone()).collect(),
            frame_size: self.frame_size,
        };
        (take(&idx[..n_train]), take(&idx[n_train..]))
    }

    /// Frames as a `[n, 1, h, w]` tensor for the CNN.
    ///
    /// # Errors
    ///
    /// Returns an error if the dataset is empty.
    pub fn frames_tensor(&self) -> Result<Tensor> {
        self.frames_tensor_of(&(0..self.len()).collect::<Vec<_>>())
    }

    /// Frames at `indices` as a `[n, 1, h, w]` tensor.
    ///
    /// # Errors
    ///
    /// Returns an error on empty/out-of-range indices.
    pub fn frames_tensor_of(&self, indices: &[usize]) -> Result<Tensor> {
        if indices.is_empty() {
            return Err(CoreError::Dataset("empty frame batch".into()));
        }
        let hw = self.frame_size * self.frame_size;
        let mut data = Vec::with_capacity(indices.len() * hw);
        for &i in indices {
            let s = self
                .samples
                .get(i)
                .ok_or_else(|| CoreError::Dataset(format!("index {i} out of range")))?;
            data.extend_from_slice(s.frame.pixels());
        }
        Ok(Tensor::from_vec(
            data,
            &[indices.len(), 1, self.frame_size, self.frame_size],
        )?)
    }

    /// 6-class labels (all samples).
    pub fn labels6(&self) -> Vec<usize> {
        self.samples.iter().map(|s| s.behavior.index()).collect()
    }

    /// 3-class IMU labels (all samples).
    pub fn labels3(&self) -> Vec<usize> {
        self.samples.iter().map(|s| s.imu_class().index()).collect()
    }

    /// IMU windows as a `[n, WINDOW_LEN, IMU_FEATURES]` tensor.
    ///
    /// # Errors
    ///
    /// Returns an error if the dataset is empty.
    pub fn imu_tensor(&self) -> Result<Tensor> {
        if self.is_empty() {
            return Err(CoreError::Dataset("empty imu batch".into()));
        }
        let mut data = Vec::with_capacity(self.len() * WINDOW_LEN * IMU_FEATURES);
        for s in &self.samples {
            data.extend_from_slice(&s.imu_window);
        }
        Ok(Tensor::from_vec(
            data,
            &[self.len(), WINDOW_LEN, IMU_FEATURES],
        )?)
    }
}

/// Per-feature standardization (zero mean, unit variance), fitted on the
/// training split and applied everywhere — essential for LSTM convergence
/// when raw accelerometer channels sit near ±9.8.
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl Standardizer {
    /// Fits per-feature statistics over the last axis of a `[n, t, f]` or
    /// `[n, f]` tensor.
    ///
    /// # Errors
    ///
    /// Returns an error for empty input.
    pub fn fit(data: &Tensor) -> Result<Standardizer> {
        let f = *data
            .dims()
            .last()
            .ok_or_else(|| CoreError::Dataset("cannot standardize a scalar".into()))?;
        if data.is_empty() || f == 0 {
            return Err(CoreError::Dataset("cannot standardize empty data".into()));
        }
        let rows = data.len() / f;
        let mut mean = vec![0.0f32; f];
        for r in 0..rows {
            for (m, &v) in mean.iter_mut().zip(&data.data()[r * f..(r + 1) * f]) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= rows as f32;
        }
        let mut var = vec![0.0f32; f];
        for r in 0..rows {
            for ((s, &v), &m) in var
                .iter_mut()
                .zip(&data.data()[r * f..(r + 1) * f])
                .zip(&mean)
            {
                *s += (v - m) * (v - m);
            }
        }
        let std = var
            .into_iter()
            .map(|v| (v / rows as f32).sqrt().max(1e-6))
            .collect();
        Ok(Standardizer { mean, std })
    }

    /// The `(mean, std)` rows as rank-1 tensors (for serialization).
    pub fn to_tensors(&self) -> (Tensor, Tensor) {
        (
            Tensor::from_slice(&self.mean),
            Tensor::from_slice(&self.std),
        )
    }

    /// Rebuilds a standardizer from `(mean, std)` rows.
    ///
    /// # Errors
    ///
    /// Returns an error if the rows have different lengths or are empty.
    pub fn from_tensors(mean: &Tensor, std: &Tensor) -> Result<Standardizer> {
        if mean.len() != std.len() || mean.is_empty() {
            return Err(CoreError::Dataset(format!(
                "standardizer rows mismatched: {} vs {}",
                mean.len(),
                std.len()
            )));
        }
        Ok(Standardizer {
            mean: mean.data().to_vec(),
            std: std.data().iter().map(|v| v.max(1e-6)).collect(),
        })
    }

    /// Applies the transform, returning a new tensor of the same shape.
    pub fn apply(&self, data: &Tensor) -> Tensor {
        let mut out = data.clone();
        self.apply_inplace(&mut out);
        out
    }

    /// Applies the transform in place — the workspace inference path
    /// copies the input into a checked-out buffer and standardizes it
    /// there. Bitwise-identical to [`Standardizer::apply`], which
    /// delegates here.
    // darlint: hot
    pub fn apply_inplace(&self, data: &mut Tensor) {
        let f = self.mean.len();
        let rows = data.len() / f;
        for r in 0..rows {
            for ((v, &m), &s) in data.data_mut()[r * f..(r + 1) * f]
                .iter_mut()
                .zip(&self.mean)
                .zip(&self.std)
            {
                *v = (*v - m) / s;
            }
        }
    }
}

/// A labeled frame-only dataset over the 18-class extended taxonomy — the
/// "previously collected distracted driver dataset" of the paper's privacy
/// study (§5.3), which has no IMU component.
#[derive(Debug, Clone, Default)]
pub struct ExtendedFrameDataset {
    frames: Vec<Frame>,
    labels: Vec<usize>,
    drivers: Vec<usize>,
    frame_size: usize,
}

impl ExtendedFrameDataset {
    /// Samples the dataset directly from the world at `fps` over an
    /// extended-behaviour schedule (this dataset predates the collection
    /// framework in the paper, so frames are taken straight from the
    /// camera).
    pub fn generate(
        world: &DrivingWorld,
        segments: &[Segment<ExtendedBehavior>],
        fps: f64,
    ) -> Self {
        let mut frames = Vec::new();
        let mut labels = Vec::new();
        let mut drivers = Vec::new();
        let mut frame_size = 0usize;
        let dt = 1.0 / fps;
        for seg in segments {
            let n = (seg.duration * fps).floor() as usize;
            for k in 0..n {
                let t = seg.start + k as f64 * dt;
                let frame = world.render_extended_frame(seg.driver, seg.behavior, t);
                frame_size = frame.width();
                frames.push(frame);
                labels.push(seg.behavior.index());
                drivers.push(seg.driver);
            }
        }
        ExtendedFrameDataset {
            frames,
            labels,
            drivers,
            frame_size,
        }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Square frame edge length.
    pub fn frame_size(&self) -> usize {
        self.frame_size
    }

    /// The frames.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// The labels (0..18).
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Driver ids per frame.
    pub fn drivers(&self) -> &[usize] {
        &self.drivers
    }

    /// Returns a copy with a fraction of labels flipped to random other
    /// classes — modelling the labelling noise of a hand-annotated video
    /// dataset (frames near scripted-segment boundaries are easily
    /// mis-tagged). The paper's §5.3 explains the dCNN results through the
    /// teacher "display\[ing\] effects of overfitting accrued during
    /// training"; memorized label noise is exactly such an effect, and the
    /// distilled students never see the labels.
    pub fn with_label_noise(&self, fraction: f64, seed: u64) -> ExtendedFrameDataset {
        let mut out = self.clone();
        let classes = ExtendedBehavior::ALL.len();
        let mut rng = SplitMix64::new(seed);
        for l in &mut out.labels {
            if (rng.next_f64()) < fraction {
                let flip = rng.next_usize(classes - 1);
                *l = if flip >= *l { flip + 1 } else { flip };
            }
        }
        out
    }

    /// Driver-disjoint split: drivers with `id % holdout_mod == holdout_rem`
    /// go to evaluation, everyone else to training. The paper's privacy
    /// study evaluates generalization across its 10 participants; holding
    /// out whole drivers exposes the teacher's identity overfitting that
    /// §5.3 hypothesizes (and that down-sampling removes).
    pub fn split_by_driver(
        &self,
        holdout_mod: usize,
        holdout_rem: usize,
    ) -> (ExtendedFrameDataset, ExtendedFrameDataset) {
        let take = |want_eval: bool| {
            let ids: Vec<usize> = (0..self.len())
                .filter(|&i| (self.drivers[i] % holdout_mod == holdout_rem) == want_eval)
                .collect();
            ExtendedFrameDataset {
                frames: ids.iter().map(|&i| self.frames[i].clone()).collect(),
                labels: ids.iter().map(|&i| self.labels[i]).collect(),
                drivers: ids.iter().map(|&i| self.drivers[i]).collect(),
                frame_size: self.frame_size,
            }
        };
        (take(false), take(true))
    }

    /// Shuffled split into `(train, eval)`.
    ///
    /// # Panics
    ///
    /// Panics if `train_frac` is not within `(0, 1)`.
    pub fn split(
        &self,
        train_frac: f64,
        seed: u64,
    ) -> (ExtendedFrameDataset, ExtendedFrameDataset) {
        assert!(train_frac > 0.0 && train_frac < 1.0);
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut rng = SplitMix64::new(seed);
        rng.shuffle(&mut idx);
        let n_train = ((self.len() as f64) * train_frac).round() as usize;
        let take = |ids: &[usize]| ExtendedFrameDataset {
            frames: ids.iter().map(|&i| self.frames[i].clone()).collect(),
            labels: ids.iter().map(|&i| self.labels[i]).collect(),
            drivers: ids.iter().map(|&i| self.drivers[i]).collect(),
            frame_size: self.frame_size,
        };
        (take(&idx[..n_train]), take(&idx[n_train..]))
    }

    /// Frames at `indices` as a `[n, 1, h, w]` tensor.
    ///
    /// # Errors
    ///
    /// Returns an error on empty/out-of-range indices.
    pub fn frames_tensor_of(&self, indices: &[usize]) -> Result<Tensor> {
        if indices.is_empty() {
            return Err(CoreError::Dataset("empty frame batch".into()));
        }
        let hw = self.frame_size * self.frame_size;
        let mut data = Vec::with_capacity(indices.len() * hw);
        for &i in indices {
            let f = self
                .frames
                .get(i)
                .ok_or_else(|| CoreError::Dataset(format!("index {i} out of range")))?;
            data.extend_from_slice(f.pixels());
        }
        Ok(Tensor::from_vec(
            data,
            &[indices.len(), 1, self.frame_size, self.frame_size],
        )?)
    }
}

/// Converts a batch of frames (all the same square size) into a
/// `[n, 1, h, w]` tensor.
///
/// # Errors
///
/// Returns an error for an empty batch or inconsistent sizes.
pub fn frames_to_tensor(frames: &[Frame]) -> Result<Tensor> {
    let first = frames
        .first()
        .ok_or_else(|| CoreError::Dataset("empty frame batch".into()))?;
    let (w, h) = (first.width(), first.height());
    let mut data = Vec::with_capacity(frames.len() * w * h);
    for f in frames {
        if f.width() != w || f.height() != h {
            return Err(CoreError::Dataset("inconsistent frame sizes".into()));
        }
        data.extend_from_slice(f.pixels());
    }
    Ok(Tensor::from_vec(data, &[frames.len(), 1, h, w])?)
}

/// [`frames_to_tensor`] writing into a caller-provided `[n, 1, h, w]`
/// tensor (typically a workspace checkout) instead of allocating one.
/// Bitwise-identical values to the allocating variant.
///
/// # Errors
///
/// Returns an error for an empty batch, inconsistent frame sizes, or an
/// `out` tensor whose shape does not match the batch.
// darlint: hot
pub fn frames_to_tensor_into(frames: &[Frame], out: &mut Tensor) -> Result<()> {
    let first = frames
        .first()
        .ok_or_else(|| CoreError::Dataset("empty frame batch".into()))?;
    let (w, h) = (first.width(), first.height());
    if out.dims() != [frames.len(), 1, h, w] {
        return Err(CoreError::Dataset(format!(
            "frame batch is [{}, 1, {h}, {w}] but output tensor is {:?}",
            frames.len(),
            out.dims()
        )));
    }
    let od = out.data_mut();
    let hw = h * w;
    for (i, f) in frames.iter().enumerate() {
        if f.width() != w || f.height() != h {
            return Err(CoreError::Dataset("inconsistent frame sizes".into()));
        }
        od[i * hw..(i + 1) * hw].copy_from_slice(f.pixels());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use darnet_collect::runtime::{run_campaign, CampaignConfig};
    use darnet_sim::WorldConfig;
    use std::sync::Arc;

    fn tiny_campaign() -> (Vec<DriverRecording>, Vec<Segment<Behavior>>) {
        let world = Arc::new(DrivingWorld::new(WorldConfig::default()));
        let segments = vec![
            Segment {
                driver: 0,
                behavior: Behavior::NormalDriving,
                start: 0.0,
                duration: 6.0,
            },
            Segment {
                driver: 0,
                behavior: Behavior::Texting,
                start: 6.0,
                duration: 6.0,
            },
            Segment {
                driver: 0,
                behavior: Behavior::Talking,
                start: 12.0,
                duration: 6.0,
            },
        ];
        let recs = run_campaign(&world, &segments, &CampaignConfig::default()).unwrap();
        (recs, segments)
    }

    #[test]
    fn canonical_dataset_joins_three_streams() {
        use darnet_collect::runtime::run_canonical_campaign;

        let world = Arc::new(DrivingWorld::new(WorldConfig {
            drivers: 1,
            frame_size: 24,
            ..WorldConfig::default()
        }));
        let segments = vec![
            Segment {
                driver: 0,
                behavior: CanonicalBehavior::NormalDriving,
                start: 0.0,
                duration: 5.0,
            },
            Segment {
                driver: 0,
                behavior: CanonicalBehavior::EyesClosing,
                start: 5.0,
                duration: 5.0,
            },
            Segment {
                driver: 0,
                behavior: CanonicalBehavior::HeadDroop,
                start: 10.0,
                duration: 5.0,
            },
        ];
        let streams = [StreamId::IMU, StreamId::CAMERA_FRONT, StreamId::CAMERA_SIDE];
        let recs =
            run_canonical_campaign(&world, &segments, &CampaignConfig::default(), &streams, &[])
                .unwrap();
        let ds = CanonicalDataset::from_recordings(&recs, &segments, 0.5).unwrap();
        assert!(!ds.is_empty());
        assert_eq!(ds.frame_size(), 24);
        for s in ds.samples() {
            assert_eq!(s.imu_window.len(), WINDOW_LEN * IMU_FEATURES);
            assert_eq!(s.front.width(), 24);
            assert_eq!(s.side.width(), 24);
            // The adopted side frame differs from the front view at the
            // same instant (different camera geometry).
            assert_ne!(s.front.pixels(), s.side.pixels());
        }
        // The drowsy classes are labeled.
        let counts = ds.class_counts();
        assert!(counts[CanonicalBehavior::EyesClosing.index()] > 0);
        assert!(counts[CanonicalBehavior::HeadDroop.index()] > 0);
        assert_eq!(ds.labels8().len(), ds.len());
        let front = ds.front_tensor().unwrap();
        let side = ds.side_tensor().unwrap();
        assert_eq!(front.dims(), &[ds.len(), 1, 24, 24]);
        assert_eq!(side.dims(), front.dims());
        let (train, eval) = ds.split(0.8, 3);
        assert_eq!(train.len() + eval.len(), ds.len());
        // A zero tolerance drops every tuple (clocks never line up
        // perfectly across devices).
        let strict = CanonicalDataset::from_recordings(&recs, &segments, 0.0).unwrap();
        assert!(strict.len() <= ds.len());
    }

    #[test]
    fn canonical_label_lookup_matches_schedule() {
        let segments = vec![
            Segment {
                driver: 0,
                behavior: CanonicalBehavior::Texting,
                start: 0.0,
                duration: 2.0,
            },
            Segment {
                driver: 0,
                behavior: CanonicalBehavior::EyesClosing,
                start: 4.0,
                duration: 3.0,
            },
        ];
        assert_eq!(
            canonical_label_at(&segments, 1.0),
            CanonicalBehavior::Texting
        );
        // The gap between segments is normal driving (same semantics as
        // the 6-class `label_at`).
        assert_eq!(
            canonical_label_at(&segments, 3.0),
            CanonicalBehavior::NormalDriving
        );
        assert_eq!(
            canonical_label_at(&segments, 5.0),
            CanonicalBehavior::EyesClosing
        );
        assert_eq!(
            canonical_label_at(&segments, 9.0),
            CanonicalBehavior::NormalDriving
        );
    }

    #[test]
    fn label_lookup_matches_schedule() {
        let (_, segments) = tiny_campaign();
        assert_eq!(label_at(&segments, 1.0), Behavior::NormalDriving);
        assert_eq!(label_at(&segments, 7.0), Behavior::Texting);
        assert_eq!(label_at(&segments, 13.0), Behavior::Talking);
        assert_eq!(label_at(&segments, 99.0), Behavior::NormalDriving);
    }

    #[test]
    fn dataset_builds_with_windows() {
        let (recs, segments) = tiny_campaign();
        let ds = MultimodalDataset::from_recordings(&recs, &segments).unwrap();
        assert!(ds.len() > 40, "only {} samples", ds.len());
        assert_eq!(ds.frame_size(), 48);
        for s in ds.samples() {
            assert_eq!(s.imu_window.len(), WINDOW_LEN * IMU_FEATURES);
        }
        // All three scripted classes appear.
        let counts = ds.class_counts();
        assert!(counts[0] > 0 && counts[1] > 0 && counts[2] > 0);
    }

    #[test]
    fn split_preserves_total_and_is_disjoint_in_size() {
        let (recs, segments) = tiny_campaign();
        let ds = MultimodalDataset::from_recordings(&recs, &segments).unwrap();
        let (train, eval) = ds.split(0.8, 1);
        assert_eq!(train.len() + eval.len(), ds.len());
        let expected_train = ((ds.len() as f64) * 0.8).round() as usize;
        assert_eq!(train.len(), expected_train);
    }

    #[test]
    fn tensors_have_expected_shapes() {
        let (recs, segments) = tiny_campaign();
        let ds = MultimodalDataset::from_recordings(&recs, &segments).unwrap();
        let frames = ds.frames_tensor().unwrap();
        assert_eq!(frames.dims(), &[ds.len(), 1, 48, 48]);
        let imu = ds.imu_tensor().unwrap();
        assert_eq!(imu.dims(), &[ds.len(), WINDOW_LEN, IMU_FEATURES]);
        assert_eq!(ds.labels6().len(), ds.len());
        assert_eq!(ds.labels3().len(), ds.len());
    }

    #[test]
    fn standardizer_normalizes_features() {
        let data = Tensor::from_vec(
            vec![
                10.0, 100.0, //
                12.0, 200.0, //
                8.0, 300.0, //
                10.0, 400.0,
            ],
            &[4, 2],
        )
        .unwrap();
        let std = Standardizer::fit(&data).unwrap();
        let out = std.apply(&data);
        // Column means ~0.
        let m0 = (0..4).map(|r| out.data()[r * 2]).sum::<f32>() / 4.0;
        let m1 = (0..4).map(|r| out.data()[r * 2 + 1]).sum::<f32>() / 4.0;
        assert!(m0.abs() < 1e-5 && m1.abs() < 1e-5);
        // Column stds ~1.
        let s1 = ((0..4).map(|r| out.data()[r * 2 + 1].powi(2)).sum::<f32>() / 4.0).sqrt();
        assert!((s1 - 1.0).abs() < 1e-4);
    }

    #[test]
    fn standardizer_handles_constant_features() {
        let data = Tensor::from_vec(vec![5.0, 5.0, 5.0, 5.0], &[4, 1]).unwrap();
        let std = Standardizer::fit(&data).unwrap();
        let out = std.apply(&data);
        assert!(out.all_finite());
    }

    #[test]
    fn extended_dataset_generates_balanced_classes() {
        let world = DrivingWorld::new(WorldConfig {
            drivers: 2,
            ..WorldConfig::default()
        });
        let config = darnet_sim::schedule::ExtendedScheduleConfig {
            drivers: 2,
            seconds_per_class: 2.0,
            segment_seconds: 15.0,
        };
        let segments = darnet_sim::schedule::build_extended_schedule(&config);
        let ds = ExtendedFrameDataset::generate(&world, &segments, 4.0);
        assert_eq!(ds.len(), 2 * 18 * 8); // 2 drivers × 18 classes × 2 s × 4 fps
        let mut counts = [0usize; 18];
        for &l in ds.labels() {
            counts[l] += 1;
        }
        assert!(counts.iter().all(|&c| c == 16));
    }

    #[test]
    fn frames_to_tensor_validates() {
        assert!(frames_to_tensor(&[]).is_err());
        let frames = vec![Frame::new(4, 4), Frame::new(5, 5)];
        assert!(frames_to_tensor(&frames).is_err());
        let ok = vec![Frame::new(4, 4); 3];
        assert_eq!(frames_to_tensor(&ok).unwrap().dims(), &[3, 1, 4, 4]);
    }
}
