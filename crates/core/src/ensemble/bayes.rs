//! The Bayesian-network combiner (paper §4.2): each class gets its own BN
//! with two parent nodes — the CNN's prediction and the IMU model's
//! prediction — and a child node indicating class membership. The
//! conditional probability tables are computed from observation counts on
//! training data.

use serde::{Deserialize, Serialize};

use darnet_tensor::Tensor;

use crate::error::CoreError;
use crate::Result;

/// The per-class Bayesian-network ensemble.
///
/// For class `c` the CPT stores `P(Y = c | A = a, B = b)` where `A` is the
/// CNN's predicted 6-class label and `B` the IMU model's predicted 3-class
/// label. Inference marginalizes over the parents using the two models'
/// full probability outputs:
///
/// `score(c) = Σ_a Σ_b  p_cnn(a) · p_imu(b) · CPT_c[a][b]`
///
/// Laplace smoothing keeps unseen parent combinations usable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BayesianCombiner {
    classes: usize,
    imu_classes: usize,
    /// `cpt[c][a][b]`, flattened.
    cpt: Vec<f32>,
    alpha: f32,
    fitted: bool,
}

impl BayesianCombiner {
    /// Creates an unfitted combiner for `classes` behaviour classes and
    /// `imu_classes` IMU classes, with Laplace smoothing `alpha`.
    pub fn new(classes: usize, imu_classes: usize, alpha: f32) -> Self {
        BayesianCombiner {
            classes,
            imu_classes,
            cpt: vec![0.0; classes * classes * imu_classes],
            alpha,
            fitted: false,
        }
    }

    /// Default configuration for DarNet (6 behaviour classes, 3 IMU
    /// classes).
    pub fn darnet() -> Self {
        BayesianCombiner::new(6, 3, 1.0)
    }

    fn idx(&self, c: usize, a: usize, b: usize) -> usize {
        (c * self.classes + a) * self.imu_classes + b
    }

    /// Whether [`BayesianCombiner::fit`] has run.
    pub fn is_fitted(&self) -> bool {
        self.fitted
    }

    /// The CPT entry `P(Y=c | A=a, B=b)`.
    pub fn cpt(&self, c: usize, a: usize, b: usize) -> f32 {
        self.cpt[self.idx(c, a, b)]
    }

    /// Estimates the CPTs from training observations: the two models'
    /// probability outputs (`[n, classes]` and `[n, imu_classes]`) and the
    /// true labels. Counting uses each model's argmax (the "number of
    /// true-positive observations" of the paper).
    ///
    /// # Errors
    ///
    /// Returns an error on shape/label mismatches.
    pub fn fit(&mut self, cnn_probs: &Tensor, imu_probs: &Tensor, labels: &[usize]) -> Result<()> {
        let n = labels.len();
        if cnn_probs.dims() != [n, self.classes] || imu_probs.dims() != [n, self.imu_classes] {
            return Err(CoreError::Dataset(format!(
                "combiner fit shape mismatch: cnn {:?}, imu {:?}, {n} labels",
                cnn_probs.dims(),
                imu_probs.dims()
            )));
        }
        let a_pred = cnn_probs.argmax_rows()?;
        let b_pred = imu_probs.argmax_rows()?;
        // counts[c][a][b]
        let mut counts = vec![0.0f32; self.cpt.len()];
        for i in 0..n {
            let label = labels[i];
            if label >= self.classes {
                return Err(CoreError::Dataset(format!(
                    "label {label} out of range for {} classes",
                    self.classes
                )));
            }
            counts[self.idx(label, a_pred[i], b_pred[i])] += 1.0;
        }
        // Normalize over c for each (a, b) with Laplace smoothing.
        for a in 0..self.classes {
            for b in 0..self.imu_classes {
                let total: f32 = (0..self.classes).map(|c| counts[self.idx(c, a, b)]).sum();
                let denom = total + self.alpha * self.classes as f32;
                for c in 0..self.classes {
                    let i = self.idx(c, a, b);
                    self.cpt[i] = (counts[i] + self.alpha) / denom;
                }
            }
        }
        self.fitted = true;
        Ok(())
    }

    /// Combines one sample's probability rows into class scores
    /// (normalized to a distribution).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotReady`] before fitting or on width
    /// mismatches.
    pub fn combine(&self, cnn_probs: &[f32], imu_probs: &[f32]) -> Result<Vec<f32>> {
        let mut scores = Vec::with_capacity(self.classes);
        self.combine_into(cnn_probs, imu_probs, &mut scores)?;
        Ok(scores)
    }

    /// [`BayesianCombiner::combine`] writing into a caller-provided
    /// buffer (cleared first), so the steady-state fusion loop allocates
    /// nothing once the buffer has capacity. Bitwise-identical to
    /// [`BayesianCombiner::combine`], which delegates here.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotReady`] before fitting or on width
    /// mismatches.
    // darlint: hot
    pub fn combine_into(
        &self,
        cnn_probs: &[f32],
        imu_probs: &[f32],
        scores: &mut Vec<f32>,
    ) -> Result<()> {
        if !self.fitted {
            return Err(CoreError::NotReady("bayesian combiner not fitted".into()));
        }
        if cnn_probs.len() != self.classes || imu_probs.len() != self.imu_classes {
            return Err(CoreError::Dataset(format!(
                "combiner expects {}/{} probabilities, got {}/{}",
                self.classes,
                self.imu_classes,
                cnn_probs.len(),
                imu_probs.len()
            )));
        }
        scores.clear();
        scores.resize(self.classes, 0.0);
        for (a, &pa) in cnn_probs.iter().enumerate().take(self.classes) {
            if pa == 0.0 {
                continue;
            }
            for (b, &pb) in imu_probs.iter().enumerate().take(self.imu_classes) {
                let w = pa * pb;
                if w == 0.0 {
                    continue;
                }
                for (c, s) in scores.iter_mut().enumerate() {
                    *s += w * self.cpt(c, a, b);
                }
            }
        }
        let total: f32 = scores.iter().sum();
        if total > 0.0 {
            for s in scores.iter_mut() {
                *s /= total;
            }
        }
        Ok(())
    }

    /// Converts to the N-parent generalization with parents
    /// `[cnn, imu]`. The flattened CPT layouts coincide, so the
    /// conversion is a plain copy and
    /// [`NaryBayesianCombiner::combine_n_into`][crate::ensemble::NaryBayesianCombiner::combine_n_into]
    /// over both parents is bitwise-identical to
    /// [`BayesianCombiner::combine_into`].
    pub fn to_nary(&self) -> super::NaryBayesianCombiner {
        super::NaryBayesianCombiner::from_parts(
            self.classes,
            vec![self.classes, self.imu_classes],
            self.cpt.clone(),
            self.alpha,
            self.fitted,
        )
    }

    /// Batch combination: `[n, classes]` scores from `[n, classes]` and
    /// `[n, imu_classes]` probability matrices.
    ///
    /// # Errors
    ///
    /// Propagates per-row errors.
    pub fn combine_batch(&self, cnn_probs: &Tensor, imu_probs: &Tensor) -> Result<Tensor> {
        let n = cnn_probs.dims()[0];
        let mut rows = Vec::with_capacity(n * self.classes);
        for i in 0..n {
            let c_row = &cnn_probs.data()[i * self.classes..(i + 1) * self.classes];
            let b_row = &imu_probs.data()[i * self.imu_classes..(i + 1) * self.imu_classes];
            rows.extend(self.combine(c_row, b_row)?);
        }
        Ok(Tensor::from_vec(rows, &[n, self.classes])?)
    }

    /// Batch hard predictions.
    ///
    /// # Errors
    ///
    /// Propagates per-row errors.
    pub fn predict_batch(&self, cnn_probs: &Tensor, imu_probs: &Tensor) -> Result<Vec<usize>> {
        Ok(self.combine_batch(cnn_probs, imu_probs)?.argmax_rows()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy world where the CNN confuses classes 0/1 but the IMU resolves
    /// them perfectly (class 0 → imu 0, class 1 → imu 1).
    fn toy_fit() -> BayesianCombiner {
        let n = 200;
        let mut cnn = Vec::new();
        let mut imu = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let label = i % 2;
            labels.push(label);
            // CNN: barely informative (52/48).
            if label == 0 {
                cnn.extend_from_slice(&[0.52, 0.48]);
            } else {
                cnn.extend_from_slice(&[0.48, 0.52]);
            }
            // IMU: highly informative.
            if label == 0 {
                imu.extend_from_slice(&[0.95, 0.05]);
            } else {
                imu.extend_from_slice(&[0.05, 0.95]);
            }
        }
        let cnn_t = Tensor::from_vec(cnn, &[n, 2]).unwrap();
        let imu_t = Tensor::from_vec(imu, &[n, 2]).unwrap();
        let mut comb = BayesianCombiner::new(2, 2, 1.0);
        comb.fit(&cnn_t, &imu_t, &labels).unwrap();
        comb
    }

    #[test]
    fn unfitted_combiner_errors() {
        let comb = BayesianCombiner::darnet();
        assert!(matches!(
            comb.combine(&[0.2; 6], &[0.34, 0.33, 0.33]),
            Err(CoreError::NotReady(_))
        ));
    }

    #[test]
    fn cpt_columns_are_distributions() {
        let comb = toy_fit();
        for a in 0..2 {
            for b in 0..2 {
                let total: f32 = (0..2).map(|c| comb.cpt(c, a, b)).sum();
                assert!((total - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn combiner_trusts_the_informative_modality() {
        let comb = toy_fit();
        // CNN says class 0 weakly; IMU says class 1 strongly.
        let scores = comb.combine(&[0.52, 0.48], &[0.05, 0.95]).unwrap();
        assert!(scores[1] > scores[0], "{scores:?}");
        assert!((scores.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn combined_accuracy_beats_weak_modality_alone() {
        // Generative model: the CNN is right 70% of the time, the IMU 95%.
        // The fused posterior should track the more reliable parent and
        // beat the CNN alone — the structural claim behind the paper's
        // Table 2.
        let gen = |i: usize| -> (usize, [f32; 2], [f32; 2]) {
            let label = i % 2;
            let cnn_right = i % 10 < 7;
            let imu_right = !i.is_multiple_of(20);
            let toward = |right: bool, conf: f32| -> [f32; 2] {
                let target = if right { label } else { 1 - label };
                if target == 0 {
                    [conf, 1.0 - conf]
                } else {
                    [1.0 - conf, conf]
                }
            };
            (label, toward(cnn_right, 0.7), toward(imu_right, 0.95))
        };
        // Fit on 400 generated observations.
        let n_fit = 400;
        let mut cnn_rows = Vec::new();
        let mut imu_rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_fit {
            let (l, c, m) = gen(i);
            labels.push(l);
            cnn_rows.extend_from_slice(&c);
            imu_rows.extend_from_slice(&m);
        }
        let mut comb = BayesianCombiner::new(2, 2, 1.0);
        comb.fit(
            &Tensor::from_vec(cnn_rows, &[n_fit, 2]).unwrap(),
            &Tensor::from_vec(imu_rows, &[n_fit, 2]).unwrap(),
            &labels,
        )
        .unwrap();
        // Evaluate on a phase-shifted sample of the same distribution.
        let mut correct_comb = 0;
        let mut correct_cnn = 0;
        let n = 200;
        for k in 0..n {
            let (label, cnn, imu) = gen(k + 3);
            let scores = comb.combine(&cnn, &imu).unwrap();
            let pred = if scores[0] >= scores[1] { 0 } else { 1 };
            if pred == label {
                correct_comb += 1;
            }
            let cnn_pred = if cnn[0] >= cnn[1] { 0 } else { 1 };
            if cnn_pred == label {
                correct_cnn += 1;
            }
        }
        assert!(
            correct_comb > correct_cnn,
            "combined {correct_comb} vs cnn {correct_cnn}"
        );
        assert!(correct_comb as f32 / n as f32 > 0.85);
    }

    #[test]
    fn batch_and_single_agree() {
        let comb = toy_fit();
        let cnn = Tensor::from_vec(vec![0.5, 0.5, 0.9, 0.1], &[2, 2]).unwrap();
        let imu = Tensor::from_vec(vec![0.2, 0.8, 0.7, 0.3], &[2, 2]).unwrap();
        let batch = comb.combine_batch(&cnn, &imu).unwrap();
        let single0 = comb.combine(&[0.5, 0.5], &[0.2, 0.8]).unwrap();
        for (a, b) in batch.data()[..2].iter().zip(&single0) {
            assert!((a - b).abs() < 1e-6);
        }
        let preds = comb.predict_batch(&cnn, &imu).unwrap();
        assert_eq!(preds.len(), 2);
    }

    #[test]
    fn fit_validates_shapes_and_labels() {
        let mut comb = BayesianCombiner::new(2, 2, 1.0);
        let cnn = Tensor::zeros(&[3, 2]);
        let imu = Tensor::zeros(&[3, 2]);
        assert!(comb.fit(&cnn, &imu, &[0, 1]).is_err());
        assert!(comb.fit(&cnn, &imu, &[0, 1, 5]).is_err());
    }

    #[test]
    fn smoothing_keeps_unseen_combinations_finite() {
        let comb = toy_fit();
        // Parent combination (a=1, b=0) may be rare; CPT must still be a
        // valid distribution (Laplace smoothing).
        let scores = comb.combine(&[0.0, 1.0], &[1.0, 0.0]).unwrap();
        assert!(scores.iter().all(|v| v.is_finite() && *v >= 0.0));
        assert!((scores.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }
}
