//! Ensemble learning: combining the CNN's 6-class output with the IMU
//! model's 3-class output into a single inference (paper §4.2 "Ensemble
//! Learning").

mod bayes;
mod nary;

pub use bayes::BayesianCombiner;
pub use nary::NaryBayesianCombiner;

use darnet_sim::Behavior;

use crate::error::CoreError;
use crate::Result;

/// The combiner strategies implemented for the ablation study (DESIGN.md
/// §6.1). The paper's contribution is the Bayesian-network combiner; the
/// product rule and IMU-gated voting are natural simpler baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CombinerKind {
    /// Per-class Bayesian network with CPTs from training counts (the
    /// paper's approach).
    Bayesian,
    /// Independence product: `P(c) ∝ cnn[c] · imu[imu_class(c)]`.
    Product,
    /// CNN only (no fusion) — the paper's single-modality baseline.
    CnnOnly,
}

/// Maps a 6-class behaviour index to its 3-class IMU index.
pub(crate) fn imu_index_of(behavior_index: usize) -> usize {
    Behavior::from_index(behavior_index)
        .map(|b| b.imu_class().index())
        .unwrap_or(0)
}

/// Combines per-sample probability rows with the product rule.
///
/// # Errors
///
/// Returns an error on width mismatch.
pub fn product_combine(cnn_probs: &[f32], imu_probs: &[f32]) -> Result<Vec<f32>> {
    let mut scores = Vec::with_capacity(6);
    product_combine_into(cnn_probs, imu_probs, &mut scores)?;
    Ok(scores)
}

/// [`product_combine`] writing into a caller-provided buffer (cleared
/// first); bitwise-identical — the allocating variant delegates here.
///
/// # Errors
///
/// Returns an error on width mismatch.
// darlint: hot
pub fn product_combine_into(
    cnn_probs: &[f32],
    imu_probs: &[f32],
    scores: &mut Vec<f32>,
) -> Result<()> {
    if cnn_probs.len() != 6 || imu_probs.len() != 3 {
        return Err(CoreError::Dataset(format!(
            "product combiner expects 6/3 probabilities, got {}/{}",
            cnn_probs.len(),
            imu_probs.len()
        )));
    }
    scores.clear();
    for c in 0..6 {
        scores.push(cnn_probs[c] * imu_probs[imu_index_of(c)].max(1e-6));
    }
    let total: f32 = scores.iter().sum();
    if total > 0.0 {
        for s in scores.iter_mut() {
            *s /= total;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imu_index_mapping_matches_taxonomy() {
        assert_eq!(imu_index_of(0), 0); // normal
        assert_eq!(imu_index_of(1), 1); // talking
        assert_eq!(imu_index_of(2), 2); // texting
        assert_eq!(imu_index_of(3), 0); // eating → pocket
        assert_eq!(imu_index_of(4), 0);
        assert_eq!(imu_index_of(5), 0);
    }

    #[test]
    fn product_combine_normalizes() {
        let cnn = [0.4, 0.3, 0.3, 0.0, 0.0, 0.0];
        let imu = [0.1, 0.8, 0.1];
        let out = product_combine(&cnn, &imu).unwrap();
        assert!((out.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        // Talking is boosted by the IMU.
        assert!(out[1] > out[0] && out[1] > out[2]);
    }

    #[test]
    fn product_combine_validates_widths() {
        assert!(product_combine(&[0.5; 5], &[0.3; 3]).is_err());
        assert!(product_combine(&[0.5; 6], &[0.3; 2]).is_err());
    }

    #[test]
    fn imu_cannot_fully_veto_unseen_classes() {
        // Even with imu[0] == 0, pocket classes keep an epsilon so the CNN
        // can still win if it is very confident.
        let cnn = [0.9, 0.05, 0.05, 0.0, 0.0, 0.0];
        let imu = [0.0, 0.5, 0.5];
        let out = product_combine(&cnn, &imu).unwrap();
        assert!(out[0] > 0.0);
    }
}
