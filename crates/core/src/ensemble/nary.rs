//! N-parent generalization of the Bayesian-network combiner: the same
//! per-class CPT marginalization as [`super::BayesianCombiner`], but over
//! an arbitrary ordered list of parent streams instead of a hard-coded
//! CNN/IMU pair.
//!
//! The flattened CPT layout folds the parent indices lexicographically —
//! `idx = ((c · card₀ + a₀) · card₁ + a₁) …` — which for two parents is
//! exactly the legacy `(c · classes + a) · imu_classes + b` layout, so a
//! legacy combiner converts by copying its table
//! ([`super::BayesianCombiner::to_nary`]) and the 2-parent inference loop
//! here reproduces the legacy loop bitwise: same visit order, same
//! zero-weight skips, same accumulation order, same normalization.

use serde::{Deserialize, Serialize};

use darnet_tensor::Tensor;

use crate::error::CoreError;
use crate::Result;

/// The N-parent per-class Bayesian-network ensemble.
///
/// For class `c` the CPT stores `P(Y = c | A₀ = a₀, …, Aₖ = aₖ)` over the
/// registered parents' predicted labels. Inference marginalizes over every
/// parent using its full probability output:
///
/// `score(c) = Σ_{a₀} … Σ_{aₖ}  Π p_k(a_k) · CPT_c[a₀]…[aₖ]`
///
/// A parent missing at inference time (an unavailable stream) is summed
/// out with a uniform posterior over its classes, so any healthy subset of
/// two or more parents still yields a calibrated fusion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NaryBayesianCombiner {
    classes: usize,
    parent_cards: Vec<usize>,
    /// Per-parent tempering exponent applied to that parent's posterior
    /// before marginalization; `1.0` is neutral (and bitwise-invisible).
    parent_weights: Vec<f32>,
    /// `cpt[c][a₀]…[aₖ]`, flattened lexicographically.
    cpt: Vec<f32>,
    alpha: f32,
    fitted: bool,
}

impl NaryBayesianCombiner {
    /// Creates an unfitted combiner for `classes` output classes over
    /// parents with the given cardinalities (registry order), with Laplace
    /// smoothing `alpha`.
    pub fn new(classes: usize, parent_cards: Vec<usize>, alpha: f32) -> Self {
        let stride: usize = parent_cards.iter().product();
        let weights = vec![1.0; parent_cards.len()];
        NaryBayesianCombiner {
            classes,
            parent_weights: weights,
            cpt: vec![0.0; classes * stride],
            parent_cards,
            alpha,
            fitted: false,
        }
    }

    /// Rebuilds a combiner from raw parts (the legacy pair-combiner
    /// conversion path).
    pub(crate) fn from_parts(
        classes: usize,
        parent_cards: Vec<usize>,
        cpt: Vec<f32>,
        alpha: f32,
        fitted: bool,
    ) -> Self {
        let weights = vec![1.0; parent_cards.len()];
        NaryBayesianCombiner {
            classes,
            parent_weights: weights,
            cpt,
            parent_cards,
            alpha,
            fitted,
        }
    }

    /// Sets per-parent tempering weights (posterior exponents). A weight
    /// of `1.0` leaves that parent untouched bitwise.
    ///
    /// # Errors
    ///
    /// Returns an error if the weight count does not match the parents.
    pub fn with_weights(mut self, weights: Vec<f32>) -> Result<Self> {
        if weights.len() != self.parent_cards.len() {
            return Err(CoreError::Dataset(format!(
                "{} weights for {} parents",
                weights.len(),
                self.parent_cards.len()
            )));
        }
        self.parent_weights = weights;
        Ok(self)
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Parent cardinalities in registry order.
    pub fn parent_cards(&self) -> &[usize] {
        &self.parent_cards
    }

    /// Whether [`NaryBayesianCombiner::fit`] has run (or the table was
    /// copied from a fitted legacy combiner).
    pub fn is_fitted(&self) -> bool {
        self.fitted
    }

    /// Product of all parent cardinalities: the per-class CPT block size.
    fn stride(&self) -> usize {
        self.parent_cards.iter().product()
    }

    /// Estimates the CPTs from training observations: each parent's
    /// probability output (`[n, card_k]`, registry order) and the true
    /// labels. Counting uses each parent's argmax, exactly as the legacy
    /// pair fit does.
    ///
    /// # Errors
    ///
    /// Returns an error on shape/label mismatches.
    pub fn fit(&mut self, parent_probs: &[&Tensor], labels: &[usize]) -> Result<()> {
        if parent_probs.len() != self.parent_cards.len() {
            return Err(CoreError::Dataset(format!(
                "{} parent tensors for {} registered parents",
                parent_probs.len(),
                self.parent_cards.len()
            )));
        }
        let n = labels.len();
        for (k, probs) in parent_probs.iter().enumerate() {
            if probs.dims() != [n, self.parent_cards[k]] {
                return Err(CoreError::Dataset(format!(
                    "parent {k} fit shape mismatch: {:?} for {n} labels of width {}",
                    probs.dims(),
                    self.parent_cards[k]
                )));
            }
        }
        let preds: Vec<Vec<usize>> = parent_probs
            .iter()
            .map(|p| p.argmax_rows())
            .collect::<std::result::Result<_, _>>()?;
        let stride = self.stride();
        let mut counts = vec![0.0f32; self.cpt.len()];
        for i in 0..n {
            let label = labels[i];
            if label >= self.classes {
                return Err(CoreError::Dataset(format!(
                    "label {label} out of range for {} classes",
                    self.classes
                )));
            }
            let mut base = 0usize;
            for (k, p) in preds.iter().enumerate() {
                base = base * self.parent_cards[k] + p[i];
            }
            counts[label * stride + base] += 1.0;
        }
        // Normalize over c for each parent combination with Laplace
        // smoothing — identical arithmetic to the legacy pair fit.
        for base in 0..stride {
            let total: f32 = (0..self.classes).map(|c| counts[c * stride + base]).sum();
            let denom = total + self.alpha * self.classes as f32;
            for c in 0..self.classes {
                let i = c * stride + base;
                self.cpt[i] = (counts[i] + self.alpha) / denom;
            }
        }
        self.fitted = true;
        Ok(())
    }

    /// Combines one sample's parent posteriors (all parents present) into
    /// normalized class scores.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotReady`] before fitting or on width
    /// mismatches.
    pub fn combine_n(&self, parents: &[&[f32]]) -> Result<Vec<f32>> {
        let mut scores = Vec::with_capacity(self.classes);
        self.combine_n_into(parents, &mut scores)?;
        Ok(scores)
    }

    /// [`NaryBayesianCombiner::combine_n`] writing into a caller-provided
    /// buffer (cleared first) — the zero-alloc fusion path. With two
    /// parents this is bitwise-identical to the legacy
    /// [`super::BayesianCombiner::combine_into`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotReady`] before fitting or on width
    /// mismatches.
    // darlint: hot
    pub fn combine_n_into(&self, parents: &[&[f32]], scores: &mut Vec<f32>) -> Result<()> {
        const MAX_PARENTS: usize = 8;
        if parents.len() > MAX_PARENTS {
            return Err(CoreError::Dataset(format!(
                "{} parents exceeds the {MAX_PARENTS}-stream registry cap",
                parents.len()
            )));
        }
        let mut subset: [Option<&[f32]>; MAX_PARENTS] = [None; MAX_PARENTS];
        for (slot, p) in subset.iter_mut().zip(parents) {
            *slot = Some(p);
        }
        self.combine_subset_into(&subset[..parents.len()], scores)
    }

    /// Combines whichever parents are present (`Some`), summing absent
    /// parents out with a uniform posterior. This is the healthy-subset
    /// fusion primitive: the engine drops an unavailable stream by passing
    /// `None` in its registry slot.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotReady`] before fitting, a dataset error on
    /// width mismatches, a wrong parent count, or when every parent is
    /// absent.
    // darlint: hot
    pub fn combine_subset_into(
        &self,
        parents: &[Option<&[f32]>],
        scores: &mut Vec<f32>,
    ) -> Result<()> {
        if !self.fitted {
            return Err(CoreError::NotReady("bayesian combiner not fitted".into()));
        }
        if parents.len() != self.parent_cards.len() {
            return Err(CoreError::Dataset(format!(
                "{} parent rows for {} registered parents",
                parents.len(),
                self.parent_cards.len()
            )));
        }
        let mut present = 0usize;
        for (k, p) in parents.iter().enumerate() {
            if let Some(row) = p {
                if row.len() != self.parent_cards[k] {
                    return Err(CoreError::Dataset(format!(
                        "parent {k} expects {} probabilities, got {}",
                        self.parent_cards[k],
                        row.len()
                    )));
                }
                present += 1;
            }
        }
        if present == 0 {
            return Err(CoreError::NotReady(
                "every parent stream is absent — nothing to fuse".into(),
            ));
        }
        scores.clear();
        scores.resize(self.classes, 0.0);
        self.descend(parents, 0, 1.0, 0, scores);
        let total: f32 = scores.iter().sum();
        if total > 0.0 {
            for s in scores.iter_mut() {
                *s /= total;
            }
        }
        Ok(())
    }

    /// Recursive lexicographic descent over the parent label space. The
    /// weight threading starts at `1.0`, so the first level's weight is
    /// `1.0 · p₀` — bitwise `p₀` — and every deeper level multiplies in
    /// exactly the legacy order; zero weights prune the subtree exactly
    /// where the legacy nested loop `continue`d.
    // darlint: hot
    fn descend(
        &self,
        parents: &[Option<&[f32]>],
        depth: usize,
        w: f32,
        base: usize,
        scores: &mut [f32],
    ) {
        if depth == parents.len() {
            let stride = self.stride();
            for (c, s) in scores.iter_mut().enumerate() {
                *s += w * self.cpt[c * stride + base];
            }
            return;
        }
        let card = self.parent_cards[depth];
        let weight = self.parent_weights[depth];
        match parents[depth] {
            Some(probs) => {
                for (a, &p) in probs.iter().enumerate().take(card) {
                    let p = if weight == 1.0 { p } else { p.powf(weight) };
                    let w_new = w * p;
                    if w_new == 0.0 {
                        continue;
                    }
                    self.descend(parents, depth + 1, w_new, base * card + a, scores);
                }
            }
            None => {
                // Absent parent: marginalize with a uniform posterior.
                let p = 1.0 / card as f32;
                let p = if weight == 1.0 { p } else { p.powf(weight) };
                for a in 0..card {
                    let w_new = w * p;
                    if w_new == 0.0 {
                        continue;
                    }
                    self.descend(parents, depth + 1, w_new, base * card + a, scores);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::BayesianCombiner;
    use super::*;
    use darnet_tensor::SplitMix64;

    fn random_rows(rng: &mut SplitMix64, n: usize, width: usize, zeros: bool) -> Vec<f32> {
        let mut rows = Vec::with_capacity(n * width);
        for _ in 0..n {
            let mut row: Vec<f32> = (0..width)
                .map(|_| {
                    if zeros && rng.next_f64() < 0.2 {
                        0.0
                    } else {
                        rng.next_f64() as f32
                    }
                })
                .collect();
            let total: f32 = row.iter().sum();
            if total > 0.0 {
                for v in &mut row {
                    *v /= total;
                }
            }
            rows.extend_from_slice(&row);
        }
        rows
    }

    fn fitted_pair(seed: u64) -> (BayesianCombiner, NaryBayesianCombiner) {
        let mut rng = SplitMix64::new(seed);
        let n = 64;
        let cnn = Tensor::from_vec(random_rows(&mut rng, n, 6, false), &[n, 6]).unwrap();
        let imu = Tensor::from_vec(random_rows(&mut rng, n, 3, false), &[n, 3]).unwrap();
        let labels: Vec<usize> = (0..n).map(|_| rng.next_usize(6)).collect();
        let mut legacy = BayesianCombiner::darnet();
        legacy.fit(&cnn, &imu, &labels).unwrap();
        let nary = legacy.to_nary();
        (legacy, nary)
    }

    #[test]
    fn two_parent_inference_is_bitwise_legacy() {
        let (legacy, nary) = fitted_pair(0x17A5);
        let mut rng = SplitMix64::new(99);
        for case in 0..200 {
            let cnn = random_rows(&mut rng, 1, 6, true);
            let imu = random_rows(&mut rng, 1, 3, true);
            let want = legacy.combine(&cnn, &imu).unwrap();
            let got = nary.combine_n(&[&cnn, &imu]).unwrap();
            assert_eq!(want.len(), got.len());
            for (i, (a, b)) in want.iter().zip(&got).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "case {case} class {i}");
            }
        }
    }

    #[test]
    fn two_parent_fit_matches_legacy_fit_bitwise() {
        let mut rng = SplitMix64::new(0xF1F1);
        let n = 96;
        let cnn = Tensor::from_vec(random_rows(&mut rng, n, 6, false), &[n, 6]).unwrap();
        let imu = Tensor::from_vec(random_rows(&mut rng, n, 3, false), &[n, 3]).unwrap();
        let labels: Vec<usize> = (0..n).map(|_| rng.next_usize(6)).collect();
        let mut legacy = BayesianCombiner::darnet();
        legacy.fit(&cnn, &imu, &labels).unwrap();
        let mut nary = NaryBayesianCombiner::new(6, vec![6, 3], 1.0);
        nary.fit(&[&cnn, &imu], &labels).unwrap();
        for c in 0..6 {
            for a in 0..6 {
                for b in 0..3 {
                    let want = legacy.cpt(c, a, b);
                    let got = nary.cpt[(c * 6 + a) * 3 + b];
                    assert_eq!(want.to_bits(), got.to_bits(), "cpt({c},{a},{b})");
                }
            }
        }
    }

    #[test]
    fn three_parent_fit_and_inference_work() {
        let mut rng = SplitMix64::new(7);
        let n = 120;
        let a = Tensor::from_vec(random_rows(&mut rng, n, 8, false), &[n, 8]).unwrap();
        let b = Tensor::from_vec(random_rows(&mut rng, n, 8, false), &[n, 8]).unwrap();
        let c = Tensor::from_vec(random_rows(&mut rng, n, 3, false), &[n, 3]).unwrap();
        let labels: Vec<usize> = (0..n).map(|i| i % 8).collect();
        let mut comb = NaryBayesianCombiner::new(8, vec![8, 8, 3], 1.0);
        comb.fit(&[&a, &b, &c], &labels).unwrap();
        let pa = &a.data()[..8];
        let pb = &b.data()[..8];
        let pc = &c.data()[..3];
        let scores = comb.combine_n(&[pa, pb, pc]).unwrap();
        assert_eq!(scores.len(), 8);
        assert!((scores.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(scores.iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    #[test]
    fn absent_parent_marginalizes_uniformly() {
        let (_, nary) = fitted_pair(0xAB);
        let mut rng = SplitMix64::new(3);
        let cnn = random_rows(&mut rng, 1, 6, false);
        // Explicit uniform IMU vs absent IMU must agree (the uniform
        // marginalization is exactly a uniform posterior).
        let uniform = vec![1.0 / 3.0; 3];
        let explicit = nary.combine_n(&[&cnn, &uniform]).unwrap();
        let mut absent = Vec::new();
        nary.combine_subset_into(&[Some(&cnn), None], &mut absent)
            .unwrap();
        for (a, b) in explicit.iter().zip(&absent) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn all_absent_or_unfitted_is_an_error() {
        let (_, nary) = fitted_pair(0xCD);
        let mut out = Vec::new();
        assert!(matches!(
            nary.combine_subset_into(&[None, None], &mut out),
            Err(CoreError::NotReady(_))
        ));
        let fresh = NaryBayesianCombiner::new(6, vec![6, 3], 1.0);
        assert!(matches!(
            fresh.combine_n_into(&[&[0.5; 6][..], &[0.5; 3][..]], &mut out),
            Err(CoreError::NotReady(_))
        ));
        // Wrong widths and wrong parent counts are dataset errors.
        assert!(nary.combine_n(&[&[0.5; 5][..], &[0.5; 3][..]]).is_err());
        assert!(nary.combine_n(&[&[0.5; 6][..]]).is_err());
    }

    #[test]
    fn neutral_weights_are_bitwise_invisible() {
        let (_, nary) = fitted_pair(0xEE);
        let weighted = nary.clone().with_weights(vec![1.0, 1.0]).unwrap();
        let mut rng = SplitMix64::new(11);
        let cnn = random_rows(&mut rng, 1, 6, false);
        let imu = random_rows(&mut rng, 1, 3, false);
        let a = nary.combine_n(&[&cnn, &imu]).unwrap();
        let b = weighted.combine_n(&[&cnn, &imu]).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // A non-neutral weight changes the posterior.
        let tempered = nary.clone().with_weights(vec![1.0, 2.0]).unwrap();
        let c = tempered.combine_n(&[&cnn, &imu]).unwrap();
        assert_ne!(a, c);
        assert!(nary.clone().with_weights(vec![1.0]).is_err());
    }
}
