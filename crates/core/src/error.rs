//! Error type for the analytics engine.

use std::fmt;

use darnet_collect::CollectError;
use darnet_nn::NnError;
use darnet_tensor::TensorError;

/// Error returned by analytics-engine operations.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A tensor operation failed.
    Tensor(TensorError),
    /// A network/model operation failed.
    Nn(NnError),
    /// A collection-framework operation failed.
    Collect(CollectError),
    /// Dataset construction or indexing problem.
    Dataset(String),
    /// The engine was used before its models were trained/registered.
    NotReady(String),
    /// A scoped worker thread panicked during a concurrent engine stage
    /// (see DESIGN.md §11: hot paths convert panics at the join boundary
    /// instead of re-panicking).
    WorkerPanicked {
        /// The concurrent stage whose worker died.
        stage: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Tensor(e) => write!(f, "tensor error: {e}"),
            CoreError::Nn(e) => write!(f, "model error: {e}"),
            CoreError::Collect(e) => write!(f, "collection error: {e}"),
            CoreError::Dataset(msg) => write!(f, "dataset error: {msg}"),
            CoreError::NotReady(msg) => write!(f, "engine not ready: {msg}"),
            CoreError::WorkerPanicked { stage } => {
                write!(f, "a parallel worker thread panicked in stage {stage}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Tensor(e) => Some(e),
            CoreError::Nn(e) => Some(e),
            CoreError::Collect(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for CoreError {
    fn from(e: TensorError) -> Self {
        CoreError::Tensor(e)
    }
}

impl From<NnError> for CoreError {
    fn from(e: NnError) -> Self {
        CoreError::Nn(e)
    }
}

impl From<CollectError> for CoreError {
    fn from(e: CollectError) -> Self {
        CoreError::Collect(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }

    #[test]
    fn conversions_work() {
        let e: CoreError = TensorError::InvalidArgument("x".into()).into();
        assert!(matches!(e, CoreError::Tensor(_)));
        let e: CoreError = NnError::InvalidConfig("y".into()).into();
        assert!(matches!(e, CoreError::Nn(_)));
        let e: CoreError = CollectError::NoData("z".into()).into();
        assert!(matches!(e, CoreError::Collect(_)));
    }
}
