//! Property-based tests for the analytics engine: confusion-matrix and
//! combiner invariants, privacy arithmetic, batched-inference equivalence,
//! and the N-stream registry's bitwise fidelity to the legacy pair path.

use darnet_collect::StreamId;
use darnet_core::dataset::{IMU_FEATURES, WINDOW_LEN};
use darnet_core::ensemble::{product_combine, CombinerKind};
use darnet_core::privacy::PrivacyLevel;
use darnet_core::registry::product_combine_subset_into;
use darnet_core::{
    AnalyticsEngine, BayesianCombiner, ClassMap, CnnConfig, ConfusionMatrix, EngineConfig,
    FrameCnn, ImuModelSlot, ImuRnn, ModalityDescriptor, MultiModalEngine, NaryBayesianCombiner,
    RnnConfig, StreamInput, StreamModelSlot,
};
use darnet_sim::Frame;
use darnet_tensor::{Parallelism, SplitMix64, Tensor};
use proptest::prelude::*;

fn prob_row(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(0.01f32..1.0, n).prop_map(|v| {
        let s: f32 = v.iter().sum();
        v.into_iter().map(|x| x / s).collect()
    })
}

/// Exact-representation view for bitwise comparisons.
fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn random_tensor(dims: &[usize], rng: &mut SplitMix64) -> Tensor {
    let mut t = Tensor::zeros(dims);
    for v in t.data_mut() {
        *v = rng.uniform(0.01, 1.0);
    }
    t
}

/// A legacy pair combiner fitted on random posteriors.
fn fitted_pair(n: usize, alpha: f32, seed: u64) -> darnet_core::Result<BayesianCombiner> {
    let mut rng = SplitMix64::new(seed);
    let cnn = random_tensor(&[n, 6], &mut rng);
    let imu = random_tensor(&[n, 3], &mut rng);
    let labels: Vec<usize> = (0..n).map(|i| (i + seed as usize) % 6).collect();
    let mut comb = BayesianCombiner::new(6, 3, alpha);
    comb.fit(&cnn, &imu, &labels)?;
    Ok(comb)
}

proptest! {
    #[test]
    fn confusion_matrix_row_sums_match_label_counts(
        pairs in prop::collection::vec((0usize..4, 0usize..4), 1..100)
    ) {
        let labels: Vec<usize> = pairs.iter().map(|p| p.0).collect();
        let preds: Vec<usize> = pairs.iter().map(|p| p.1).collect();
        let m = ConfusionMatrix::from_predictions(&labels, &preds, 4).unwrap();
        prop_assert_eq!(m.total(), pairs.len());
        for i in 0..4 {
            let row: usize = (0..4).map(|j| m.count(i, j)).sum();
            let expected = labels.iter().filter(|&&l| l == i).count();
            prop_assert_eq!(row, expected);
        }
        prop_assert!((0.0..=1.0).contains(&m.accuracy()));
    }

    #[test]
    fn bayesian_cpt_is_normalized_after_any_fit(
        labels in prop::collection::vec(0usize..3, 10..60),
        seed in 0u64..100,
    ) {
        let n = labels.len();
        let mut rng = darnet_tensor::SplitMix64::new(seed);
        let mut cnn = Tensor::zeros(&[n, 3]);
        for v in cnn.data_mut() { *v = rng.uniform(0.01, 1.0); }
        let mut imu = Tensor::zeros(&[n, 2]);
        for v in imu.data_mut() { *v = rng.uniform(0.01, 1.0); }
        let mut comb = BayesianCombiner::new(3, 2, 1.0);
        comb.fit(&cnn, &imu, &labels).unwrap();
        for a in 0..3 {
            for b in 0..2 {
                let total: f32 = (0..3).map(|c| comb.cpt(c, a, b)).sum();
                prop_assert!((total - 1.0).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn combined_scores_are_distributions(
        labels in prop::collection::vec(0usize..3, 20..50),
        cnn_row in prob_row(3),
        imu_row in prob_row(2),
        seed in 0u64..50,
    ) {
        let n = labels.len();
        let mut rng = darnet_tensor::SplitMix64::new(seed);
        let mut cnn = Tensor::zeros(&[n, 3]);
        for v in cnn.data_mut() { *v = rng.uniform(0.01, 1.0); }
        let mut imu = Tensor::zeros(&[n, 2]);
        for v in imu.data_mut() { *v = rng.uniform(0.01, 1.0); }
        let mut comb = BayesianCombiner::new(3, 2, 0.5);
        comb.fit(&cnn, &imu, &labels).unwrap();
        let scores = comb.combine(&cnn_row, &imu_row).unwrap();
        let sum: f32 = scores.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(scores.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn product_combiner_outputs_distribution(cnn_row in prob_row(6), imu_row in prob_row(3)) {
        let scores = product_combine(&cnn_row, &imu_row).unwrap();
        let sum: f32 = scores.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
    }

    #[test]
    fn batched_inference_matches_per_item(
        n in 1usize..6, threads in 1usize..5, seed in 0u64..20,
    ) {
        let mut cnn = FrameCnn::new(
            CnnConfig {
                input_size: 12,
                classes: 3,
                width: 0.25,
                ..CnnConfig::default()
            },
            seed,
        );
        // min_work(1) forces the threaded path even on tiny shapes.
        cnn.set_parallelism(Parallelism::new(threads).with_min_work(1));
        let mut rng = SplitMix64::new(seed ^ 0xABCD);
        let mut frames = Tensor::zeros(&[n, 1, 12, 12]);
        for v in frames.data_mut() { *v = rng.uniform(0.0, 1.0); }
        let batch = cnn.predict_proba(&frames).unwrap();
        let img = 12 * 12;
        for i in 0..n {
            let single = Tensor::from_vec(
                frames.data()[i * img..(i + 1) * img].to_vec(),
                &[1, 1, 12, 12],
            ).unwrap();
            let p = cnn.predict_proba(&single).unwrap();
            // Bitwise: batching must not change any item's posterior.
            prop_assert_eq!(&batch.data()[i * 3..(i + 1) * 3], p.data());
        }
    }

    #[test]
    fn nary_pair_combiner_is_bitwise_legacy(
        n in 12usize..40,
        alpha in 0.1f32..2.0,
        seed in 0u64..200,
        cnn_row in prob_row(6),
        imu_row in prob_row(3),
    ) {
        let legacy = fitted_pair(n, alpha, seed).unwrap();
        let nary = legacy.to_nary();
        let want = legacy.combine(&cnn_row, &imu_row).unwrap();
        let full = nary.combine_n(&[&cnn_row, &imu_row]).unwrap();
        prop_assert_eq!(bits(&want), bits(&full));
        let mut subset = Vec::new();
        nary.combine_subset_into(
            &[Some(cnn_row.as_slice()), Some(imu_row.as_slice())],
            &mut subset,
        ).unwrap();
        prop_assert_eq!(bits(&want), bits(&subset));
    }

    #[test]
    fn product_subset_pair_is_bitwise_legacy(
        cnn_row in prob_row(6),
        imu_row in prob_row(3),
    ) {
        let want = product_combine(&cnn_row, &imu_row).unwrap();
        let camera = ClassMap::Identity;
        let imu_map = ClassMap::darnet_imu();
        let mut got = Vec::new();
        product_combine_subset_into(
            &[
                (Some(cnn_row.as_slice()), &camera, 1.0),
                (Some(imu_row.as_slice()), &imu_map, 1.0),
            ],
            6,
            &mut got,
        ).unwrap();
        prop_assert_eq!(bits(&want), bits(&got));
    }

    #[test]
    fn class_map_expansions_match_legacy_fallback_posteriors(
        cnn_row in prob_row(6),
        imu_row in prob_row(3),
    ) {
        // CNN-only fallback: the posterior passes through verbatim.
        let mut scores = Vec::new();
        ClassMap::Identity.expand_into(&cnn_row, 6, &mut scores).unwrap();
        prop_assert_eq!(bits(&cnn_row), bits(&scores));
        // IMU-only fallback, frozen legacy formula: fan each IMU class's
        // mass uniformly across its preimage, then normalize.
        let m = [0usize, 1, 2, 0, 0, 0];
        let mut want: Vec<f32> = (0..6)
            .map(|c| {
                let fanout = m.iter().filter(|&&x| x == m[c]).count() as f32;
                imu_row[m[c]] / fanout
            })
            .collect();
        let total: f32 = want.iter().sum();
        if total > 0.0 {
            for v in &mut want {
                *v /= total;
            }
        }
        ClassMap::darnet_imu().expand_into(&imu_row, 6, &mut scores).unwrap();
        prop_assert_eq!(bits(&want), bits(&scores));
    }

    #[test]
    fn nary_subset_marginalization_stays_normalized(
        seed in 0u64..100,
        p0 in prob_row(3),
        p1 in prob_row(6),
        p2 in prob_row(6),
    ) {
        let n = 30;
        let mut rng = SplitMix64::new(seed ^ 0x3AB1);
        let t0 = random_tensor(&[n, 3], &mut rng);
        let t1 = random_tensor(&[n, 6], &mut rng);
        let t2 = random_tensor(&[n, 6], &mut rng);
        let labels: Vec<usize> = (0..n).map(|i| i % 6).collect();
        let mut comb = NaryBayesianCombiner::new(6, vec![3, 6, 6], 1.0);
        comb.fit(&[&t0, &t1, &t2], &labels).unwrap();
        // The all-present subset is exactly the dense N-ary product.
        let full = comb.combine_n(&[&p0, &p1, &p2]).unwrap();
        let mut scores = Vec::new();
        comb.combine_subset_into(
            &[Some(p0.as_slice()), Some(p1.as_slice()), Some(p2.as_slice())],
            &mut scores,
        ).unwrap();
        prop_assert_eq!(bits(&full), bits(&scores));
        // Every non-empty subset still yields a distribution.
        let rows = [p0.as_slice(), p1.as_slice(), p2.as_slice()];
        for mask in 1usize..8 {
            let parents: Vec<Option<&[f32]>> = rows
                .iter()
                .enumerate()
                .map(|(i, p)| if mask & (1 << i) != 0 { Some(*p) } else { None })
                .collect();
            comb.combine_subset_into(&parents, &mut scores).unwrap();
            let sum: f32 = scores.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "mask {}: sum {}", mask, sum);
            prop_assert!(scores.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn privacy_arithmetic_is_consistent(full in 12usize..600) {
        for level in PrivacyLevel::ALL {
            let target = level.target_size(full);
            prop_assert!(target >= 1);
            prop_assert!(target <= full);
            // Reduction factor equals divisor squared.
            prop_assert_eq!(level.data_reduction(), level.divisor() * level.divisor());
        }
        // Higher levels never have more pixels.
        prop_assert!(PrivacyLevel::Low.target_size(full) >= PrivacyLevel::Medium.target_size(full));
        prop_assert!(PrivacyLevel::Medium.target_size(full) >= PrivacyLevel::High.target_size(full));
    }
}

proptest! {
    // Each case trains a (tiny) RNN, so keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole contract: an N=2 registry engine loaded with the
    /// same models, combiner, and [`Parallelism`] is bitwise-identical
    /// to the legacy two-stream [`AnalyticsEngine`] on arbitrary inputs,
    /// for every combiner kind.
    #[test]
    fn n2_registry_engine_matches_legacy_engine_bitwise(
        n in 1usize..4,
        threads in 1usize..4,
        seed in 0u64..50,
        kind_idx in 0usize..3,
    ) {
        let kind = [CombinerKind::Bayesian, CombinerKind::Product, CombinerKind::CnnOnly][kind_idx];
        let size = 16;
        let cnn_config = CnnConfig {
            input_size: size,
            classes: 6,
            width: 0.25,
            ..CnnConfig::default()
        };
        let rnn_config = RnnConfig {
            hidden: 4,
            depth: 1,
            ..RnnConfig::default()
        };
        // Models are rebuilt per engine from the same seeds and fit
        // data, so both engines own weight-identical copies.
        let mut rng = SplitMix64::new(seed ^ 0x1234);
        let fit_windows = random_tensor(&[9, WINDOW_LEN, IMU_FEATURES], &mut rng);
        let fit_labels: Vec<usize> = (0..9).map(|i| i % 3).collect();
        let make_cnn = || FrameCnn::new(cnn_config, seed ^ 0x11);
        let make_rnn = || {
            let mut rnn = ImuRnn::new(rnn_config, seed ^ 0x22);
            rnn.fit(&fit_windows, &fit_labels, 1).unwrap();
            rnn
        };
        let combiner = fitted_pair(24, 1.0, seed ^ 0x77).unwrap();
        let par = Parallelism::new(threads).with_min_work(1);

        let mut legacy = AnalyticsEngine::new(
            make_cnn(),
            ImuModelSlot::Rnn(make_rnn()),
            combiner.clone(),
            EngineConfig { combiner: kind },
        );
        legacy.set_parallelism(par);

        let mut registry = MultiModalEngine::new(6, kind);
        // Legacy CPT parent order: camera first, then IMU.
        registry
            .register(ModalityDescriptor::darnet_camera(), StreamModelSlot::Cnn(make_cnn()))
            .unwrap();
        registry
            .register(ModalityDescriptor::darnet_imu(), StreamModelSlot::Rnn(make_rnn()))
            .unwrap();
        registry.set_combiner(combiner.to_nary()).unwrap();
        registry.set_parallelism(par);

        let frames: Vec<Frame> = (0..n)
            .map(|_| {
                let pixels: Vec<f32> = (0..size * size).map(|_| rng.uniform(0.0, 1.0)).collect();
                Frame::from_pixels(size, size, pixels)
            })
            .collect();
        let windows = random_tensor(&[n, WINDOW_LEN, IMU_FEATURES], &mut rng);

        let want = legacy.classify_batch(&frames, &windows).unwrap();
        let mut got = Vec::new();
        registry
            .classify_batch_into(
                &[
                    (StreamId::CAMERA_FRONT, StreamInput::Frames(&frames)),
                    (StreamId::IMU, StreamInput::Windows(&windows)),
                ],
                &mut got,
            )
            .unwrap();
        prop_assert_eq!(want.len(), got.len());
        for (w, g) in want.iter().zip(&got) {
            prop_assert_eq!(w.behavior.index(), g.class);
            prop_assert_eq!(bits(&w.scores), bits(&g.scores));
        }
    }
}
