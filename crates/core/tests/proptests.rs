//! Property-based tests for the analytics engine: confusion-matrix and
//! combiner invariants, privacy arithmetic, batched-inference equivalence.

use darnet_core::ensemble::product_combine;
use darnet_core::privacy::PrivacyLevel;
use darnet_core::{BayesianCombiner, CnnConfig, ConfusionMatrix, FrameCnn};
use darnet_tensor::{Parallelism, SplitMix64, Tensor};
use proptest::prelude::*;

fn prob_row(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(0.01f32..1.0, n).prop_map(|v| {
        let s: f32 = v.iter().sum();
        v.into_iter().map(|x| x / s).collect()
    })
}

proptest! {
    #[test]
    fn confusion_matrix_row_sums_match_label_counts(
        pairs in prop::collection::vec((0usize..4, 0usize..4), 1..100)
    ) {
        let labels: Vec<usize> = pairs.iter().map(|p| p.0).collect();
        let preds: Vec<usize> = pairs.iter().map(|p| p.1).collect();
        let m = ConfusionMatrix::from_predictions(&labels, &preds, 4).unwrap();
        prop_assert_eq!(m.total(), pairs.len());
        for i in 0..4 {
            let row: usize = (0..4).map(|j| m.count(i, j)).sum();
            let expected = labels.iter().filter(|&&l| l == i).count();
            prop_assert_eq!(row, expected);
        }
        prop_assert!((0.0..=1.0).contains(&m.accuracy()));
    }

    #[test]
    fn bayesian_cpt_is_normalized_after_any_fit(
        labels in prop::collection::vec(0usize..3, 10..60),
        seed in 0u64..100,
    ) {
        let n = labels.len();
        let mut rng = darnet_tensor::SplitMix64::new(seed);
        let mut cnn = Tensor::zeros(&[n, 3]);
        for v in cnn.data_mut() { *v = rng.uniform(0.01, 1.0); }
        let mut imu = Tensor::zeros(&[n, 2]);
        for v in imu.data_mut() { *v = rng.uniform(0.01, 1.0); }
        let mut comb = BayesianCombiner::new(3, 2, 1.0);
        comb.fit(&cnn, &imu, &labels).unwrap();
        for a in 0..3 {
            for b in 0..2 {
                let total: f32 = (0..3).map(|c| comb.cpt(c, a, b)).sum();
                prop_assert!((total - 1.0).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn combined_scores_are_distributions(
        labels in prop::collection::vec(0usize..3, 20..50),
        cnn_row in prob_row(3),
        imu_row in prob_row(2),
        seed in 0u64..50,
    ) {
        let n = labels.len();
        let mut rng = darnet_tensor::SplitMix64::new(seed);
        let mut cnn = Tensor::zeros(&[n, 3]);
        for v in cnn.data_mut() { *v = rng.uniform(0.01, 1.0); }
        let mut imu = Tensor::zeros(&[n, 2]);
        for v in imu.data_mut() { *v = rng.uniform(0.01, 1.0); }
        let mut comb = BayesianCombiner::new(3, 2, 0.5);
        comb.fit(&cnn, &imu, &labels).unwrap();
        let scores = comb.combine(&cnn_row, &imu_row).unwrap();
        let sum: f32 = scores.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(scores.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn product_combiner_outputs_distribution(cnn_row in prob_row(6), imu_row in prob_row(3)) {
        let scores = product_combine(&cnn_row, &imu_row).unwrap();
        let sum: f32 = scores.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
    }

    #[test]
    fn batched_inference_matches_per_item(
        n in 1usize..6, threads in 1usize..5, seed in 0u64..20,
    ) {
        let mut cnn = FrameCnn::new(
            CnnConfig {
                input_size: 12,
                classes: 3,
                width: 0.25,
                ..CnnConfig::default()
            },
            seed,
        );
        // min_work(1) forces the threaded path even on tiny shapes.
        cnn.set_parallelism(Parallelism::new(threads).with_min_work(1));
        let mut rng = SplitMix64::new(seed ^ 0xABCD);
        let mut frames = Tensor::zeros(&[n, 1, 12, 12]);
        for v in frames.data_mut() { *v = rng.uniform(0.0, 1.0); }
        let batch = cnn.predict_proba(&frames).unwrap();
        let img = 12 * 12;
        for i in 0..n {
            let single = Tensor::from_vec(
                frames.data()[i * img..(i + 1) * img].to_vec(),
                &[1, 1, 12, 12],
            ).unwrap();
            let p = cnn.predict_proba(&single).unwrap();
            // Bitwise: batching must not change any item's posterior.
            prop_assert_eq!(&batch.data()[i * 3..(i + 1) * 3], p.data());
        }
    }

    #[test]
    fn privacy_arithmetic_is_consistent(full in 12usize..600) {
        for level in PrivacyLevel::ALL {
            let target = level.target_size(full);
            prop_assert!(target >= 1);
            prop_assert!(target <= full);
            // Reduction factor equals divisor squared.
            prop_assert_eq!(level.data_reduction(), level.divisor() * level.divisor());
        }
        // Higher levels never have more pixels.
        prop_assert!(PrivacyLevel::Low.target_size(full) >= PrivacyLevel::Medium.target_size(full));
        prop_assert!(PrivacyLevel::Medium.target_size(full) >= PrivacyLevel::High.target_size(full));
    }
}
