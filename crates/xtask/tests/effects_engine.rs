//! Integration tests for the interprocedural effect engine: fixture
//! workspaces exercise recursion, cross-crate witness chains, the
//! stoplist under-approximation, and the `replay-pure` contract rule;
//! proptests pin that inference is deterministic (byte-identical
//! `effects.json` across runs) and monotone (adding a call edge never
//! removes an effect).

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;
use xtask::effects::Effect;
use xtask::rules::rule;
use xtask::{effects_workspace, lint_workspace};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

fn workspace(files: &[(&str, &str)]) -> Vec<(String, String)> {
    files
        .iter()
        .map(|(p, s)| ((*p).to_owned(), (*s).to_owned()))
        .collect()
}

#[test]
fn direct_and_mutual_recursion_reach_a_fixpoint() {
    let files = workspace(&[("crates/core/src/rec.rs", &fixture("effects_recursion.rs"))]);
    let analysis = effects_workspace(&files);

    let countdown = analysis.explain("countdown").expect("countdown analyzed");
    assert!(countdown.contains("alloc"), "{countdown}");
    assert!(countdown.contains("direct: `vec!`"), "{countdown}");

    // Both halves of the mutual cycle carry Io; `even`'s witness walks
    // into `odd`, and no witness chain revisits a function.
    let even = analysis.explain("even").expect("even analyzed");
    assert!(even.contains("io"), "{even}");
    assert!(even.contains("via even → odd"), "{even}");
    let odd = analysis.explain("odd").expect("odd analyzed");
    assert!(odd.contains("direct: `std::fs`"), "{odd}");
    for f in &analysis.fns {
        for e in &f.effects {
            let uniq: BTreeSet<&String> = e.witness.iter().collect();
            assert_eq!(uniq.len(), e.witness.len(), "cyclic witness on {}", f.name);
        }
    }
}

#[test]
fn two_hop_cross_crate_witness_chain_is_complete() {
    let files = workspace(&[
        (
            "crates/collect/src/chain.rs",
            &fixture("effects_chain_root.rs"),
        ),
        ("crates/core/src/leaf.rs", &fixture("effects_chain_leaf.rs")),
    ]);
    let analysis = effects_workspace(&files);
    let entry = analysis.explain("entry").expect("entry analyzed");
    assert!(
        entry.contains("via entry → middle → stamp"),
        "full cross-crate chain: {entry}"
    );
    assert!(
        entry.contains("at crates/core/src/leaf.rs:"),
        "seed site names the leaf crate: {entry}"
    );
    // The JSON carries the same chain.
    let json = analysis.render_json();
    assert!(
        json.contains("\"witness\": [\"entry\", \"middle\", \"stamp\"]"),
        "{json}"
    );
}

#[test]
fn stoplisted_method_names_underapproximate_dispatch() {
    let files = workspace(&[(
        "crates/collect/src/pipeline.rs",
        &fixture("effects_stoplist.rs"),
    )]);
    let analysis = effects_workspace(&files);
    // `.read()` is on the universal stoplist: no edge, no inherited Io.
    let pull = analysis.explain("pull").expect("pull analyzed");
    assert!(
        pull.contains("pure — no effects inferred"),
        "stoplist must suppress the edge: {pull}"
    );
    // A custom method name resolves and propagates.
    let pull_frame = analysis.explain("pull_frame").expect("pull_frame analyzed");
    assert!(
        pull_frame.contains("io") && pull_frame.contains("Reader::fetch_frame"),
        "custom name must propagate: {pull_frame}"
    );
}

#[test]
fn time_leak_into_pure_root_fails_the_lint() {
    let files = workspace(&[(
        "crates/collect/src/digest.rs",
        &fixture("pure_root_time_leak.rs"),
    )]);
    let report = lint_workspace(&files);
    let leaks: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == rule::REPLAY_PURE)
        .collect();
    assert_eq!(leaks.len(), 1, "{:?}", report.violations);
    let v = leaks[0];
    assert_eq!(v.line, 21, "the Instant::now seed line");
    assert!(
        v.message.contains("via digest → fold → stamp_cache"),
        "full root-to-site chain: {}",
        v.message
    );
    assert!(v.message.contains("time effect"), "{}", v.message);
}

#[test]
fn fixing_the_leak_makes_the_fixture_clean() {
    // The same fixture with the wall-clock read removed passes, so the
    // failure above is attributable to the leak alone.
    let fixed = fixture("pure_root_time_leak.rs").replace("let _ = std::time::Instant::now();", "");
    let files = workspace(&[("crates/collect/src/digest.rs", &fixed)]);
    let report = lint_workspace(&files);
    assert!(
        report
            .violations
            .iter()
            .all(|v| v.rule != rule::REPLAY_PURE),
        "{:?}",
        report.violations
    );
}

#[test]
fn canonical_effect_order_is_stable() {
    let names: Vec<&str> = Effect::ALL.iter().map(|e| e.name()).collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted, "Effect::ALL must stay alphabetical");
}

// ---------------------------------------------------------------------
// Property tests: generated call graphs.
// ---------------------------------------------------------------------

/// Builds one source file of `n` free functions. `seeds[i]` is a 3-bit
/// mask (time/io/alloc); `edges` are caller→callee pairs (mod `n`).
fn build_src(n: usize, seeds: &[u8], edges: &[(usize, usize)]) -> String {
    let mut src = String::from("//! Generated workspace.\n");
    for (i, &seed) in seeds.iter().enumerate().take(n) {
        src.push_str(&format!("pub fn f{i}() {{\n"));
        for &(a, b) in edges {
            if a % n == i {
                src.push_str(&format!("    f{}();\n", b % n));
            }
        }
        if seed & 1 != 0 {
            src.push_str("    let _ = std::time::Instant::now();\n");
        }
        if seed & 2 != 0 {
            src.push_str("    let _ = std::fs::read(\"x\");\n");
        }
        if seed & 4 != 0 {
            src.push_str("    let _v = vec![0u8];\n");
        }
        src.push_str("}\n");
    }
    src
}

/// Per-function effect-name sets from an analysis.
fn effect_sets(files: &[(String, String)]) -> BTreeMap<String, BTreeSet<&'static str>> {
    effects_workspace(files)
        .fns
        .iter()
        .map(|f| {
            (
                f.name.clone(),
                f.effects.iter().map(|e| e.effect.name()).collect(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn inference_is_deterministic(
        n in 2usize..7,
        seeds in proptest::collection::vec(0u8..8, 7),
        edges in proptest::collection::vec((0usize..7, 0usize..7), 0..12),
    ) {
        let src = build_src(n, &seeds, &edges);
        let files = vec![("crates/core/src/gen.rs".to_owned(), src)];
        let a = effects_workspace(&files).render_json();
        let b = effects_workspace(&files).render_json();
        prop_assert_eq!(a, b, "byte-identical across independent runs");
    }

    #[test]
    fn adding_an_edge_never_removes_an_effect(
        n in 2usize..7,
        seeds in proptest::collection::vec(0u8..8, 7),
        edges in proptest::collection::vec((0usize..7, 0usize..7), 0..12),
        extra in (0usize..7, 0usize..7),
    ) {
        let base = vec![(
            "crates/core/src/gen.rs".to_owned(),
            build_src(n, &seeds, &edges),
        )];
        let mut grown_edges = edges.clone();
        grown_edges.push(extra);
        let grown = vec![(
            "crates/core/src/gen.rs".to_owned(),
            build_src(n, &seeds, &grown_edges),
        )];
        let before = effect_sets(&base);
        let after = effect_sets(&grown);
        for (name, set) in &before {
            let grown_set = &after[name];
            prop_assert!(
                set.is_subset(grown_set),
                "{name}: {set:?} not ⊆ {grown_set:?}"
            );
        }
    }
}
