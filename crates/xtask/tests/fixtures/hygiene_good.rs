//! Fixture: a crate root carrying the full required attribute set.

#![deny(unsafe_code)]
#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub fn ok() {}
