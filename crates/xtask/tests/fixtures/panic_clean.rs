//! Fixture: a file full of panic-shaped text that must NOT fire the
//! no-panic-paths rule — every occurrence is in a comment, a doc example,
//! a string literal, or `#[cfg(test)]` code.

/// Doc examples idiomatically unwrap; they compile as test code:
///
/// ```
/// let v: Option<u32> = Some(1);
/// let _ = v.unwrap();
/// ```
pub fn documented() -> &'static str {
    // A comment saying x.unwrap() or panic! is not a call.
    "this string mentions .unwrap() and panic! and Instant::now"
}

pub fn raw_string() -> &'static str {
    r#"even raw strings with .expect("x") and todo!"#
}

pub fn lifetime_not_char<'a>(s: &'a str) -> &'a str {
    // Lifetimes must not confuse the char-literal masker into eating the
    // rest of the file.
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let r: Result<u32, ()> = Ok(2);
        assert_eq!(r.expect("ok"), 2);
        if false {
            panic!("tests may panic");
        }
    }
}
