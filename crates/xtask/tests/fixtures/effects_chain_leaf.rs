//! Fixture: leaf of the 2-hop cross-crate witness chain — the lexical
//! Time seed the chain must terminate at.

pub fn stamp() -> u64 {
    let _ = std::time::Instant::now();
    0
}
