//! Fixture: justified hatches suppress hot-alloc at both positions.

// darlint: hot
fn hot_path(xs: &[f32]) -> Vec<f32> {
    // darlint: allow(hot-alloc) — cold growth path, measured zero warm
    let d = xs.to_vec();
    let _e = xs.to_vec(); // darlint: allow(hot-alloc) — error path only
    d
}
