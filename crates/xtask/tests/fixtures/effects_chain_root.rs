//! Fixture: root of a 2-hop cross-crate witness chain. `entry` lives in
//! one crate and calls through `middle` (same crate) into a leaf in a
//! *different* crate (`effects_chain_leaf.rs` mounted under another
//! crate path); the Time effect inferred on `entry` must carry the full
//! three-function witness.

pub fn entry() -> u64 {
    middle()
}

fn middle() -> u64 {
    crate::leaf::stamp()
}
