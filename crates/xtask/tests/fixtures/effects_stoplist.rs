//! Fixture: trait-method dispatch fallback. `read` is on the universal
//! stoplist, so `source.read()` creates no call edge and `Pipeline::pull`
//! does NOT inherit `Reader::read`'s Io effect — the documented
//! under-approximation. The custom-named `fetch_frame` resolves normally
//! and propagates. Pins both sides of the trade.

pub trait Source {
    fn read(&self) -> Vec<u8>;
    fn fetch_frame(&self) -> Vec<u8>;
}

pub struct Reader;

impl Reader {
    pub fn read(&self) -> Vec<u8> {
        std::fs::read("frame").unwrap_or_default()
    }

    pub fn fetch_frame(&self) -> Vec<u8> {
        std::fs::read("frame").unwrap_or_default()
    }
}

pub struct Pipeline;

impl Pipeline {
    pub fn pull(&self, source: &Reader) -> Vec<u8> {
        source.read()
    }

    pub fn pull_frame(&self, source: &Reader) -> Vec<u8> {
        source.fetch_frame()
    }
}
