//! Helpers reached from the hot fixture root.

/// First hop: shapes the work, no allocation of its own.
pub fn mid_helper(out: &mut [f32]) {
    alloc_helper(out);
}

/// Second hop: allocates scratch — propagation must flag this.
pub fn alloc_helper(out: &mut [f32]) {
    let scratch = vec![0.0f32; out.len()];
    for (o, s) in out.iter_mut().zip(&scratch) {
        *o += *s;
    }
}
