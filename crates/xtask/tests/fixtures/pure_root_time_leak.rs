//! Fixture: a deliberate Time-effect leak into a replay-pure region.
//! `digest` is a declared pure root; two hops down, `stamp_cache` reads
//! the wall clock. The `replay-pure` rule MUST flag the seed site with
//! the full root-to-site chain.

// darlint: pure-root
pub fn digest(state: &[u8]) -> u64 {
    fold(state)
}

fn fold(state: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in state {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    stamp_cache();
    h
}

fn stamp_cache() {
    let _ = std::time::Instant::now();
}
