//! Propagation fixture: a hot root whose allocation happens two calls
//! away, in another file.

/// Hot entry point writing into a caller-provided buffer.
// darlint: hot
pub fn transform_into(out: &mut [f32]) {
    crate::prop_helpers::mid_helper(out);
}
