//! Fixture: wall-clock reads outside the runtime allowlist.

use std::time::{Instant, SystemTime};

pub fn bad_instant() -> Instant {
    Instant::now() // line 6
}

pub fn bad_system_time() -> SystemTime {
    SystemTime::now() // line 10
}
