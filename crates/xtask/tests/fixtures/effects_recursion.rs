//! Fixture: effect inference through recursion. Direct recursion
//! (`countdown`) and a mutual cycle (`even`/`odd`, with the Io seed in
//! `odd`) must both reach a fixpoint, and every witness chain must stay
//! acyclic.

pub fn countdown(n: u32) -> u32 {
    if n == 0 {
        return 0;
    }
    let _scratch = vec![n];
    countdown(n - 1)
}

pub fn even(n: u32) -> bool {
    if n == 0 {
        return true;
    }
    odd(n - 1)
}

pub fn odd(n: u32) -> bool {
    let _probe = std::fs::read("probe").unwrap_or_default();
    if n == 0 {
        return false;
    }
    even(n - 1)
}
