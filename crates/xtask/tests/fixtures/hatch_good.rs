//! Fixture: justified escape hatches suppress the panic rule, both as a
//! leading own-line comment and as a trailing comment.

pub fn leading(x: Option<u32>) -> u32 {
    // darlint: allow(panic) — x is Some by construction of the caller
    x.unwrap()
}

pub fn trailing(x: Option<u32>) -> u32 {
    x.unwrap() // darlint: allow(panic) — invariant checked two lines up
}
