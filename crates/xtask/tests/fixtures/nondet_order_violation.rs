//! Order fixture: hash containers on an order-sensitive path.
use std::collections::HashMap;

/// Folds counters into a digest in map-iteration order.
pub fn digest(counts: &HashMap<String, u64>) -> u64 {
    let mut h = 0u64;
    for (k, v) in counts.iter() {
        h ^= v.wrapping_add(k.len() as u64);
    }
    h
}

/// A scratch set built per call.
pub fn dedupe(xs: &[u32]) -> usize {
    let mut seen = std::collections::HashSet::new();
    for &x in xs {
        seen.insert(x);
    }
    seen.len()
}
