//! Fixture: a raw detached spawn outside the Parallelism allowlist.

pub fn detached() {
    let h = std::thread::spawn(|| 1 + 1); // line 4
    let _ = h.join();
}

pub fn scoped_is_fine() -> i32 {
    // scope.spawn is the sanctioned pattern and must not fire.
    std::thread::scope(|scope| scope.spawn(|| 2 + 2).join().unwrap_or(0))
}
