//! Fixture: every no-panic-paths token fires exactly once, on the line
//! numbers the integration test pins down.

pub fn unwrap_site(x: Option<u32>) -> u32 {
    x.unwrap() // line 5
}

pub fn expect_site(x: Option<u32>) -> u32 {
    x.expect("boom") // line 9
}

pub fn panic_site() {
    panic!("boom"); // line 13
}

pub fn unreachable_site() {
    unreachable!(); // line 17
}

pub fn todo_site() {
    todo!() // line 21
}
