//! Fixture: an escape hatch WITHOUT a justification must be rejected —
//! the bare allow is itself a violation, and it does not suppress the
//! panic it decorates.

pub fn bare(x: Option<u32>) -> u32 {
    // darlint: allow(panic)
    x.unwrap() // line 7
}
