//! Fixture: every durable-io token, one per line, outside the allowlist.

use std::path::Path;

pub fn read_raw(p: &Path) -> Vec<u8> {
    std::fs::read(p).unwrap_or_default()
}

pub fn open_raw(p: &Path) -> Option<File> {
    File::open(p).ok()
}

pub fn create_raw(p: &Path) -> Option<File> {
    File::create(p).ok()
}

pub fn append_raw(p: &Path) -> Option<File> {
    OpenOptions::new().append(true).open(p).ok()
}

// In a string or comment the tokens are inert: "std::fs", File::open.
pub const DOC: &str = "never call std::fs or File::create here";

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_touch_the_fs() {
        let _ = std::fs::read("/dev/null");
    }
}
