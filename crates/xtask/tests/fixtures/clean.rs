//! Fixture: an entirely clean hot-path file — typed errors, scoped
//! threads, injected time. Zero diagnostics expected.

/// Typed error instead of a panic.
pub fn safe_head(xs: &[f32]) -> Result<f32, String> {
    xs.first().copied().ok_or_else(|| "empty slice".to_owned())
}

/// Deterministic ordering without partial_cmp().expect().
pub fn sort_times(ts: &mut [f64]) {
    ts.sort_by(|a, b| a.total_cmp(b));
}

/// Time injected by the caller, never read from the wall clock.
pub fn stale(now: f64, stamped: f64, horizon: f64) -> bool {
    now - stamped > horizon
}
