//! Fixture: a crate root missing two of the three required inner
//! attributes (only unsafe_code is denied).

#![deny(unsafe_code)]

pub fn not_ok() {}
