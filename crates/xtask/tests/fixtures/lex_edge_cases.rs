//! Lexer fixture: constructs that defeat line-oriented scanners. Every
//! pattern-looking token below is inside a comment, string, char
//! literal, or test-gated region — a correct scanner reports nothing.

/* outer /* nested block /* deeper */ comment */ hides x.unwrap() */

/// Doc text mentioning panic!("not real"), Instant::now(), vec![0; 9].
pub fn decoys() -> usize {
    let raw = r##"raw string: .unwrap() and .expect("boom") and "quotes""##;
    let hash_free = r"no hashes, still raw: thread::spawn(|| {})";
    let quote = '"';
    let escaped = "escaped \" quote then .to_vec() text";
    raw.len() + hash_free.len() + escaped.len() + quote.len_utf8()
}

/// A multi-line signature followed by a multi-line call chain: token
/// streams must survive both.
pub fn multi_line(
    first: &[u32],
    second: &[u32],
) -> usize {
    first
        .iter()
        .chain(second.iter())
        .filter(|&&v| v > 0)
        .count()
}

macro_rules! passthrough {
    ($($t:tt)*) => { $($t)* };
}

passthrough! {
    #[cfg(test)]
    mod tests {
        #[test]
        fn gated_by_cfg_test_inside_a_macro() {
            // Test code may unwrap freely.
            assert_eq!(Some(3).unwrap(), 3);
        }
    }
}
