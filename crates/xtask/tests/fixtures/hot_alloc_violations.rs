//! Fixture: allocating tokens fire only inside hot-marked functions.

// darlint: hot
fn hot_path(xs: &[f32]) -> Vec<f32> {
    let t = Tensor::zeros(&[4]);
    let v = vec![0.0f32; 4];
    let c: Vec<f32> = xs.iter().copied().collect();
    let d = xs.to_vec();
    let _ = (t, v, c);
    d
}

fn cold_path(xs: &[f32]) -> Vec<f32> {
    xs.to_vec()
}
