//! Order fixture: justified hash use on an order-sensitive path.

/// Membership probe only — never iterated, so order cannot leak.
pub fn contains(xs: &[u32], probe: u32) -> bool {
    // darlint: allow(order) — membership probe only; the set is never iterated
    let mut seen = std::collections::HashSet::new();
    for &x in xs {
        seen.insert(x);
    }
    seen.contains(&probe)
}
