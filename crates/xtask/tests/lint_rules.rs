//! Integration tests for darlint: each fixture under `tests/fixtures/`
//! exercises one rule, and the assertions pin the exact (rule, line)
//! pairs so a scanner regression cannot silently widen or narrow a rule.

use xtask::rules::{check_crate_root, lint_file, rule, FileLint, Violation};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

/// (rule, line) pairs, sorted, for compact comparisons.
fn fired(lint: &FileLint) -> Vec<(&'static str, usize)> {
    let mut v: Vec<_> = lint.violations.iter().map(|x| (x.rule, x.line)).collect();
    v.sort_unstable();
    v
}

#[test]
fn panic_tokens_fire_exactly_where_expected() {
    let lint = lint_file("crates/nn/src/fixture.rs", &fixture("panic_violations.rs"));
    assert_eq!(
        fired(&lint),
        vec![
            (rule::PANIC, 5),  // .unwrap()
            (rule::PANIC, 9),  // .expect(
            (rule::PANIC, 13), // panic!
            (rule::PANIC, 17), // unreachable!
            (rule::PANIC, 21), // todo!
        ]
    );
}

#[test]
fn panic_rule_only_applies_to_hot_path_crates() {
    let lint = lint_file("crates/sim/src/fixture.rs", &fixture("panic_violations.rs"));
    assert!(
        lint.violations.is_empty(),
        "sim is not a hot-path crate: {:?}",
        lint.violations
    );
}

#[test]
fn comments_strings_docs_and_test_code_never_fire() {
    let lint = lint_file("crates/tensor/src/fixture.rs", &fixture("panic_clean.rs"));
    assert!(lint.violations.is_empty(), "{:?}", lint.violations);
    assert_eq!(lint.allowed, 0, "nothing should even need an allow");
}

#[test]
fn time_rule_fires_outside_allowlist_only() {
    let src = fixture("time_violation.rs");
    let lint = lint_file("crates/core/src/fixture.rs", &src);
    assert_eq!(fired(&lint), vec![(rule::TIME, 6), (rule::TIME, 10)]);
    // The same source inside the allowlist is clean.
    for allowed in [
        "crates/collect/src/runtime.rs",
        "crates/collect/src/live.rs",
        "crates/collect/src/loadgen.rs",
        "crates/bench/src/bin/bench_parallel.rs",
        "crates/bench/src/bin/bench_fleet.rs",
    ] {
        let lint = lint_file(allowed, &src);
        assert!(
            lint.violations.iter().all(|v| v.rule != rule::TIME),
            "{allowed} must be allowlisted: {:?}",
            lint.violations
        );
    }
}

#[test]
fn loadgen_time_grant_does_not_leak_to_siblings() {
    // `loadgen.rs` owns the one wall-clock surface (the timed bench
    // wrapper); the grant is a single file, so its sibling shard module
    // and the rest of collect are still held to deterministic time.
    let src = fixture("time_violation.rs");
    let lint = lint_file("crates/collect/src/shard.rs", &src);
    assert_eq!(fired(&lint), vec![(rule::TIME, 6), (rule::TIME, 10)]);
    let lint = lint_file("crates/collect/src/controller.rs", &src);
    assert_eq!(fired(&lint), vec![(rule::TIME, 6), (rule::TIME, 10)]);
}

#[test]
fn durable_io_fires_per_token_outside_allowlist() {
    let src = fixture("durable_io_violation.rs");
    let lint = lint_file("crates/collect/src/fixture.rs", &src);
    assert_eq!(
        fired(&lint),
        vec![
            (rule::DURABLE_IO, 6),  // std::fs
            (rule::DURABLE_IO, 10), // File::open
            (rule::DURABLE_IO, 14), // File::create
            (rule::DURABLE_IO, 18), // OpenOptions::new
        ]
    );
    // The sanctioned durable-I/O owners may touch the filesystem freely.
    for allowed in [
        "crates/collect/src/wal.rs",
        "crates/core/src/model_io.rs",
        "crates/core/src/experiment.rs",
        "crates/bench/src/bin/bench_chaos.rs",
        "crates/xtask/src/lib.rs",
    ] {
        let lint = lint_file(allowed, &src);
        assert!(
            lint.violations.iter().all(|v| v.rule != rule::DURABLE_IO),
            "{allowed} must be allowlisted: {:?}",
            lint.violations
        );
    }
}

#[test]
fn durable_io_hatch_uses_the_io_short_name() {
    let src = "fn probe(p: &std::path::Path) -> bool {\n    // darlint: allow(io) — feature probe at startup, not durable state\n    std::fs::metadata(p).is_ok()\n}\n";
    let lint = lint_file("crates/collect/src/fixture.rs", src);
    assert!(lint.violations.is_empty(), "{:?}", lint.violations);
    assert_eq!(lint.allowed, 1);
}

#[test]
fn wal_module_is_held_to_the_deterministic_time_rule() {
    // The WAL is a durable-I/O owner but *not* a time owner: replay must
    // be deterministic, so wall-clock reads there are violations.
    let src = fixture("time_violation.rs");
    let lint = lint_file("crates/collect/src/wal.rs", &src);
    assert_eq!(fired(&lint), vec![(rule::TIME, 6), (rule::TIME, 10)]);
}

#[test]
fn thread_rule_fires_on_detached_spawn_not_scoped() {
    let src = fixture("thread_violation.rs");
    let lint = lint_file("crates/collect/src/fixture.rs", &src);
    assert_eq!(fired(&lint), vec![(rule::THREAD, 4)]);
    // In the sanctioned concurrency owners the same spawn is tolerated —
    // including the sharded controller's parallel drain.
    for allowed in [
        "crates/tensor/src/parallel.rs",
        "crates/collect/src/shard.rs",
    ] {
        let lint = lint_file(allowed, &src);
        assert!(
            lint.violations.iter().all(|v| v.rule != rule::THREAD),
            "{allowed} must be a thread owner: {:?}",
            lint.violations
        );
    }
    // The thread grant is per-file too: loadgen is a time owner but NOT
    // a thread owner, so a detached spawn there still fires.
    let lint = lint_file("crates/collect/src/loadgen.rs", &src);
    assert_eq!(fired(&lint), vec![(rule::THREAD, 4)]);
}

#[test]
fn justified_hatch_suppresses_both_positions() {
    let lint = lint_file("crates/nn/src/fixture.rs", &fixture("hatch_good.rs"));
    assert!(lint.violations.is_empty(), "{:?}", lint.violations);
    assert_eq!(lint.allowed, 2, "both hatches must be counted");
}

#[test]
fn bare_hatch_is_rejected_and_does_not_suppress() {
    let lint = lint_file("crates/nn/src/fixture.rs", &fixture("hatch_bare.rs"));
    assert_eq!(
        fired(&lint),
        vec![
            (rule::BARE_ALLOW, 6), // the unjustified allow itself
            (rule::PANIC, 7),      // and the unwrap it failed to cover
        ]
    );
    assert_eq!(lint.allowed, 0);
}

#[test]
fn hatch_for_wrong_rule_does_not_suppress() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    // darlint: allow(time) — wrong rule name\n    x.unwrap()\n}\n";
    let lint = lint_file("crates/nn/src/fixture.rs", src);
    assert_eq!(fired(&lint), vec![(rule::PANIC, 3)]);
}

#[test]
fn hot_alloc_fixture_fires_inside_hot_fn_and_spares_cold_fn() {
    let lint = lint_file(
        "crates/tensor/src/fixture.rs",
        &fixture("hot_alloc_violations.rs"),
    );
    assert_eq!(
        fired(&lint),
        vec![
            (rule::HOT_ALLOC, 5), // Tensor::zeros
            (rule::HOT_ALLOC, 6), // vec!
            (rule::HOT_ALLOC, 7), // .collect()
            (rule::HOT_ALLOC, 8), // .to_vec()
        ]
    );
}

#[test]
fn hot_alloc_hatches_suppress_trailing_and_own_line_positions() {
    let lint = lint_file(
        "crates/tensor/src/fixture.rs",
        &fixture("hot_alloc_hatched.rs"),
    );
    assert!(lint.violations.is_empty(), "{:?}", lint.violations);
    assert_eq!(lint.allowed, 2, "both hatches must be counted");
}

#[test]
fn propagation_flags_two_hop_cross_file_alloc() {
    // The ISSUE's acceptance fixture: a hot root in one file, an unmarked
    // allocating helper two hops away in another. The call-graph pass
    // must flag the allocation site and name the whole chain.
    let files = vec![
        (
            "crates/tensor/src/prop_root.rs".to_owned(),
            fixture("propagate_root.rs"),
        ),
        (
            "crates/tensor/src/prop_helpers.rs".to_owned(),
            fixture("propagate_helpers.rs"),
        ),
    ];
    let report = xtask::lint_workspace(&files);
    let hits: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == rule::HOT_PROPAGATE)
        .collect();
    assert_eq!(hits.len(), 1, "{:?}", report.violations);
    assert_eq!(hits[0].file, "crates/tensor/src/prop_helpers.rs");
    assert_eq!(hits[0].line, 10); // the vec! in alloc_helper
    assert!(
        hits[0]
            .message
            .contains("transform_into → mid_helper → alloc_helper"),
        "diagnostic must name the full chain: {}",
        hits[0].message
    );
}

#[test]
fn propagation_stops_at_a_cold_marker() {
    // Same pair of files, but the first hop carries a justified cold
    // marker: traversal prunes there and the allocation is not reached.
    let helpers = fixture("propagate_helpers.rs").replace(
        "pub fn mid_helper",
        "// darlint: cold — fixture: pruned from traversal\npub fn mid_helper",
    );
    let files = vec![
        (
            "crates/tensor/src/prop_root.rs".to_owned(),
            fixture("propagate_root.rs"),
        ),
        ("crates/tensor/src/prop_helpers.rs".to_owned(), helpers),
    ];
    let report = xtask::lint_workspace(&files);
    assert!(
        report
            .violations
            .iter()
            .all(|v| v.rule != rule::HOT_PROPAGATE),
        "{:?}",
        report.violations
    );
}

#[test]
fn nondet_order_fires_on_order_paths_only() {
    let src = fixture("nondet_order_violation.rs");
    let lint = lint_file("crates/collect/src/wire.rs", &src);
    assert_eq!(
        fired(&lint),
        vec![
            (rule::ORDER, 2),  // use ... HashMap
            (rule::ORDER, 5),  // HashMap in the signature
            (rule::ORDER, 7),  // counts.iter()
            (rule::ORDER, 15), // HashSet initializer
        ]
    );
    // The same source off the order-sensitive paths is clean.
    let lint = lint_file("crates/nn/src/fixture.rs", &src);
    assert!(
        lint.violations.iter().all(|v| v.rule != rule::ORDER),
        "{:?}",
        lint.violations
    );
}

#[test]
fn nondet_order_hatch_uses_the_order_short_name() {
    let lint = lint_file(
        "crates/collect/src/wire.rs",
        &fixture("nondet_order_hatched.rs"),
    );
    assert!(lint.violations.is_empty(), "{:?}", lint.violations);
    assert_eq!(lint.allowed, 1);
    assert_eq!(lint.allows.get("order"), Some(&1));
}

#[test]
fn lexer_edge_cases_never_fire() {
    // Nested block comments, raw strings, char literals, multi-line
    // items, and a cfg(test) module delivered through a macro: none of
    // the pattern-looking text inside them is real code.
    let src = fixture("lex_edge_cases.rs");
    for path in [
        "crates/tensor/src/fixture.rs",
        "crates/nn/src/fixture.rs",
        "crates/collect/src/fixture.rs",
    ] {
        let lint = lint_file(path, &src);
        assert!(lint.violations.is_empty(), "{path}: {:?}", lint.violations);
    }
}

#[test]
fn hygiene_good_root_is_clean_bad_root_lists_each_missing_attr() {
    let good = check_crate_root("crates/nn/src/lib.rs", &fixture("hygiene_good.rs"));
    assert!(good.violations.is_empty(), "{:?}", good.violations);

    let bad = check_crate_root("crates/nn/src/lib.rs", &fixture("hygiene_bad.rs"));
    assert_eq!(bad.violations.len(), 2);
    assert!(bad.violations.iter().all(|v| v.rule == rule::HYGIENE));
    let missing: Vec<&str> = bad.violations.iter().map(|v| v.message.as_str()).collect();
    assert!(missing.iter().any(|m| m.contains("missing_docs")));
    assert!(missing.iter().any(|m| m.contains("rust_2018_idioms")));
}

#[test]
fn clean_file_is_clean_everywhere() {
    let src = fixture("clean.rs");
    for path in [
        "crates/tensor/src/fixture.rs",
        "crates/nn/src/fixture.rs",
        "crates/core/src/fixture.rs",
        "crates/collect/src/fixture.rs",
    ] {
        let lint = lint_file(path, &src);
        assert!(lint.violations.is_empty(), "{path}: {:?}", lint.violations);
    }
}

#[test]
fn violations_carry_snippets_and_stable_fields() {
    let lint = lint_file("crates/nn/src/fixture.rs", &fixture("panic_violations.rs"));
    let v: &Violation = &lint.violations[0];
    assert_eq!(v.file, "crates/nn/src/fixture.rs");
    assert!(v.snippet.contains("x.unwrap()"));
    assert!(v.message.contains(".unwrap()"));
}

#[test]
fn whole_workspace_lint_is_clean() {
    // The acceptance bar for this PR: the real tree has zero violations.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(std::path::Path::to_path_buf)
        .unwrap_or_else(|| panic!("workspace root not found"));
    let report = xtask::run_lint(&root).unwrap_or_else(|e| panic!("lint failed to run: {e}"));
    assert!(
        report.is_clean(),
        "workspace has darlint violations:\n{}",
        report.render_human()
    );
    assert!(report.files_scanned > 50, "suspiciously few files scanned");
}

#[test]
fn committed_ratchet_baseline_is_not_regressed() {
    // Mirrors the CI gate: the live run's per-rule and per-hatch counts
    // must not exceed the committed darlint.ratchet.json. Paying debt
    // *down* is fine (CI reports it as available tightening).
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(std::path::Path::to_path_buf)
        .unwrap_or_else(|| panic!("workspace root not found"));
    let text = std::fs::read_to_string(root.join("darlint.ratchet.json"))
        .unwrap_or_else(|e| panic!("cannot read committed ratchet baseline: {e}"));
    let baseline = xtask::ratchet::Ratchet::parse(&text)
        .unwrap_or_else(|e| panic!("committed ratchet baseline is malformed: {e}"));
    let report = xtask::run_lint(&root).unwrap_or_else(|e| panic!("lint failed to run: {e}"));
    let current = xtask::ratchet::Ratchet::from_report(&report);
    let delta = xtask::ratchet::compare(&baseline, &current);
    assert!(
        delta.regressions.is_empty(),
        "lint debt above the committed baseline (fix it or re-baseline with \
         `cargo run -p xtask -- lint --write-ratchet darlint.ratchet.json`):\n{}",
        delta.regressions.join("\n")
    );
}
