//! Property-based tests for the darlint lexer: whatever mix of code,
//! comments, strings, and blank lines a source file holds, every token
//! must carry the 1-based line number of the line it started on.

use proptest::prelude::*;
use xtask::lex::{lex, TokKind};

/// One generated source line paired with whether it contributes a
/// trackable marker token (`mk<N>` idents are unique per line, so each
/// can be asserted against the line it was printed on).
#[derive(Debug, Clone)]
enum Line {
    /// `let mkN = V;` — carries the marker `mkN`.
    Code(u32),
    /// A `//` comment mentioning decoy tokens.
    Comment,
    /// A string literal statement with decoy content (no marker).
    Str,
    /// An empty line.
    Blank,
}

fn line_strategy() -> impl Strategy<Value = Line> {
    (0u32..4, any::<u32>()).prop_map(|(kind, v)| match kind {
        0 => Line::Code(v),
        1 => Line::Comment,
        2 => Line::Str,
        _ => Line::Blank,
    })
}

proptest! {
    #[test]
    fn tokens_carry_the_line_they_started_on(lines in prop::collection::vec(line_strategy(), 0..40)) {
        let mut source = String::new();
        // expected marker ident -> 1-based line number
        let mut expected: Vec<(String, usize)> = Vec::new();
        for (i, line) in lines.iter().enumerate() {
            let lineno = i + 1;
            match line {
                Line::Code(v) => {
                    let marker = format!("mk{lineno}");
                    source.push_str(&format!("let {marker} = {v};\n"));
                    expected.push((marker, lineno));
                }
                Line::Comment => source.push_str("// decoy .unwrap() vec![9]\n"),
                Line::Str => source.push_str("s(\"decoy \\\" panic!(x)\");\n"),
                Line::Blank => source.push('\n'),
            }
        }
        let lexed = lex(&source);
        for (marker, lineno) in &expected {
            let tok = lexed
                .tokens
                .iter()
                .find(|t| t.kind == TokKind::Ident && t.text == *marker)
                .unwrap_or_else(|| panic!("marker {marker} not lexed"));
            prop_assert_eq!(tok.line, *lineno, "marker {} on wrong line", marker);
        }
        // And no token may claim a line beyond the source's line count.
        let line_count = lines.len().max(1);
        for t in &lexed.tokens {
            prop_assert!(t.line >= 1 && t.line <= line_count);
        }
    }

    #[test]
    fn multi_line_strings_do_not_desync_line_numbers(
        pre in 0usize..5, inner in 0usize..5, post in 0usize..5,
    ) {
        // A string spanning `inner + 1` lines, surrounded by marker lines:
        // the token after the string must land on the right line.
        let mut source = String::new();
        for _ in 0..pre {
            source.push_str("before();\n");
        }
        source.push_str("let s = \"");
        source.push_str(&"line\n".repeat(inner));
        source.push_str("end\";\n");
        for _ in 0..post {
            source.push_str("after();\n");
        }
        source.push_str("let sentinel = 1;\n");
        let sentinel_line = pre + inner + 1 + post + 1;
        let lexed = lex(&source);
        let tok = lexed
            .tokens
            .iter()
            .find(|t| t.is_ident("sentinel"))
            .unwrap_or_else(|| panic!("sentinel not lexed"));
        prop_assert_eq!(tok.line, sentinel_line);
    }
}
