//! Lexical scanner underpinning every darlint rule.
//!
//! Rules must only ever match *executable* tokens, so the scanner produces
//! a **masked** copy of the source in which comments, string literals, and
//! char literals are blanked out (replaced by spaces, newlines preserved —
//! byte offsets and line numbers stay identical to the original). Line
//! comments are additionally captured verbatim so the escape-hatch scan
//! can inspect them, and `#[cfg(test)]`-gated regions are resolved to line
//! ranges so test-only code is exempt from the hot-path rules.

/// A line comment (`// ...`) captured during masking.
#[derive(Debug, Clone)]
pub struct LineComment {
    /// 1-based line on which the comment starts.
    pub line: usize,
    /// Full comment text including the leading `//`.
    pub text: String,
    /// Whether the comment is the only token on its line.
    pub own_line: bool,
}

/// The result of scanning one source file.
#[derive(Debug)]
pub struct ScannedFile {
    /// Source with comments/strings/chars blanked; same length and line
    /// structure as the original.
    pub masked: String,
    /// Original source lines (for diagnostics snippets).
    pub lines: Vec<String>,
    /// All `//` comments, in file order.
    pub comments: Vec<LineComment>,
    /// `is_test_line[i]` is true when 1-based line `i + 1` sits inside a
    /// `#[cfg(test)]`-gated item.
    pub is_test_line: Vec<bool>,
}

/// Scans `source`, masking non-code bytes and resolving test regions.
pub fn scan(source: &str) -> ScannedFile {
    let (masked, comments) = mask(source);
    let lines: Vec<String> = source.lines().map(str::to_owned).collect();
    let is_test_line = test_lines(&masked, lines.len());
    ScannedFile {
        masked,
        lines,
        comments,
        is_test_line,
    }
}

/// Replaces every byte of comments, string literals, and char literals
/// with a space (newlines kept), collecting line comments on the side.
fn mask(source: &str) -> (String, Vec<LineComment>) {
    let bytes = source.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut comments = Vec::new();
    let mut line = 1usize;
    let mut line_had_code = false;
    let mut i = 0usize;

    // Pushes a masked byte: newlines survive so offsets stay stable.
    fn blank(out: &mut Vec<u8>, b: u8) {
        out.push(if b == b'\n' { b'\n' } else { b' ' });
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                out.push(b'\n');
                line += 1;
                line_had_code = false;
                i += 1;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                let start = i;
                let start_line = line;
                while i < bytes.len() && bytes[i] != b'\n' {
                    blank(&mut out, bytes[i]);
                    i += 1;
                }
                comments.push(LineComment {
                    line: start_line,
                    text: source[start..i].to_owned(),
                    own_line: !line_had_code,
                });
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let mut depth = 1usize;
                blank(&mut out, bytes[i]);
                blank(&mut out, bytes[i + 1]);
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        blank(&mut out, bytes[i]);
                        blank(&mut out, bytes[i + 1]);
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        blank(&mut out, bytes[i]);
                        blank(&mut out, bytes[i + 1]);
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                            line_had_code = false;
                        }
                        blank(&mut out, bytes[i]);
                        i += 1;
                    }
                }
            }
            b'"' => {
                line_had_code = true;
                i = mask_plain_string(bytes, i, &mut out, &mut line);
            }
            b'r' | b'b' if starts_raw_string(bytes, i) => {
                line_had_code = true;
                i = mask_raw_string(bytes, i, &mut out, &mut line);
            }
            b'b' if i + 1 < bytes.len() && bytes[i + 1] == b'\'' => {
                line_had_code = true;
                out.push(b'b');
                i = mask_char_literal(bytes, i + 1, &mut out);
            }
            b'b' if i + 1 < bytes.len() && bytes[i + 1] == b'"' => {
                line_had_code = true;
                out.push(b'b');
                i = mask_plain_string(bytes, i + 1, &mut out, &mut line);
            }
            b'\'' => {
                line_had_code = true;
                if is_char_literal(bytes, i) {
                    i = mask_char_literal(bytes, i, &mut out);
                } else {
                    // A lifetime (`'a`) — code, keep it.
                    out.push(b);
                    i += 1;
                }
            }
            _ => {
                if !b.is_ascii_whitespace() {
                    line_had_code = true;
                }
                out.push(b);
                i += 1;
            }
        }
    }
    // Masking only ever replaces bytes with ASCII spaces/newlines at char
    // boundaries, so the result is still valid UTF-8.
    let masked = String::from_utf8_lossy(&out).into_owned();
    (masked, comments)
}

/// Does `bytes[i..]` begin a raw (byte) string literal, e.g. `r"`, `r#"`,
/// `br##"`?
fn starts_raw_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
        if j >= bytes.len() || bytes[j] != b'r' {
            return false;
        }
    }
    if bytes[j] != b'r' {
        return false;
    }
    j += 1;
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'"'
}

/// Masks a raw string starting at `i`; returns the index just past it.
fn mask_raw_string(bytes: &[u8], mut i: usize, out: &mut Vec<u8>, line: &mut usize) -> usize {
    // Prefix: optional `b`, `r`, then `#`s.
    while bytes[i] != b'"' {
        out.push(bytes[i]);
        i += 1;
    }
    let hashes = {
        let mut h = 0usize;
        let mut k = i;
        while k > 0 && bytes[k - 1] == b'#' {
            h += 1;
            k -= 1;
        }
        h
    };
    // Opening quote.
    out.push(b' ');
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut ok = true;
            for k in 0..hashes {
                if i + 1 + k >= bytes.len() || bytes[i + 1 + k] != b'#' {
                    ok = false;
                    break;
                }
            }
            if ok {
                out.push(b' ');
                for _ in 0..hashes {
                    out.push(b' ');
                }
                return i + 1 + hashes;
            }
        }
        if bytes[i] == b'\n' {
            *line += 1;
        }
        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
        i += 1;
    }
    i
}

/// Masks a `"..."` string starting at the quote; returns the index past
/// the closing quote.
fn mask_plain_string(bytes: &[u8], mut i: usize, out: &mut Vec<u8>, line: &mut usize) -> usize {
    out.push(b' '); // opening quote
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if i + 1 < bytes.len() => {
                out.push(b' ');
                out.push(if bytes[i + 1] == b'\n' { b'\n' } else { b' ' });
                if bytes[i + 1] == b'\n' {
                    *line += 1;
                }
                i += 2;
            }
            b'"' => {
                out.push(b' ');
                return i + 1;
            }
            b'\n' => {
                *line += 1;
                out.push(b'\n');
                i += 1;
            }
            _ => {
                out.push(b' ');
                i += 1;
            }
        }
    }
    i
}

/// Is the `'` at `i` a char literal (vs. a lifetime)?
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    if i + 1 >= bytes.len() {
        return false;
    }
    if bytes[i + 1] == b'\\' {
        return true;
    }
    // `'x'` (any single char then a closing quote) is a literal; `'a` with
    // no closing quote is a lifetime. Multi-byte chars: find the next
    // quote within a few bytes.
    for k in 2..=5 {
        if i + k < bytes.len() && bytes[i + k] == b'\'' {
            return true;
        }
        if i + k < bytes.len() && !is_continuation_or_start(bytes[i + k]) {
            return false;
        }
    }
    false
}

fn is_continuation_or_start(b: u8) -> bool {
    b >= 0x80 || b.is_ascii_alphanumeric()
}

/// Masks a char literal starting at the opening `'`; returns the index
/// past the closing quote.
fn mask_char_literal(bytes: &[u8], mut i: usize, out: &mut Vec<u8>) -> usize {
    out.push(b' '); // opening quote
    i += 1;
    if i < bytes.len() && bytes[i] == b'\\' {
        out.push(b' ');
        i += 1;
        if i < bytes.len() {
            out.push(b' ');
            i += 1;
            // `\x41` / `\u{...}` escapes: consume until the quote.
            while i < bytes.len() && bytes[i] != b'\'' {
                out.push(b' ');
                i += 1;
            }
        }
    } else {
        while i < bytes.len() && bytes[i] != b'\'' {
            out.push(b' ');
            i += 1;
        }
    }
    if i < bytes.len() {
        out.push(b' '); // closing quote
        i += 1;
    }
    i
}

/// Computes, from the masked source, which lines sit inside a
/// `#[cfg(test)]`-gated item (attribute line through the item's closing
/// brace or terminating semicolon).
fn test_lines(masked: &str, line_count: usize) -> Vec<bool> {
    let mut flags = vec![false; line_count];
    let bytes = masked.as_bytes();
    let mut search = 0usize;
    while let Some(rel) = masked[search..].find("#[cfg(") {
        let attr_start = search + rel;
        // Read the balanced `(...)` content of the cfg predicate.
        let paren_open = attr_start + "#[cfg".len();
        let Some(paren_end) = matching(bytes, paren_open, b'(', b')') else {
            break;
        };
        let predicate = &masked[paren_open + 1..paren_end];
        let gated = predicate
            .split(|c: char| !c.is_alphanumeric() && c != '_')
            .any(|w| w == "test");
        // Close of the whole `#[...]` attribute.
        let Some(attr_end) = masked[paren_end..].find(']').map(|p| paren_end + p) else {
            break;
        };
        search = attr_end + 1;
        if !gated {
            continue;
        }
        let start_line = line_of(bytes, attr_start);
        // Skip any further attributes, then find the item's extent: the
        // matching brace of its first `{`, or a top-level `;`.
        let mut j = attr_end + 1;
        loop {
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if j + 1 < bytes.len() && bytes[j] == b'#' && bytes[j + 1] == b'[' {
                match matching(bytes, j + 1, b'[', b']') {
                    Some(close) => j = close + 1,
                    None => break,
                }
            } else {
                break;
            }
        }
        let mut end = None;
        let mut k = j;
        while k < bytes.len() {
            match bytes[k] {
                b'{' => {
                    end = matching(bytes, k, b'{', b'}');
                    break;
                }
                b';' => {
                    end = Some(k);
                    break;
                }
                _ => k += 1,
            }
        }
        if let Some(end) = end {
            let end_line = line_of(bytes, end);
            for l in start_line..=end_line {
                if l >= 1 && l <= line_count {
                    flags[l - 1] = true;
                }
            }
            search = end + 1;
        }
    }
    flags
}

/// Index of the byte's 1-based line.
pub(crate) fn line_of(bytes: &[u8], pos: usize) -> usize {
    1 + bytes[..pos].iter().filter(|&&b| b == b'\n').count()
}

/// Finds the index of the delimiter matching `open` at `start`.
pub(crate) fn matching(bytes: &[u8], start: usize, open: u8, close: u8) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = start;
    while i < bytes.len() {
        if bytes[i] == open {
            depth += 1;
        } else if bytes[i] == close {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_block_comments() {
        let s = scan("let x = 1; // trailing .unwrap()\n/* block\npanic! */ let y = 2;\n");
        assert!(!s.masked.contains("unwrap"));
        assert!(!s.masked.contains("panic"));
        assert!(s.masked.contains("let y = 2;"));
        assert_eq!(s.comments.len(), 1);
        assert!(!s.comments[0].own_line);
    }

    #[test]
    fn masks_strings_and_chars_keeps_lifetimes() {
        let s = scan("fn f<'a>(x: &'a str) { let c = 'x'; let m = \".unwrap()\"; }\n");
        assert!(!s.masked.contains(".unwrap()"));
        assert!(s.masked.contains("fn f<'a>"));
    }

    #[test]
    fn masks_raw_strings() {
        let s = scan("let p = r#\"panic!(\"boom\")\"#;\nlet q = 3;\n");
        assert!(!s.masked.contains("panic"));
        assert!(s.masked.contains("let q = 3;"));
    }

    #[test]
    fn cfg_test_mod_lines_flagged() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let s = scan(src);
        assert_eq!(s.is_test_line, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_semicolon_item() {
        let src = "#[cfg(test)]\nmod tests;\nfn live() {}\n";
        let s = scan(src);
        assert_eq!(s.is_test_line, vec![true, true, false]);
    }

    #[test]
    fn cfg_all_test_counts_as_test() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nfn helper() {\n}\nfn live() {}\n";
        let s = scan(src);
        assert_eq!(s.is_test_line, vec![true, true, true, false]);
    }

    #[test]
    fn cfg_not_test_is_not_gated() {
        let src = "#[cfg(feature = \"testing\")]\nfn live() { x.unwrap() }\n";
        let s = scan(src);
        assert_eq!(s.is_test_line, vec![false, false]);
    }
}
