//! File scanner underpinning every darlint rule: lexes the source into
//! tokens ([`crate::lex`]), parses the item structure ([`crate::parse`]),
//! and resolves the `// darlint: hot` / `// darlint: cold` function
//! markers so the rules (and the call-graph pass) operate on a uniform
//! per-file view.
//!
//! Because rules match *tokens* — never raw text — comments, string
//! literals (plain, raw, byte), and char literals can never trigger a
//! diagnostic, and matching is whitespace/newline-insensitive: a call
//! chain split across lines, or a turbofish like
//! `.collect::<Vec<_>>()`, matches the same as its compact spelling.

use crate::lex::{lex, LineComment, Token};
use crate::parse::{parse, test_line_flags, FnItem};

/// One function with its darlint markers resolved.
#[derive(Debug)]
pub struct FnInfo {
    /// The parsed item.
    pub item: FnItem,
    /// Annotated with an own-line `// darlint: hot` marker: the author
    /// claims this function is on the zero-alloc inference path.
    pub hot: bool,
    /// Annotated with `// darlint: cold — <reason>`: explicitly *off*
    /// the hot path; call-graph propagation does not traverse into it.
    pub cold: bool,
    /// Annotated with an own-line `// darlint: pure-root` marker: the
    /// author declares this function a replay-purity contract root —
    /// everything transitively reachable from it must be free of the
    /// nondeterminism effects (`replay-pure` rule).
    pub pure_root: bool,
}

/// The result of scanning one source file.
#[derive(Debug)]
pub struct ScannedFile {
    /// Code tokens (comments and literal *contents* excluded).
    pub tokens: Vec<Token>,
    /// Original source lines (for diagnostics snippets).
    pub lines: Vec<String>,
    /// All `//` comments, in file order.
    pub comments: Vec<LineComment>,
    /// `is_test_line[i]` is true when 1-based line `i + 1` sits inside a
    /// `#[cfg(test)]`-gated item (or a `#[test]` function).
    pub is_test_line: Vec<bool>,
    /// Every `fn` item with markers attached.
    pub fns: Vec<FnInfo>,
}

/// Scans `source`: lex, parse, resolve markers and test regions.
pub fn scan(source: &str) -> ScannedFile {
    let lexed = lex(source);
    let parsed = parse(&lexed);
    let lines: Vec<String> = source.lines().map(str::to_owned).collect();
    let is_test_line = test_line_flags(&parsed, lines.len());

    let mut fns: Vec<FnInfo> = parsed
        .fns
        .into_iter()
        .map(|item| FnInfo {
            item,
            hot: false,
            cold: false,
            pure_root: false,
        })
        .collect();
    // A marker annotates the nearest `fn` item declared after it
    // (attributes and other modifiers may sit in between).
    for c in lexed.comments.iter().filter(|c| c.own_line) {
        let is_hot = is_hot_marker(c);
        let is_cold = parse_cold_marker(c).is_some();
        let is_pure = is_pure_root_marker(c);
        if !is_hot && !is_cold && !is_pure {
            continue;
        }
        if let Some(f) = fns
            .iter_mut()
            .filter(|f| f.item.line > c.line)
            .min_by_key(|f| f.item.line)
        {
            if is_hot {
                f.hot = true;
            } else if is_cold {
                f.cold = true;
            } else {
                f.pure_root = true;
            }
        }
    }

    ScannedFile {
        tokens: lexed.tokens,
        lines,
        comments: lexed.comments,
        is_test_line,
        fns,
    }
}

/// Is this comment a `// darlint: hot` marker?
pub(crate) fn is_hot_marker(c: &LineComment) -> bool {
    let body = c.text.trim_start_matches('/').trim();
    body.strip_prefix("darlint:")
        .is_some_and(|rest| rest.trim() == "hot")
}

/// Is this comment a `// darlint: pure-root` marker? Like `hot`, the
/// marker is a contract declaration (not debt), so it carries no reason.
pub(crate) fn is_pure_root_marker(c: &LineComment) -> bool {
    let body = c.text.trim_start_matches('/').trim();
    body.strip_prefix("darlint:")
        .is_some_and(|rest| rest.trim() == "pure-root")
}

/// Parses a `// darlint: cold — <reason>` marker. Returns
/// `Some(has_reason)` when the comment is a cold marker at all, so a
/// bare `// darlint: cold` can be rejected like a bare allow.
pub(crate) fn parse_cold_marker(c: &LineComment) -> Option<bool> {
    let body = c.text.trim_start_matches('/').trim();
    let rest = body.strip_prefix("darlint:")?.trim();
    let tail = rest.strip_prefix("cold")?;
    if !tail.is_empty() && !tail.starts_with([' ', '\t', '—', '-']) {
        return None; // e.g. `darlint: coldness` is not a marker
    }
    let tail = tail.trim();
    let reason = tail
        .strip_prefix('—')
        .or_else(|| tail.strip_prefix('-'))
        .map(|r| r.trim_start_matches('-').trim());
    Some(reason.is_some_and(|r| !r.is_empty()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_produce_no_tokens() {
        let s =
            scan("let x = 1; // trailing .unwrap()\n/* block\npanic! */ let y = \".unwrap()\";\n");
        assert!(!s.tokens.iter().any(|t| t.text == "unwrap"));
        assert!(!s.tokens.iter().any(|t| t.text == "panic"));
        assert_eq!(s.comments.len(), 1);
        assert!(!s.comments[0].own_line);
    }

    #[test]
    fn hot_marker_attaches_to_next_fn_only() {
        let src = "\
fn cold_before() {}

// darlint: hot
pub fn warm(&self) {}

fn cold_after() {}
";
        let s = scan(src);
        let flags: Vec<(String, bool)> =
            s.fns.iter().map(|f| (f.item.name.clone(), f.hot)).collect();
        assert_eq!(
            flags,
            vec![
                ("cold_before".into(), false),
                ("warm".into(), true),
                ("cold_after".into(), false),
            ]
        );
    }

    #[test]
    fn hot_marker_skips_attributes_between_marker_and_fn() {
        let src = "// darlint: hot\n#[inline]\nfn warm() {}\n";
        let s = scan(src);
        assert!(s.fns[0].hot);
    }

    #[test]
    fn cold_marker_resolves() {
        let src = "// darlint: cold — diagnostics formatting, never on the inference path\nfn fmt_report() {}\n";
        let s = scan(src);
        assert!(s.fns[0].cold);
        assert!(!s.fns[0].hot);
    }

    #[test]
    fn cold_marker_reason_parse() {
        let with = LineComment {
            line: 1,
            text: "// darlint: cold — startup only".into(),
            own_line: true,
        };
        let without = LineComment {
            line: 1,
            text: "// darlint: cold".into(),
            own_line: true,
        };
        let not_marker = LineComment {
            line: 1,
            text: "// darlint: coldness".into(),
            own_line: true,
        };
        assert_eq!(parse_cold_marker(&with), Some(true));
        assert_eq!(parse_cold_marker(&without), Some(false));
        assert_eq!(parse_cold_marker(&not_marker), None);
    }

    #[test]
    fn trailing_marker_is_not_attached() {
        // Markers must be own-line; a trailing `// darlint: hot` is inert.
        let src = "fn a() {} // darlint: hot\nfn b() {}\n";
        let s = scan(src);
        assert!(s.fns.iter().all(|f| !f.hot));
    }

    #[test]
    fn cfg_test_regions_resolved() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let s = scan(src);
        assert_eq!(s.is_test_line, vec![false, true, true, true, true, false]);
    }
}
