//! Rendering of lint results: human-readable diagnostics and the JSON
//! report consumed by CI.
//!
//! The JSON report is deterministic and diffable: violations are sorted
//! by `(file, line, rule)` before rendering, map keys are emitted in
//! sorted order, and `schema_version` gates consumers. Version 2 added
//! the per-hatch `allows` object (the ratchet's debt currency).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::rules::Violation;

/// JSON report schema version.
pub const SCHEMA_VERSION: usize = 2;

/// Aggregated outcome of a full workspace lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Every diagnostic, in (file, line, rule) order.
    pub violations: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Matches suppressed by justified escape hatches.
    pub allowed: usize,
    /// Suppressions by hatch name (`panic`, `hot-alloc`, `order`, ...).
    pub allows: BTreeMap<String, usize>,
    /// Per-pass wall-clock timings in microseconds, in execution order.
    /// Rendered to stderr (human output) only — never into the JSON
    /// report, which must stay byte-identical across runs.
    pub timings: Vec<(&'static str, u128)>,
}

impl LintReport {
    /// Whether the run is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable diagnostics, one block per violation plus a summary
    /// line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(
                out,
                "darlint[{}] {}:{}: {}",
                v.rule, v.file, v.line, v.message
            );
            if !v.snippet.is_empty() {
                let _ = writeln!(out, "    {}", v.snippet);
            }
        }
        let _ = writeln!(
            out,
            "darlint: {} violation(s), {} justified allow(s), {} file(s) scanned",
            self.violations.len(),
            self.allowed,
            self.files_scanned
        );
        if !self.timings.is_empty() {
            let total: u128 = self.timings.iter().map(|(_, us)| us).sum();
            let parts: Vec<String> = self
                .timings
                .iter()
                .map(|(name, us)| format!("{name} {:.1}ms", *us as f64 / 1000.0))
                .collect();
            let _ = writeln!(
                out,
                "darlint: pass timings: {} (total {:.1}ms)",
                parts.join(", "),
                total as f64 / 1000.0
            );
        }
        out
    }

    /// The JSON report (stable schema, sorted keys — byte-identical for
    /// identical runs).
    pub fn render_json(&self) -> String {
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for v in &self.violations {
            *counts.entry(v.rule).or_insert(0) += 1;
        }
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"tool\": \"darlint\",");
        let _ = writeln!(out, "  \"schema_version\": {SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"allowed\": {},", self.allowed);
        out.push_str("  \"allows\": {");
        for (i, (hatch, n)) in self.allows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {n}", json_str(hatch));
        }
        if !self.allows.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n");
        out.push_str("  \"counts\": {");
        for (i, (rule, n)) in counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{rule}\": {n}");
        }
        if !counts.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n");
        out.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"snippet\": {}}}",
                json_str(v.rule),
                json_str(&v.file),
                v.line,
                json_str(&v.message),
                json_str(&v.snippet)
            );
        }
        if !self.violations.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes a string as a JSON literal.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::rule;

    fn sample() -> LintReport {
        let mut allows = BTreeMap::new();
        allows.insert("panic".to_owned(), 2);
        LintReport {
            violations: vec![Violation {
                rule: rule::PANIC,
                file: "crates/nn/src/a.rs".into(),
                line: 3,
                message: "`.unwrap()` — no".into(),
                snippet: "x.unwrap()".into(),
            }],
            files_scanned: 7,
            allowed: 2,
            allows,
            timings: Vec::new(),
        }
    }

    #[test]
    fn human_mentions_rule_file_line() {
        let h = sample().render_human();
        assert!(h.contains("darlint[no-panic-paths] crates/nn/src/a.rs:3"));
        assert!(h.contains("1 violation(s), 2 justified allow(s), 7 file(s) scanned"));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let j = sample().render_json();
        assert!(j.contains("\"schema_version\": 2"));
        assert!(j.contains("\"no-panic-paths\": 1"));
        assert!(j.contains("\"files_scanned\": 7"));
        assert!(j.contains("\"panic\": 2"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn json_is_deterministic() {
        assert_eq!(sample().render_json(), sample().render_json());
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
