//! # xtask — workspace maintenance tasks
//!
//! Home of **darlint**, the in-repo invariant lint pass (`cargo run -p
//! xtask -- lint`). darlint is a self-contained, std-only lexical static
//! analysis over `crates/*/src` that machine-checks the project invariants
//! documented in DESIGN.md §11:
//!
//! * **no-panic-paths** — `.unwrap()`, `.expect(`, `panic!`,
//!   `unreachable!`, `todo!` are forbidden in non-`#[cfg(test)]` code of
//!   the hot-path crates (`tensor`, `nn`, `core`, `collect`); typed errors
//!   must be threaded instead. Escape hatch:
//!   `// darlint: allow(panic) — <reason>` (a justification is mandatory).
//! * **deterministic-time** — `Instant::now` / `SystemTime::now` only in
//!   the runtime allowlist (`collect::runtime`, `collect::live`, `bench`).
//! * **scoped-threads-only** — `thread::spawn` is forbidden outside the
//!   `Parallelism`/`MicroBatcher` allowlist; concurrency goes through
//!   `std::thread::scope`.
//! * **crate-hygiene** — every crate root carries
//!   `#![deny(unsafe_code)]`, `#![deny(missing_docs)]`, and
//!   `#![warn(rust_2018_idioms)]`.
//! * **hot-alloc** — inside any function annotated with an own-line
//!   `// darlint: hot` marker, the allocating constructs
//!   `Tensor::zeros`, `vec!`, `.collect()`, and `.to_vec()` are
//!   forbidden; hot code checks buffers out of a
//!   `darnet_tensor::Workspace` or writes through an `_into` kernel.
//!   Cold branches (error construction, first-call growth) use
//!   `// darlint: allow(hot-alloc) — <reason>`.
//! * **durable-io** — `std::fs` / `File::open` / `File::create` /
//!   `OpenOptions::new` only in the durable-I/O owners (`collect::wal`,
//!   `core::model_io`, `core::experiment`, `bench`, `xtask`); everything
//!   else persists through a `WalStorage` so crash recovery stays
//!   testable against `MemStorage`. Escape hatch:
//!   `// darlint: allow(io) — <reason>`.
//!
//! The pass is *lexical*: it scans masked source (comments, strings, and
//! char literals blanked out — see [`scan`]), so it is fast, dependency
//! free, and deliberately conservative. Semantic cousins of these rules
//! (`clippy::unwrap_used` et al.) run in the same tier-1 gate and catch
//! what a lexical pass cannot; darlint catches what clippy does not model
//! (allowlists, justification-bearing escape hatches, attribute hygiene).

#![deny(unsafe_code)]
#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod report;
pub mod rules;
pub mod scan;

use std::fs;
use std::path::{Path, PathBuf};

use report::LintReport;
use rules::{check_crate_root, lint_file};

/// Runs the full darlint pass over the workspace rooted at `root`
/// (the directory containing the top-level `Cargo.toml` and `crates/`).
///
/// # Errors
///
/// Returns a message when the workspace layout cannot be read.
pub fn run_lint(root: &Path) -> Result<LintReport, String> {
    let crates_dir = root.join("crates");
    let mut report = LintReport::default();
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    for crate_dir in &crate_dirs {
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        // Crate root: lib.rs when present, else main.rs (binary-only
        // crates).
        let root_file = if src.join("lib.rs").is_file() {
            Some(src.join("lib.rs"))
        } else if src.join("main.rs").is_file() {
            Some(src.join("main.rs"))
        } else {
            None
        };
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for file in files {
            let rel = relative(root, &file);
            let source = fs::read_to_string(&file)
                .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
            let lint = lint_file(&rel, &source);
            report.violations.extend(lint.violations);
            report.allowed += lint.allowed;
            report.files_scanned += 1;
            if root_file.as_deref() == Some(file.as_path()) {
                report
                    .violations
                    .extend(check_crate_root(&rel, &source).violations);
            }
        }
    }
    report
        .violations
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// Locates the workspace root: `CARGO_MANIFEST_DIR/../..` when invoked via
/// cargo, else walks up from the current directory looking for a
/// `Cargo.toml` with a `[workspace]` table.
pub fn find_root() -> Result<PathBuf, String> {
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(manifest);
        if let Some(root) = p.ancestors().nth(2) {
            if root.join("Cargo.toml").is_file() {
                return Ok(root.to_owned());
            }
        }
    }
    let mut dir = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = fs::read_to_string(&manifest).unwrap_or_default();
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace root found above the current directory".into());
        }
    }
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for entry in fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))? {
        let path = entry
            .map_err(|e| format!("cannot read entry in {}: {e}", dir.display()))?
            .path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with `/` separators.
fn relative(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
