//! # xtask — workspace maintenance tasks
//!
//! Home of **darlint**, the in-repo invariant lint pass (`cargo run -p
//! xtask -- lint`). darlint is a self-contained, std-only static
//! analyzer over `crates/*/src` that machine-checks the project
//! invariants documented in DESIGN.md §11 and §15:
//!
//! * **no-panic-paths** — `.unwrap()`, `.expect(`, `panic!`,
//!   `unreachable!`, `todo!` are forbidden in non-`#[cfg(test)]` code of
//!   the hot-path crates (`tensor`, `nn`, `core`, `collect`, `xtask`);
//!   typed errors must be threaded instead. Escape hatch:
//!   `// darlint: allow(panic) — <reason>` (a justification is mandatory).
//! * **deterministic-time** — `Instant::now` / `SystemTime::now` only in
//!   the runtime allowlist (`collect::runtime`, `collect::live`, `bench`).
//! * **scoped-threads-only** — `thread::spawn` is forbidden outside the
//!   `Parallelism`/`MicroBatcher` allowlist; concurrency goes through
//!   `std::thread::scope`.
//! * **crate-hygiene** — every crate root carries
//!   `#![deny(unsafe_code)]`, `#![deny(missing_docs)]`, and
//!   `#![warn(rust_2018_idioms)]`.
//! * **hot-alloc** — inside any function annotated with an own-line
//!   `// darlint: hot` marker, the allocating constructs
//!   `Tensor::zeros`, `vec!`, `.collect()` (turbofish included), and
//!   `.to_vec()` are forbidden; hot code checks buffers out of a
//!   `darnet_tensor::Workspace` or writes through an `_into` kernel.
//! * **hot-propagate** — the workspace call graph ([`callgraph`]) walks
//!   from every hot root (`// darlint: hot` markers and the `*_into`
//!   entries in `tensor`/`nn`) and applies the same no-alloc constraint
//!   to every function *transitively reachable*, closing the
//!   unmarked-helper hole. `// darlint: cold — <reason>` prunes a
//!   function out of the traversal.
//! * **nondet-order** — `HashMap`/`HashSet` (declaration or iteration)
//!   are banned on the order-sensitive paths (digests, fingerprints,
//!   WAL replay, wire encoding, reports) where nondeterministic
//!   iteration order would break bitwise reproducibility.
//! * **durable-io** — `std::fs` / `File::open` / `File::create` /
//!   `OpenOptions::new` only in the durable-I/O owners (`collect::wal`,
//!   `core::model_io`, `core::experiment`, `bench`, and xtask's two I/O
//!   surfaces); everything else persists through a `WalStorage` so crash
//!   recovery stays testable against `MemStorage`.
//! * **rng-confined** — seeded-PRNG construction and use (`SplitMix64`)
//!   only in the randomness owners (sim, loadgen, fault injection,
//!   weight init, training-time randomness); everything else receives
//!   randomness as data, keeping the storage/replay/digest/wire layer
//!   RNG-free by construction.
//! * **replay-pure** — functions transitively reachable from a
//!   `// darlint: pure-root` marker (WAL replay, `state_digest`,
//!   `canonical_fingerprint*`, `metrics::compare`) must be free of
//!   Time/Io/Rng/ThreadSpawn/HashOrder effects; diagnostics carry the
//!   full root-to-site call chain. Built on the interprocedural effect
//!   inference in [`effects`], which also powers the `effects`
//!   subcommand (`cargo run -p xtask -- effects [--explain <fn>]`) and
//!   the deterministic `effects.json` artifact.
//!
//! The pass operates on a real token stream ([`lex`]) and parsed item
//! structure ([`parse`]): comments, strings, and char literals can never
//! match, call chains split across lines still match, and `cfg(test)`
//! regions (including `#[cfg(not(test))]`, which is *not* test-gated)
//! resolve correctly. Semantic cousins of these rules
//! (`clippy::unwrap_used` et al.) run in the same tier-1 gate and catch
//! what name-level analysis cannot; darlint catches what clippy does not
//! model (allowlists, justification-bearing escape hatches, attribute
//! hygiene, transitive hot-path constraints, the ratchet).

#![deny(unsafe_code)]
#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod callgraph;
pub mod effects;
pub mod lex;
pub mod parse;
pub mod ratchet;
pub mod report;
pub mod rules;
pub mod scan;

use std::fs;
use std::path::{Path, PathBuf};

use report::LintReport;
use rules::{check_crate_root, lint_scanned};
use scan::{scan, ScannedFile};

/// Runs the full darlint pass over the workspace rooted at `root`
/// (the directory containing the top-level `Cargo.toml` and `crates/`).
///
/// # Errors
///
/// Returns a message when the workspace layout cannot be read.
pub fn run_lint(root: &Path) -> Result<LintReport, String> {
    Ok(lint_workspace(&workspace_sources(root)?))
}

/// Runs the effect-inference analysis over the workspace rooted at
/// `root` (the `effects` subcommand's core).
///
/// # Errors
///
/// Returns a message when the workspace layout cannot be read.
pub fn run_effects(root: &Path) -> Result<effects::Analysis, String> {
    Ok(effects_workspace(&workspace_sources(root)?))
}

/// Reads every `crates/*/src/**/*.rs` file under `root` in sorted order
/// as `(workspace-relative path, source)` pairs.
fn workspace_sources(root: &Path) -> Result<Vec<(String, String)>, String> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut files: Vec<(String, String)> = Vec::new();
    for crate_dir in &crate_dirs {
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut paths = Vec::new();
        collect_rs_files(&src, &mut paths)?;
        paths.sort();
        for file in paths {
            let rel = relative(root, &file);
            let source = fs::read_to_string(&file)
                .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
            files.push((rel, source));
        }
    }
    Ok(files)
}

/// Lints a workspace presented as `(workspace-relative path, source)`
/// pairs: per-file rules, crate-root hygiene, and the cross-file
/// call-graph propagation pass. This is the pure core of [`run_lint`];
/// tests feed it synthetic multi-file inputs directly.
pub fn lint_workspace(files: &[(String, String)]) -> LintReport {
    // Wall-clock each pass so analyzer cost regressions are visible in
    // the human output (stderr); the timings never enter the JSON
    // report, which must stay byte-identical across runs.
    let mut timer = PassTimer::start();
    let mut report = LintReport::default();
    let scanned: Vec<(String, ScannedFile)> = files
        .iter()
        .map(|(path, source)| (path.clone(), scan(source)))
        .collect();
    timer.lap("scan");

    for (path, sc) in &scanned {
        let lint = lint_scanned(path, sc);
        merge(&mut report, lint);
        report.files_scanned += 1;
        if is_crate_root(path, files) {
            // Hygiene is cheap; re-using the raw source keeps the
            // token-window check simple.
            if let Some((_, source)) = files.iter().find(|(p, _)| p == path) {
                merge(&mut report, check_crate_root(path, source));
            }
        }
    }
    timer.lap("file-rules");

    let graph = callgraph::Graph::build(&scanned);
    timer.lap("callgraph");
    let seeds = effects::lexical_sites(&graph, &scanned);
    timer.lap("effect-seeds");
    merge(
        &mut report,
        callgraph::hot_propagate(&graph, &scanned, &seeds),
    );
    timer.lap("hot-propagate");
    merge(&mut report, effects::replay_pure(&graph, &scanned, &seeds));
    timer.lap("replay-pure");

    report
        .violations
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report.timings = timer.laps;
    report
}

/// Runs the effect-inference analysis over a workspace presented as
/// `(workspace-relative path, source)` pairs. This is the pure core of
/// [`run_effects`]; tests feed it synthetic multi-file inputs directly.
pub fn effects_workspace(files: &[(String, String)]) -> effects::Analysis {
    let scanned: Vec<(String, ScannedFile)> = files
        .iter()
        .map(|(path, source)| (path.clone(), scan(source)))
        .collect();
    effects::analyze(&scanned)
}

/// Accumulates named per-pass wall-clock laps (microseconds).
struct PassTimer {
    laps: Vec<(&'static str, u128)>,
    last: std::time::Instant,
}

impl PassTimer {
    fn start() -> PassTimer {
        PassTimer {
            laps: Vec::new(),
            last: std::time::Instant::now(),
        }
    }

    fn lap(&mut self, name: &'static str) {
        let now = std::time::Instant::now();
        self.laps
            .push((name, now.duration_since(self.last).as_micros()));
        self.last = now;
    }
}

/// Is `path` the crate root for its crate: `src/lib.rs`, or `src/main.rs`
/// when the crate has no `lib.rs`?
fn is_crate_root(path: &str, files: &[(String, String)]) -> bool {
    if path.ends_with("/src/lib.rs") {
        return true;
    }
    if let Some(prefix) = path.strip_suffix("/src/main.rs") {
        let lib = format!("{prefix}/src/lib.rs");
        return !files.iter().any(|(p, _)| *p == lib);
    }
    false
}

/// Folds a per-file result into the workspace report.
fn merge(report: &mut LintReport, lint: rules::FileLint) {
    report.violations.extend(lint.violations);
    report.allowed += lint.allowed;
    for (hatch, n) in lint.allows {
        *report.allows.entry(hatch).or_insert(0) += n;
    }
}

/// Locates the workspace root: `CARGO_MANIFEST_DIR/../..` when invoked via
/// cargo, else walks up from the current directory looking for a
/// `Cargo.toml` with a `[workspace]` table.
pub fn find_root() -> Result<PathBuf, String> {
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(manifest);
        if let Some(root) = p.ancestors().nth(2) {
            if root.join("Cargo.toml").is_file() {
                return Ok(root.to_owned());
            }
        }
    }
    let mut dir = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = fs::read_to_string(&manifest).unwrap_or_default();
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace root found above the current directory".into());
        }
    }
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for entry in fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))? {
        let path = entry
            .map_err(|e| format!("cannot read entry in {}: {e}", dir.display()))?
            .path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with `/` separators.
fn relative(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
