//! The darlint rule set and its application to scanned files.
//!
//! Policy lives here as data (`POLICY`); DESIGN.md §11 is the prose
//! counterpart. Every rule is lexical: it matches tokens in the masked
//! source produced by [`crate::scan`], so comments, strings, and char
//! literals can never trigger a diagnostic.

use crate::scan::{scan, LineComment, ScannedFile};

/// Machine-readable rule identifiers (stable: they appear in JSON reports
/// and escape-hatch comments).
pub mod rule {
    /// `.unwrap()` / `.expect(` / `panic!` / `unreachable!` / `todo!` in
    /// non-test hot-path code.
    pub const PANIC: &str = "no-panic-paths";
    /// `Instant::now` / `SystemTime::now` outside the runtime allowlist.
    pub const TIME: &str = "deterministic-time";
    /// `thread::spawn` outside the `Parallelism`/`MicroBatcher` allowlist.
    pub const THREAD: &str = "scoped-threads-only";
    /// Crate roots missing the required inner attributes.
    pub const HYGIENE: &str = "crate-hygiene";
    /// An escape-hatch comment without a justification.
    pub const BARE_ALLOW: &str = "bare-allow";
    /// Allocating constructs inside a function annotated `// darlint: hot`
    /// (the zero-alloc inference path).
    pub const HOT_ALLOC: &str = "hot-alloc";
    /// Direct filesystem access (`std::fs`, `File::open`, ...) outside the
    /// sanctioned durable-I/O owners.
    pub const DURABLE_IO: &str = "durable-io";
}

/// Crates whose non-test code must be panic-free (the inference and
/// collection hot paths).
pub const PANIC_CRATES: &[&str] = &["tensor", "nn", "core", "collect"];

/// Tokens forbidden by [`rule::PANIC`].
pub const PANIC_TOKENS: &[&str] = &[".unwrap()", ".expect(", "panic!", "unreachable!", "todo!"];

/// Tokens forbidden by [`rule::TIME`].
pub const TIME_TOKENS: &[&str] = &["Instant::now", "SystemTime::now"];

/// Tokens forbidden by [`rule::THREAD`].
pub const THREAD_TOKENS: &[&str] = &["thread::spawn"];

/// Tokens forbidden by [`rule::HOT_ALLOC`] inside `// darlint: hot`
/// functions. Each one heap-allocates on the success path of the steady
/// state; hot code must go through workspace checkouts and the `_into`
/// kernels instead. (Error-path `format!`/`.into()` construction is
/// deliberately not banned — errors are the cold path by definition.)
pub const HOT_ALLOC_TOKENS: &[&str] = &["Tensor::zeros", "vec!", ".collect()", ".to_vec()"];

/// Files (workspace-relative, `/`-separated) or path prefixes where
/// wall-clock reads are legitimate: the live collection layer and the
/// benchmark harness. The WAL (`collect::wal`) is deliberately *not*
/// here: durability code must be replayable, so it receives time as data
/// (arrival stamps) rather than reading a clock.
/// `collect::loadgen` is here for exactly one surface: the
/// `run_fleet_timed` bench wrapper that wall-clocks a whole fleet run.
/// The fleet simulation itself is event-driven virtual time.
pub const TIME_ALLOWLIST: &[&str] = &[
    "crates/collect/src/runtime.rs",
    "crates/collect/src/live.rs",
    "crates/collect/src/loadgen.rs",
    "crates/bench/",
];

/// Tokens forbidden by [`rule::DURABLE_IO`].
pub const DURABLE_IO_TOKENS: &[&str] =
    &["std::fs", "File::open", "File::create", "OpenOptions::new"];

/// Files or path prefixes sanctioned to touch the filesystem: the WAL's
/// directory storage backend, model/experiment persistence, the bench
/// harness, and xtask itself. Everything else must route durable state
/// through a `WalStorage` (so tests can substitute `MemStorage` and
/// crash-recovery stays simulable).
pub const DURABLE_IO_ALLOWLIST: &[&str] = &[
    "crates/collect/src/wal.rs",
    "crates/core/src/model_io.rs",
    "crates/core/src/experiment.rs",
    "crates/bench/",
    "crates/xtask/",
];

/// Files where `thread::spawn` would be legitimate. The sanctioned
/// concurrency owners use `std::thread::scope` exclusively today
/// (`shard.rs` drains its shard queues on scoped workers), so the
/// allowlist exists to keep future spawns confined to them.
pub const THREAD_ALLOWLIST: &[&str] = &[
    "crates/tensor/src/parallel.rs",
    "crates/core/src/batching.rs",
    "crates/collect/src/shard.rs",
];

/// Inner attributes every crate root must carry.
pub const REQUIRED_ROOT_ATTRS: &[&str] = &[
    "#![deny(unsafe_code)]",
    "#![deny(missing_docs)]",
    "#![warn(rust_2018_idioms)]",
];

/// One diagnostic produced by the lint pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier (one of the [`rule`] constants).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// Per-file lint outcome.
#[derive(Debug, Default)]
pub struct FileLint {
    /// Diagnostics for this file.
    pub violations: Vec<Violation>,
    /// Number of matches suppressed by a justified escape hatch.
    pub allowed: usize,
}

/// A parsed `// darlint: allow(<rule>) — <reason>` comment.
struct Hatch {
    line: usize,
    own_line: bool,
    rule: String,
    has_reason: bool,
}

/// Parses an escape-hatch comment, if the comment is one.
fn parse_hatch(c: &LineComment) -> Option<Hatch> {
    let body = c.text.trim_start_matches('/').trim();
    let rest = body.strip_prefix("darlint:")?.trim();
    let rest = rest.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_owned();
    let tail = rest[close + 1..].trim();
    // A justification must follow an em-dash or hyphen separator.
    let reason = tail
        .strip_prefix('—')
        .or_else(|| tail.strip_prefix('-'))
        .map(|r| r.trim_start_matches('-').trim());
    let has_reason = reason.is_some_and(|r| !r.is_empty());
    Some(Hatch {
        line: c.line,
        own_line: c.own_line,
        rule,
        has_reason,
    })
}

/// Short escape-hatch rule names accepted in `allow(...)`.
fn hatch_name(rule_id: &str) -> &'static str {
    match rule_id {
        rule::PANIC => "panic",
        rule::TIME => "time",
        rule::THREAD => "thread",
        rule::HOT_ALLOC => "hot-alloc",
        rule::DURABLE_IO => "io",
        _ => "",
    }
}

/// Is this comment a `// darlint: hot` marker (annotating the next `fn`
/// as part of the zero-alloc inference path)?
fn is_hot_marker(c: &LineComment) -> bool {
    let body = c.text.trim_start_matches('/').trim();
    body.strip_prefix("darlint:")
        .is_some_and(|rest| rest.trim() == "hot")
}

/// Byte offset of the start of 1-based `line` in `text`.
fn offset_of_line(text: &str, line: usize) -> usize {
    if line <= 1 {
        return 0;
    }
    let mut count = 1usize;
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' {
            count += 1;
            if count == line {
                return i + 1;
            }
        }
    }
    text.len()
}

/// Body byte-range `(open_brace, close_brace)` of the first function
/// declared after a `// darlint: hot` marker on `marker_line`.
fn hot_fn_body(masked: &str, marker_line: usize) -> Option<(usize, usize)> {
    let bytes = masked.as_bytes();
    let from = offset_of_line(masked, marker_line + 1);
    let mut search = from;
    let fn_pos = loop {
        let rel = masked[search..].find("fn")?;
        let pos = search + rel;
        search = pos + 2;
        let next_ok = bytes.get(pos + 2).is_some_and(u8::is_ascii_whitespace);
        if next_ok && !ident_before(masked, pos) {
            break pos;
        }
    };
    let open = fn_pos + masked[fn_pos..].find('{')?;
    let close = crate::scan::matching(bytes, open, b'{', b'}')?;
    Some((open, close))
}

/// Does `path` match the allowlist (exact file or directory prefix)?
fn allowlisted(path: &str, allowlist: &[&str]) -> bool {
    allowlist
        .iter()
        .any(|a| path == *a || (a.ends_with('/') && path.starts_with(a)))
}

/// Crate name for a `crates/<name>/src/...` path, if any.
fn crate_of(path: &str) -> Option<&str> {
    path.strip_prefix("crates/")?.split('/').next()
}

/// Is the byte before `pos` part of an identifier (which would make a
/// token match a substring of a longer name)?
fn ident_before(masked: &str, pos: usize) -> bool {
    if pos == 0 {
        return false;
    }
    let b = masked.as_bytes()[pos - 1];
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lints one file's token rules. `path` must be workspace-relative with
/// `/` separators (it selects which rules apply).
pub fn lint_file(path: &str, source: &str) -> FileLint {
    let scanned = scan(source);
    let hatches: Vec<Hatch> = scanned.comments.iter().filter_map(parse_hatch).collect();
    let mut out = FileLint::default();

    // Reject bare allows up front: an escape hatch without a reason is a
    // violation wherever it appears (even if it suppresses nothing).
    for h in &hatches {
        if !h.has_reason {
            out.violations.push(Violation {
                rule: rule::BARE_ALLOW,
                file: path.to_owned(),
                line: h.line,
                message: format!(
                    "darlint: allow({}) without a justification; write \
                     `// darlint: allow({}) — <reason>`",
                    h.rule, h.rule
                ),
                snippet: snippet(&scanned, h.line),
            });
        }
    }

    let panic_applies = crate_of(path).is_some_and(|c| PANIC_CRATES.contains(&c));
    let time_applies = !allowlisted(path, TIME_ALLOWLIST);
    let thread_applies = !allowlisted(path, THREAD_ALLOWLIST);
    let io_applies = !allowlisted(path, DURABLE_IO_ALLOWLIST);

    let mut checks: Vec<(&'static str, &[&str], String)> = Vec::new();
    if panic_applies {
        checks.push((
            rule::PANIC,
            PANIC_TOKENS,
            "panicking call in hot-path code; return a typed error instead".to_owned(),
        ));
    }
    if time_applies {
        checks.push((
            rule::TIME,
            TIME_TOKENS,
            "wall-clock read outside the runtime allowlist; inject time \
             through the clock abstraction"
                .to_owned(),
        ));
    }
    if thread_applies {
        checks.push((
            rule::THREAD,
            THREAD_TOKENS,
            "raw thread::spawn; use std::thread::scope under the \
             Parallelism policy"
                .to_owned(),
        ));
    }
    if io_applies {
        checks.push((
            rule::DURABLE_IO,
            DURABLE_IO_TOKENS,
            "direct filesystem access outside the durable-I/O owners; \
             route persistence through a WalStorage backend"
                .to_owned(),
        ));
    }

    for (rule_id, tokens, why) in checks {
        for token in tokens {
            let mut search = 0usize;
            while let Some(rel) = scanned.masked[search..].find(token) {
                let pos = search + rel;
                search = pos + token.len();
                // Boundary guard for tokens that start mid-identifier
                // (`panic!` must not match `my_panic!`); tokens that begin
                // with `.` are already anchored by the dot.
                let starts_ident = token
                    .as_bytes()
                    .first()
                    .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_');
                if starts_ident && ident_before(&scanned.masked, pos) {
                    continue;
                }
                let line = 1 + scanned.masked[..pos].matches('\n').count();
                if scanned.is_test_line.get(line - 1).copied().unwrap_or(false) {
                    continue;
                }
                if suppressed(&hatches, rule_id, line) {
                    out.allowed += 1;
                    continue;
                }
                out.violations.push(Violation {
                    rule: rule_id,
                    file: path.to_owned(),
                    line,
                    message: format!("`{token}` — {why}"),
                    snippet: snippet(&scanned, line),
                });
            }
        }
    }

    // hot-alloc: inside every function annotated `// darlint: hot`, the
    // allocating constructs are banned outright — the annotation is the
    // author's claim that the function is on the zero-alloc inference
    // path, and this rule keeps the claim honest.
    for marker in scanned
        .comments
        .iter()
        .filter(|c| c.own_line && is_hot_marker(c))
    {
        let Some((open, close)) = hot_fn_body(&scanned.masked, marker.line) else {
            continue;
        };
        let bytes = scanned.masked.as_bytes();
        for token in HOT_ALLOC_TOKENS {
            let region = &scanned.masked[open..close];
            let mut search = 0usize;
            while let Some(rel) = region[search..].find(token) {
                let pos = search + rel;
                search = pos + token.len();
                let abs = open + pos;
                let starts_ident = token
                    .as_bytes()
                    .first()
                    .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_');
                if starts_ident && ident_before(&scanned.masked, abs) {
                    continue;
                }
                let line = crate::scan::line_of(bytes, abs);
                if scanned.is_test_line.get(line - 1).copied().unwrap_or(false) {
                    continue;
                }
                if suppressed(&hatches, rule::HOT_ALLOC, line) {
                    out.allowed += 1;
                    continue;
                }
                out.violations.push(Violation {
                    rule: rule::HOT_ALLOC,
                    file: path.to_owned(),
                    line,
                    message: format!(
                        "`{token}` allocates inside a `// darlint: hot` function; \
                         use a workspace checkout or an `_into` kernel"
                    ),
                    snippet: snippet(&scanned, line),
                });
            }
        }
    }
    out
}

/// Is a match on `line` covered by a justified hatch for `rule_id` —
/// either trailing on the same line or on its own line directly above?
fn suppressed(hatches: &[Hatch], rule_id: &str, line: usize) -> bool {
    let name = hatch_name(rule_id);
    hatches.iter().any(|h| {
        h.has_reason && h.rule == name && (h.line == line || (h.own_line && h.line + 1 == line))
    })
}

/// Checks the crate-hygiene rule on a crate-root file.
pub fn check_crate_root(path: &str, source: &str) -> FileLint {
    let scanned = scan(source);
    let mut out = FileLint::default();
    for attr in REQUIRED_ROOT_ATTRS {
        if !scanned.masked.contains(attr) {
            out.violations.push(Violation {
                rule: rule::HYGIENE,
                file: path.to_owned(),
                line: 1,
                message: format!("crate root is missing the required inner attribute `{attr}`"),
                snippet: String::new(),
            });
        }
    }
    out
}

/// The offending line, trimmed, for diagnostics.
fn snippet(scanned: &ScannedFile, line: usize) -> String {
    scanned
        .lines
        .get(line - 1)
        .map(|l| l.trim().to_owned())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_rule_scoped_to_hot_path_crates() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(lint_file("crates/nn/src/a.rs", src).violations.len(), 1);
        assert_eq!(lint_file("crates/sim/src/a.rs", src).violations.len(), 0);
    }

    #[test]
    fn time_allowlist_honored() {
        let src = "fn t() { let _ = std::time::Instant::now(); }\n";
        assert_eq!(lint_file("crates/core/src/a.rs", src).violations.len(), 1);
        assert_eq!(
            lint_file("crates/collect/src/runtime.rs", src)
                .violations
                .len(),
            0
        );
        assert_eq!(
            lint_file("crates/bench/src/bin/b.rs", src).violations.len(),
            0
        );
    }

    #[test]
    fn durable_io_allowlist_honored() {
        let src = "fn w(p: &std::path::Path) { let _ = std::fs::read(p); }\n";
        assert_eq!(
            lint_file("crates/collect/src/tsdb.rs", src)
                .violations
                .len(),
            1
        );
        assert_eq!(
            lint_file("crates/collect/src/wal.rs", src).violations.len(),
            0
        );
        assert_eq!(
            lint_file("crates/bench/src/bin/b.rs", src).violations.len(),
            0
        );
        assert_eq!(
            lint_file("crates/xtask/src/lib.rs", src).violations.len(),
            0
        );
    }

    #[test]
    fn hatch_with_reason_suppresses_and_counts() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // darlint: allow(panic) — invariant: x is Some by construction\n    x.unwrap()\n}\n";
        let lint = lint_file("crates/tensor/src/a.rs", src);
        assert!(lint.violations.is_empty());
        assert_eq!(lint.allowed, 1);
    }

    #[test]
    fn bare_hatch_rejected() {
        let src =
            "fn f(x: Option<u32>) -> u32 {\n    // darlint: allow(panic)\n    x.unwrap()\n}\n";
        let lint = lint_file("crates/tensor/src/a.rs", src);
        let rules: Vec<_> = lint.violations.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&rule::BARE_ALLOW));
        assert!(rules.contains(&rule::PANIC));
    }

    #[test]
    fn hot_alloc_fires_only_inside_hot_functions() {
        let src = "\
fn cold() -> Vec<u32> { (0..4).collect() }

// darlint: hot
fn hot(t: &Tensor, ws: &mut Workspace) -> Vec<f32> {
    let x = Tensor::zeros(&[2, 2]);
    let v = vec![0.0f32; 4];
    let c: Vec<f32> = v.iter().copied().collect();
    t.data().to_vec()
}

fn also_cold() -> Vec<u32> { vec![1, 2] }
";
        let lint = lint_file("crates/tensor/src/a.rs", src);
        let lines: Vec<usize> = lint
            .violations
            .iter()
            .filter(|v| v.rule == rule::HOT_ALLOC)
            .map(|v| v.line)
            .collect();
        assert_eq!(lines, vec![5, 6, 7, 8], "zeros, vec!, collect, to_vec");
    }

    #[test]
    fn hot_alloc_hatch_suppresses() {
        let src = "\
// darlint: hot
fn hot(t: &Tensor) -> TensorError {
    // darlint: allow(hot-alloc) — error path, never taken warm
    let dims = t.dims().to_vec();
    TensorError::Shape(dims)
}
";
        let lint = lint_file("crates/tensor/src/a.rs", src);
        assert!(lint.violations.is_empty(), "{:?}", lint.violations);
        assert_eq!(lint.allowed, 1);
    }

    #[test]
    fn hot_marker_skips_fn_in_identifier_names() {
        // `fn` appearing inside an identifier between the marker and the
        // real function must not derail extent detection.
        let src = "\
// darlint: hot
pub fn hot_fn_like(defn_count: usize) -> usize {
    let v = vec![0u8; defn_count];
    v.len()
}
";
        let lint = lint_file("crates/tensor/src/a.rs", src);
        assert_eq!(lint.violations.len(), 1);
        assert_eq!(lint.violations[0].line, 3);
    }

    #[test]
    fn hygiene_flags_missing_attrs() {
        let good = "#![deny(unsafe_code)]\n#![deny(missing_docs)]\n#![warn(rust_2018_idioms)]\n";
        assert!(check_crate_root("crates/nn/src/lib.rs", good)
            .violations
            .is_empty());
        let bad = "#![deny(unsafe_code)]\n";
        assert_eq!(
            check_crate_root("crates/nn/src/lib.rs", bad)
                .violations
                .len(),
            2
        );
    }
}
