//! The darlint rule set and its application to scanned files.
//!
//! Policy lives here as data; DESIGN.md §11 and §15 are the prose
//! counterpart. Every rule matches the *token stream* produced by
//! [`crate::scan`], so comments, strings, and char literals can never
//! trigger a diagnostic, and matching is layout-insensitive: a call
//! split across lines or spelled with a turbofish
//! (`.collect::<Vec<_>>()`) matches the same as its compact form.

use std::collections::{BTreeMap, BTreeSet};

use crate::lex::{LineComment, TokKind, Token};
use crate::scan::{parse_cold_marker, scan, ScannedFile};

/// Machine-readable rule identifiers (stable: they appear in JSON reports,
/// escape-hatch comments, and the ratchet baseline).
pub mod rule {
    /// `.unwrap()` / `.expect(` / `panic!` / `unreachable!` / `todo!` in
    /// non-test hot-path code.
    pub const PANIC: &str = "no-panic-paths";
    /// `Instant::now` / `SystemTime::now` outside the runtime allowlist.
    pub const TIME: &str = "deterministic-time";
    /// `thread::spawn` outside the `Parallelism`/`MicroBatcher` allowlist.
    pub const THREAD: &str = "scoped-threads-only";
    /// Crate roots missing the required inner attributes.
    pub const HYGIENE: &str = "crate-hygiene";
    /// An escape-hatch comment (or `cold` marker) without a justification.
    pub const BARE_ALLOW: &str = "bare-allow";
    /// Allocating constructs inside a function annotated `// darlint: hot`
    /// (the zero-alloc inference path).
    pub const HOT_ALLOC: &str = "hot-alloc";
    /// Direct filesystem access (`std::fs`, `File::open`, ...) outside the
    /// sanctioned durable-I/O owners.
    pub const DURABLE_IO: &str = "durable-io";
    /// `HashMap`/`HashSet` (declaration or iteration) in an
    /// order-sensitive path: digests, fingerprints, replay, reports.
    pub const ORDER: &str = "nondet-order";
    /// Allocation (or panic, outside the panic-free crates) in a function
    /// *transitively reachable* from a hot root via the call graph.
    pub const HOT_PROPAGATE: &str = "hot-propagate";
    /// A nondeterminism effect (Time/Io/Rng/ThreadSpawn/HashOrder) on a
    /// path reachable from a `// darlint: pure-root` function: WAL
    /// replay, `state_digest`, `canonical_fingerprint*`, and
    /// `metrics::compare` must stay bitwise-reproducible.
    pub const REPLAY_PURE: &str = "replay-pure";
    /// Seeded PRNG construction or use outside the randomness owners
    /// (sim / loadgen / fault injection / initialization).
    pub const RNG_CONFINED: &str = "rng-confined";
}

/// Crates whose non-test code must be panic-free (the inference and
/// collection hot paths, plus the linter itself).
pub const PANIC_CRATES: &[&str] = &["tensor", "nn", "core", "collect", "xtask"];

/// Files (workspace-relative, `/`-separated) or path prefixes where
/// wall-clock reads are legitimate: the live collection layer and the
/// benchmark harness. The WAL (`collect::wal`) is deliberately *not*
/// here: durability code must be replayable, so it receives time as data
/// (arrival stamps) rather than reading a clock.
/// `collect::loadgen` is here for exactly one surface: the
/// `run_fleet_timed` bench wrapper that wall-clocks a whole fleet run.
/// The fleet simulation itself is event-driven virtual time.
pub const TIME_ALLOWLIST: &[&str] = &[
    "crates/collect/src/runtime.rs",
    "crates/collect/src/live.rs",
    "crates/collect/src/loadgen.rs",
    "crates/bench/",
    // The lint driver wall-clocks its own passes so analyzer cost
    // regressions are visible; timings go to stderr only, never into the
    // deterministic JSON artifacts.
    "crates/xtask/src/lib.rs",
];

/// Files or path prefixes sanctioned to touch the filesystem: the WAL's
/// directory storage backend, model/experiment persistence, the bench
/// harness, and the two xtask surfaces that genuinely do I/O (walking
/// the workspace; reading/writing reports and the ratchet baseline).
/// Everything else must route durable state through a `WalStorage` (so
/// tests can substitute `MemStorage` and crash-recovery stays simulable).
pub const DURABLE_IO_ALLOWLIST: &[&str] = &[
    "crates/collect/src/wal.rs",
    "crates/core/src/model_io.rs",
    "crates/core/src/experiment.rs",
    "crates/bench/",
    "crates/xtask/src/lib.rs",
    "crates/xtask/src/main.rs",
];

/// Files where `thread::spawn` would be legitimate. The sanctioned
/// concurrency owners use `std::thread::scope` exclusively today
/// (`shard.rs` drains its shard queues on scoped workers), so the
/// allowlist exists to keep future spawns confined to them.
pub const THREAD_ALLOWLIST: &[&str] = &[
    "crates/tensor/src/parallel.rs",
    "crates/core/src/batching.rs",
    "crates/collect/src/shard.rs",
];

/// The randomness owners: files or path prefixes where seeded-PRNG
/// construction and use (`SplitMix64`) is legitimate. Everything else
/// must receive randomness as data (a threaded-through `&mut
/// SplitMix64` or a pre-drawn value) from one of these owners, so the
/// storage/replay/digest/wire layer and the inference path stay
/// RNG-free by construction — the `rng-confined` rule enforces the
/// boundary lexically and the `replay-pure` rule catches transitive
/// leaks onto the contract paths.
pub const RNG_ALLOWLIST: &[&str] = &[
    // The PRNG itself plus the weight-initialization kernels.
    "crates/tensor/src/init.rs",
    // Synthetic driving-data generation is randomness by design.
    "crates/sim/",
    // Training-time randomness: dropout masks, epoch shuffles.
    "crates/nn/src/dropout.rs",
    "crates/nn/src/svm.rs",
    "crates/core/src/models/",
    // Data splits, label-noise fault injection, DP shuffling, and
    // seeded experiment/campaign setup.
    "crates/core/src/dataset.rs",
    "crates/core/src/privacy.rs",
    "crates/core/src/experiment.rs",
    // The collection-side simulation and fault-injection layer: sensor
    // jitter, lossy links, clock drift, session transports, fleet load.
    "crates/collect/src/agent.rs",
    "crates/collect/src/network.rs",
    "crates/collect/src/clock.rs",
    "crates/collect/src/runtime.rs",
    "crates/collect/src/loadgen.rs",
    // Seeded benchmark workloads.
    "crates/bench/",
];

/// Order-sensitive paths: files whose outputs must be bitwise
/// reproducible (digests, fingerprints, WAL replay, wire encoding,
/// deterministic reports). Unlike the allowlists above, the
/// `nondet-order` rule applies *on* these paths: hash-ordered
/// containers are banned there outright because their iteration order
/// varies run-to-run (`RandomState`) and silently breaks digest
/// equality. Everywhere else `HashMap` is fine.
pub const ORDER_PATHS: &[&str] = &[
    "crates/collect/src/tsdb.rs",
    "crates/collect/src/controller.rs",
    "crates/collect/src/shard.rs",
    "crates/collect/src/wal.rs",
    "crates/collect/src/wire.rs",
    "crates/collect/src/loadgen.rs",
    "crates/core/src/model_io.rs",
    "crates/core/src/experiment.rs",
    "crates/xtask/src/report.rs",
    "crates/xtask/src/ratchet.rs",
];

/// Container types banned by [`rule::ORDER`] on order-sensitive paths.
pub const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Iteration methods that surface a hash container's nondeterministic
/// order when called on a binding known to be hash-typed.
const ORDER_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
];

/// Inner attributes every crate root must carry (display form; matching
/// is token-based, see [`check_crate_root`]).
pub const REQUIRED_ROOT_ATTRS: &[&str] = &[
    "#![deny(unsafe_code)]",
    "#![deny(missing_docs)]",
    "#![warn(rust_2018_idioms)]",
];

/// `(level, name)` pairs for the required root attributes.
const ROOT_ATTRS: &[(&str, &str, &str)] = &[
    ("deny", "unsafe_code", "#![deny(unsafe_code)]"),
    ("deny", "missing_docs", "#![deny(missing_docs)]"),
    ("warn", "rust_2018_idioms", "#![warn(rust_2018_idioms)]"),
];

/// A token pattern one rule forbids.
#[derive(Clone, Copy)]
pub(crate) struct Pat {
    pub(crate) kind: PatKind,
    /// Canonical display form for diagnostics (e.g. `.unwrap()`).
    pub(crate) display: &'static str,
}

/// The shapes a forbidden construct can take.
#[derive(Clone, Copy)]
pub(crate) enum PatKind {
    /// `.name(...)` — a method call, turbofish-tolerant
    /// (`.collect::<Vec<_>>()` matches `collect`). With `empty_args`,
    /// the argument list must be `()`.
    Method {
        name: &'static str,
        empty_args: bool,
    },
    /// `a::b` — a `::`-joined path suffix (`std::time::Instant::now`
    /// matches `Instant::now`).
    Path(&'static [&'static str]),
    /// `name!` — a macro invocation.
    MacroCall(&'static str),
}

/// Constructs forbidden by [`rule::PANIC`].
pub(crate) const PANIC_PATS: &[Pat] = &[
    Pat {
        kind: PatKind::Method {
            name: "unwrap",
            empty_args: true,
        },
        display: ".unwrap()",
    },
    Pat {
        kind: PatKind::Method {
            name: "expect",
            empty_args: false,
        },
        display: ".expect(",
    },
    Pat {
        kind: PatKind::MacroCall("panic"),
        display: "panic!",
    },
    Pat {
        kind: PatKind::MacroCall("unreachable"),
        display: "unreachable!",
    },
    Pat {
        kind: PatKind::MacroCall("todo"),
        display: "todo!",
    },
];

/// Constructs forbidden by [`rule::TIME`].
pub(crate) const TIME_PATS: &[Pat] = &[
    Pat {
        kind: PatKind::Path(&["Instant", "now"]),
        display: "Instant::now",
    },
    Pat {
        kind: PatKind::Path(&["SystemTime", "now"]),
        display: "SystemTime::now",
    },
];

/// Constructs forbidden by [`rule::THREAD`].
pub(crate) const THREAD_PATS: &[Pat] = &[Pat {
    kind: PatKind::Path(&["thread", "spawn"]),
    display: "thread::spawn",
}];

/// Constructs that construct or advance the seeded PRNG
/// ([`rule::RNG_CONFINED`] outside [`RNG_ALLOWLIST`]; `Rng` effect
/// seeds everywhere). The method list mirrors `SplitMix64`'s public
/// API in `crates/tensor/src/init.rs`.
pub(crate) const RNG_PATS: &[Pat] = &[
    Pat {
        kind: PatKind::Path(&["SplitMix64", "new"]),
        display: "SplitMix64::new",
    },
    Pat {
        kind: PatKind::Method {
            name: "next_u64",
            empty_args: true,
        },
        display: ".next_u64()",
    },
    Pat {
        kind: PatKind::Method {
            name: "next_f32",
            empty_args: true,
        },
        display: ".next_f32()",
    },
    Pat {
        kind: PatKind::Method {
            name: "next_f64",
            empty_args: true,
        },
        display: ".next_f64()",
    },
    Pat {
        kind: PatKind::Method {
            name: "next_usize",
            empty_args: false,
        },
        display: ".next_usize(",
    },
    Pat {
        kind: PatKind::Method {
            name: "uniform",
            empty_args: false,
        },
        display: ".uniform(",
    },
    Pat {
        kind: PatKind::Method {
            name: "normal",
            empty_args: true,
        },
        display: ".normal()",
    },
    Pat {
        kind: PatKind::Method {
            name: "shuffle",
            empty_args: false,
        },
        display: ".shuffle(",
    },
    Pat {
        kind: PatKind::Method {
            name: "fork",
            empty_args: true,
        },
        display: ".fork()",
    },
];

/// Constructs forbidden by [`rule::HOT_ALLOC`] (and flagged by
/// [`rule::HOT_PROPAGATE`]) inside hot functions. Each one
/// heap-allocates on the success path of the steady state; hot code
/// must go through workspace checkouts and the `_into` kernels instead.
/// (Error-path `format!`/`.into()` construction is deliberately not
/// banned — errors are the cold path by definition.)
pub(crate) const ALLOC_PATS: &[Pat] = &[
    Pat {
        kind: PatKind::Path(&["Tensor", "zeros"]),
        display: "Tensor::zeros",
    },
    Pat {
        kind: PatKind::MacroCall("vec"),
        display: "vec!",
    },
    Pat {
        kind: PatKind::Method {
            name: "collect",
            empty_args: true,
        },
        display: ".collect()",
    },
    Pat {
        kind: PatKind::Method {
            name: "to_vec",
            empty_args: true,
        },
        display: ".to_vec()",
    },
];

/// Constructs forbidden by [`rule::DURABLE_IO`].
pub(crate) const IO_PATS: &[Pat] = &[
    Pat {
        kind: PatKind::Path(&["std", "fs"]),
        display: "std::fs",
    },
    Pat {
        kind: PatKind::Path(&["File", "open"]),
        display: "File::open",
    },
    Pat {
        kind: PatKind::Path(&["File", "create"]),
        display: "File::create",
    },
    Pat {
        kind: PatKind::Path(&["OpenOptions", "new"]),
        display: "OpenOptions::new",
    },
];

/// One diagnostic produced by the lint pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier (one of the [`rule`] constants).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// Per-file lint outcome.
#[derive(Debug, Default)]
pub struct FileLint {
    /// Diagnostics for this file.
    pub violations: Vec<Violation>,
    /// Number of matches suppressed by a justified escape hatch.
    pub allowed: usize,
    /// Suppressions broken down by hatch name (`panic`, `hot-alloc`,
    /// ...) — the debt currency the ratchet baseline tracks.
    pub allows: BTreeMap<String, usize>,
}

impl FileLint {
    pub(crate) fn count_allow(&mut self, hatch: &str) {
        self.allowed += 1;
        *self.allows.entry(hatch.to_owned()).or_insert(0) += 1;
    }
}

/// A parsed `// darlint: allow(<rule>) — <reason>` comment.
pub(crate) struct Hatch {
    pub(crate) line: usize,
    pub(crate) own_line: bool,
    pub(crate) rule: String,
    pub(crate) has_reason: bool,
}

/// Parses an escape-hatch comment, if the comment is one.
fn parse_hatch(c: &LineComment) -> Option<Hatch> {
    let body = c.text.trim_start_matches('/').trim();
    let rest = body.strip_prefix("darlint:")?.trim();
    let rest = rest.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_owned();
    let tail = rest[close + 1..].trim();
    // A justification must follow an em-dash or hyphen separator.
    let reason = tail
        .strip_prefix('—')
        .or_else(|| tail.strip_prefix('-'))
        .map(|r| r.trim_start_matches('-').trim());
    let has_reason = reason.is_some_and(|r| !r.is_empty());
    Some(Hatch {
        line: c.line,
        own_line: c.own_line,
        rule,
        has_reason,
    })
}

/// All escape hatches declared in a file's comments.
pub(crate) fn file_hatches(comments: &[LineComment]) -> Vec<Hatch> {
    comments.iter().filter_map(parse_hatch).collect()
}

/// Short escape-hatch rule names accepted in `allow(...)`.
pub(crate) fn hatch_name(rule_id: &str) -> &'static str {
    match rule_id {
        rule::PANIC => "panic",
        rule::TIME => "time",
        rule::THREAD => "thread",
        // Propagated hot findings share the hot-alloc hatch: the
        // justification ("this allocation is fine here because ...") is
        // the same claim either way.
        rule::HOT_ALLOC | rule::HOT_PROPAGATE => "hot-alloc",
        rule::DURABLE_IO => "io",
        rule::ORDER => "order",
        rule::REPLAY_PURE => "replay-pure",
        rule::RNG_CONFINED => "rng",
        _ => "",
    }
}

/// Does `path` match the allowlist (exact file or directory prefix)?
pub(crate) fn allowlisted(path: &str, allowlist: &[&str]) -> bool {
    allowlist
        .iter()
        .any(|a| path == *a || (a.ends_with('/') && path.starts_with(a)))
}

/// Crate name for a `crates/<name>/src/...` path, if any.
pub(crate) fn crate_of(path: &str) -> Option<&str> {
    path.strip_prefix("crates/")?.split('/').next()
}

/// Skips a `<...>` group starting at `start` (which must be `<`),
/// tolerant of `->`/`=>` arrows inside; returns the index past `>`.
pub(crate) fn skip_angles(tokens: &[Token], start: usize) -> usize {
    let mut depth = 0usize;
    let mut i = start;
    while i < tokens.len() {
        if tokens[i].is_punct('<') {
            depth += 1;
        } else if tokens[i].is_punct('>')
            && !(i > 0 && (tokens[i - 1].is_punct('-') || tokens[i - 1].is_punct('=')))
        {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// Tries to match `pat` at token index `i`; returns the 1-based line of
/// the match on success.
pub(crate) fn match_pat(tokens: &[Token], i: usize, pat: &Pat) -> Option<usize> {
    match pat.kind {
        PatKind::Method { name, empty_args } => {
            if !tokens[i].is_punct('.') || !tokens.get(i + 1).is_some_and(|t| t.is_ident(name)) {
                return None;
            }
            let mut j = i + 2;
            // Optional turbofish: `.collect::<Vec<_>>()`.
            if tokens.get(j).is_some_and(|t| t.is_punct(':'))
                && tokens.get(j + 1).is_some_and(|t| t.is_punct(':'))
                && tokens.get(j + 2).is_some_and(|t| t.is_punct('<'))
            {
                j = skip_angles(tokens, j + 2);
            }
            if !tokens.get(j).is_some_and(|t| t.is_punct('(')) {
                return None;
            }
            if empty_args && !tokens.get(j + 1).is_some_and(|t| t.is_punct(')')) {
                return None;
            }
            Some(tokens[i].line)
        }
        PatKind::Path(segs) => {
            if !tokens[i].is_ident(segs[0]) {
                return None;
            }
            let mut j = i + 1;
            for seg in &segs[1..] {
                if !(tokens.get(j).is_some_and(|t| t.is_punct(':'))
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct(':'))
                    && tokens.get(j + 2).is_some_and(|t| t.is_ident(seg)))
                {
                    return None;
                }
                j += 3;
            }
            Some(tokens[i].line)
        }
        PatKind::MacroCall(name) => (tokens[i].is_ident(name)
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('!')))
        .then_some(tokens[i].line),
    }
}

/// Lints one file. `path` must be workspace-relative with `/` separators
/// (it selects which rules apply).
pub fn lint_file(path: &str, source: &str) -> FileLint {
    lint_scanned(path, &scan(source))
}

/// Lints an already-scanned file (the workspace pass scans once and
/// shares the result with the call-graph analysis).
pub fn lint_scanned(path: &str, scanned: &ScannedFile) -> FileLint {
    let hatches = file_hatches(&scanned.comments);
    let mut out = FileLint::default();

    // Reject bare allows and bare cold markers up front: an escape hatch
    // without a reason is a violation wherever it appears (even if it
    // suppresses nothing).
    for h in &hatches {
        if !h.has_reason {
            out.violations.push(Violation {
                rule: rule::BARE_ALLOW,
                file: path.to_owned(),
                line: h.line,
                message: format!(
                    "darlint: allow({}) without a justification; write \
                     `// darlint: allow({}) — <reason>`",
                    h.rule, h.rule
                ),
                snippet: snippet(&scanned.lines, h.line),
            });
        }
    }
    for c in scanned.comments.iter().filter(|c| c.own_line) {
        if parse_cold_marker(c) == Some(false) {
            out.violations.push(Violation {
                rule: rule::BARE_ALLOW,
                file: path.to_owned(),
                line: c.line,
                message: "darlint: cold marker without a justification; write \
                          `// darlint: cold — <reason>`"
                    .to_owned(),
                snippet: snippet(&scanned.lines, c.line),
            });
        }
    }

    // The per-file rules are the *scoped* face of the effect lattice:
    // each one bans the lexical seeds of a single effect
    // ([`crate::effects::seed_pats`]) outside that effect's sanctioned
    // owners. The interprocedural passes (`hot-propagate`,
    // `replay-pure`) consume the same seed table transitively.
    use crate::effects::{seed_pats, Effect};
    let mut checks: Vec<(&'static str, &[Pat], &'static str)> = Vec::new();
    if crate_of(path).is_some_and(|c| PANIC_CRATES.contains(&c)) {
        checks.push((
            rule::PANIC,
            seed_pats(Effect::Panic),
            "panicking call in hot-path code; return a typed error instead",
        ));
    }
    if !allowlisted(path, TIME_ALLOWLIST) {
        checks.push((
            rule::TIME,
            seed_pats(Effect::Time),
            "wall-clock read outside the runtime allowlist; inject time \
             through the clock abstraction",
        ));
    }
    if !allowlisted(path, THREAD_ALLOWLIST) {
        checks.push((
            rule::THREAD,
            seed_pats(Effect::ThreadSpawn),
            "raw thread::spawn; use std::thread::scope under the \
             Parallelism policy",
        ));
    }
    if !allowlisted(path, DURABLE_IO_ALLOWLIST) {
        checks.push((
            rule::DURABLE_IO,
            seed_pats(Effect::Io),
            "direct filesystem access outside the durable-I/O owners; \
             route persistence through a WalStorage backend",
        ));
    }
    if !allowlisted(path, RNG_ALLOWLIST) {
        checks.push((
            rule::RNG_CONFINED,
            seed_pats(Effect::Rng),
            "seeded PRNG construction/use outside the randomness owners; \
             thread a `SplitMix64` in from sim/loadgen/fault-injection/init",
        ));
    }

    for (rule_id, pats, why) in checks {
        for i in 0..scanned.tokens.len() {
            for pat in pats {
                let Some(line) = match_pat(&scanned.tokens, i, pat) else {
                    continue;
                };
                if is_test(scanned, line) {
                    continue;
                }
                if suppressed(&hatches, rule_id, line) {
                    out.count_allow(hatch_name(rule_id));
                    continue;
                }
                out.violations.push(Violation {
                    rule: rule_id,
                    file: path.to_owned(),
                    line,
                    message: format!("`{}` — {why}", pat.display),
                    snippet: snippet(&scanned.lines, line),
                });
            }
        }
    }

    // hot-alloc: inside every function annotated `// darlint: hot`, the
    // allocating constructs are banned outright — the annotation is the
    // author's claim that the function is on the zero-alloc inference
    // path, and this rule keeps the claim honest. (Functions *reached*
    // from hot roots are handled by the call-graph pass.)
    for f in scanned.fns.iter().filter(|f| f.hot) {
        let Some((open, close)) = f.item.body else {
            continue;
        };
        for i in open..=close {
            for pat in ALLOC_PATS {
                let Some(line) = match_pat(&scanned.tokens, i, pat) else {
                    continue;
                };
                if is_test(scanned, line) {
                    continue;
                }
                if suppressed(&hatches, rule::HOT_ALLOC, line) {
                    out.count_allow(hatch_name(rule::HOT_ALLOC));
                    continue;
                }
                out.violations.push(Violation {
                    rule: rule::HOT_ALLOC,
                    file: path.to_owned(),
                    line,
                    message: format!(
                        "`{}` allocates inside a `// darlint: hot` function; \
                         use a workspace checkout or an `_into` kernel",
                        pat.display
                    ),
                    snippet: snippet(&scanned.lines, line),
                });
            }
        }
    }

    if allowlisted(path, ORDER_PATHS) {
        order_check(path, scanned, &hatches, &mut out);
    }
    out
}

/// The `nondet-order` rule body: on order-sensitive paths, ban
/// hash-ordered containers at the type level and flag iteration sites
/// over bindings known to be hash-typed.
fn order_check(path: &str, scanned: &ScannedFile, hatches: &[Hatch], out: &mut FileLint) {
    let tokens = &scanned.tokens;
    // One diagnostic per line is enough: a declaration or loop header
    // frequently matches both sub-checks.
    let mut reported: BTreeSet<usize> = BTreeSet::new();
    let mut emit = |line: usize, message: String, out: &mut FileLint| {
        if is_test(scanned, line) || reported.contains(&line) {
            return;
        }
        if suppressed(hatches, rule::ORDER, line) {
            out.count_allow(hatch_name(rule::ORDER));
            reported.insert(line);
            return;
        }
        reported.insert(line);
        out.violations.push(Violation {
            rule: rule::ORDER,
            file: path.to_owned(),
            line,
            message,
            snippet: snippet(&scanned.lines, line),
        });
    };

    // Sub-check 1: the types themselves are banned on these paths —
    // iteration order of std's RandomState-hashed containers varies
    // run-to-run, which is exactly what a digest/replay path cannot
    // absorb.
    for t in tokens {
        if t.kind == TokKind::Ident && HASH_TYPES.contains(&t.text.as_str()) {
            emit(
                t.line,
                format!(
                    "`{}` on an order-sensitive path; iteration order is \
                     nondeterministic — use BTreeMap/BTreeSet or sort \
                     before folding",
                    t.text
                ),
                out,
            );
        }
    }

    // Sub-check 2: iteration sites over bindings whose declared type or
    // initializer is hash-ordered. The detection is shared with the
    // effect-inference pass (HashOrder seeds, [`crate::effects`]).
    let names = hash_bound_names(tokens);
    for site in hash_iter_sites(tokens, &names) {
        let message = match &site.method {
            Some(m) => format!(
                "iterating hash-ordered `{}` (`.{}()`); order is \
                 nondeterministic — sort first or use a BTree container",
                site.name, m
            ),
            None => format!(
                "`for … in` over hash-ordered `{}`; order is \
                 nondeterministic — sort first or use a BTree \
                 container",
                site.name
            ),
        };
        emit(site.line, message, out);
    }
}

/// A site that observes a hash container's nondeterministic iteration
/// order: either `name.iter()`-shaped (with `method`) or a `for … in`
/// header mentioning the binding (`method` is `None`).
pub(crate) struct HashIterSite {
    /// Token index of the binding mention.
    pub(crate) tok: usize,
    /// 1-based source line of the mention.
    pub(crate) line: usize,
    /// The hash-bound binding name.
    pub(crate) name: String,
    /// The iteration method, for `name.iter()`-shaped sites.
    pub(crate) method: Option<String>,
}

/// Finds every iteration site over the hash-bound `names`, in token
/// order. Shared by the `nondet-order` rule (which bans them on
/// order-sensitive paths) and the effect-inference pass (where each one
/// seeds the `HashOrder` effect).
pub(crate) fn hash_iter_sites(tokens: &[Token], names: &BTreeSet<String>) -> Vec<HashIterSite> {
    let mut sites = Vec::new();
    if names.is_empty() {
        return sites;
    }
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // `name.iter()` / `name.keys()` / ... on a known hash binding.
        if names.contains(&t.text)
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('.'))
            && tokens.get(i + 2).is_some_and(|n| {
                n.kind == TokKind::Ident && ORDER_ITER_METHODS.contains(&n.text.as_str())
            })
            && tokens.get(i + 3).is_some_and(|n| n.is_punct('('))
        {
            sites.push(HashIterSite {
                tok: i,
                line: t.line,
                name: t.text.clone(),
                method: Some(tokens[i + 2].text.clone()),
            });
        }
        // `for pat in <expr mentioning a hash binding> {`.
        if t.is_ident("for") {
            let mut j = i + 1;
            let mut depth = 0usize;
            // Find the `in` of this loop header.
            while j < tokens.len() && !(depth == 0 && tokens[j].is_ident("in")) {
                if tokens[j].is_punct('(') || tokens[j].is_punct('[') {
                    depth += 1;
                } else if tokens[j].is_punct(')') || tokens[j].is_punct(']') {
                    depth = depth.saturating_sub(1);
                }
                if tokens[j].is_punct('{') || j > i + 24 {
                    j = tokens.len(); // not a for-loop header we understand
                }
                j += 1;
            }
            let mut k = j;
            while k < tokens.len() && !tokens[k].is_punct('{') && k < j + 24 {
                if tokens[k].kind == TokKind::Ident && names.contains(&tokens[k].text) {
                    sites.push(HashIterSite {
                        tok: k,
                        line: tokens[k].line,
                        name: tokens[k].text.clone(),
                        method: None,
                    });
                }
                k += 1;
            }
        }
    }
    sites
}

/// Bindings (fields, params, lets) whose declared type or initializer
/// mentions a hash-ordered container: `series: RwLock<HashMap<..>>`,
/// `let mut seen = HashSet::new()`.
pub(crate) fn hash_bound_names(tokens: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // `name : <type tokens containing HashMap/HashSet>`
        if tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && !tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
        {
            let mut depth = 0usize;
            for u in tokens.iter().take(i + 40).skip(i + 2) {
                if u.is_punct('<') {
                    depth += 1;
                } else if u.is_punct('>') {
                    depth = depth.saturating_sub(1);
                } else if depth == 0
                    && (u.is_punct(',') || u.is_punct(';') || u.is_punct('=') || u.is_punct(')'))
                {
                    break;
                } else if u.kind == TokKind::Ident && HASH_TYPES.contains(&u.text.as_str()) {
                    names.insert(t.text.clone());
                    break;
                }
            }
        }
        // `let [mut] name = HashMap::...`
        if t.is_ident("let") {
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|n| n.is_ident("mut")) {
                j += 1;
            }
            let Some(name_tok) = tokens.get(j).filter(|n| n.kind == TokKind::Ident) else {
                continue;
            };
            if tokens.get(j + 1).is_some_and(|n| n.is_punct('='))
                && tokens
                    .get(j + 2)
                    .is_some_and(|n| HASH_TYPES.contains(&n.text.as_str()))
            {
                names.insert(name_tok.text.clone());
            }
        }
    }
    names
}

/// Is 1-based `line` inside a test-gated region?
pub(crate) fn is_test(scanned: &ScannedFile, line: usize) -> bool {
    scanned.is_test_line.get(line - 1).copied().unwrap_or(false)
}

/// Is a match on `line` covered by a justified hatch for `rule_id` —
/// either trailing on the same line or on its own line directly above?
pub(crate) fn suppressed(hatches: &[Hatch], rule_id: &str, line: usize) -> bool {
    let name = hatch_name(rule_id);
    hatches.iter().any(|h| {
        h.has_reason && h.rule == name && (h.line == line || (h.own_line && h.line + 1 == line))
    })
}

/// Checks the crate-hygiene rule on a crate-root file.
pub fn check_crate_root(path: &str, source: &str) -> FileLint {
    let scanned = scan(source);
    let mut out = FileLint::default();
    for (level, name, display) in ROOT_ATTRS {
        if !has_inner_attr(&scanned.tokens, level, name) {
            out.violations.push(Violation {
                rule: rule::HYGIENE,
                file: path.to_owned(),
                line: 1,
                message: format!("crate root is missing the required inner attribute `{display}`"),
                snippet: String::new(),
            });
        }
    }
    out
}

/// Token-level search for `#![level(name)]`.
fn has_inner_attr(tokens: &[Token], level: &str, name: &str) -> bool {
    tokens.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident(level)
            && w[4].is_punct('(')
            && w[5].is_ident(name)
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    })
}

/// The offending line, trimmed, for diagnostics.
pub(crate) fn snippet(lines: &[String], line: usize) -> String {
    lines
        .get(line - 1)
        .map(|l| l.trim().to_owned())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_rule_scoped_to_hot_path_crates() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(lint_file("crates/nn/src/a.rs", src).violations.len(), 1);
        assert_eq!(lint_file("crates/sim/src/a.rs", src).violations.len(), 0);
    }

    #[test]
    fn xtask_is_held_to_the_panic_rule() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(lint_file("crates/xtask/src/a.rs", src).violations.len(), 1);
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 0) }\n";
        assert!(lint_file("crates/nn/src/a.rs", src).violations.is_empty());
    }

    #[test]
    fn multiline_method_chain_still_fires() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x\n        .unwrap()\n}\n";
        let lint = lint_file("crates/nn/src/a.rs", src);
        assert_eq!(lint.violations.len(), 1);
        assert_eq!(lint.violations[0].line, 3);
    }

    #[test]
    fn time_allowlist_honored() {
        let src = "fn t() { let _ = std::time::Instant::now(); }\n";
        assert_eq!(lint_file("crates/core/src/a.rs", src).violations.len(), 1);
        assert_eq!(
            lint_file("crates/collect/src/runtime.rs", src)
                .violations
                .len(),
            0
        );
        assert_eq!(
            lint_file("crates/bench/src/bin/b.rs", src).violations.len(),
            0
        );
    }

    #[test]
    fn durable_io_allowlist_honored() {
        let src = "fn w(p: &std::path::Path) { let _ = std::fs::read(p); }\n";
        assert_eq!(
            lint_file("crates/collect/src/sensor.rs", src)
                .violations
                .len(),
            1
        );
        assert_eq!(
            lint_file("crates/collect/src/wal.rs", src).violations.len(),
            0
        );
        assert_eq!(
            lint_file("crates/bench/src/bin/b.rs", src).violations.len(),
            0
        );
        assert_eq!(
            lint_file("crates/xtask/src/lib.rs", src).violations.len(),
            0
        );
    }

    #[test]
    fn hatch_with_reason_suppresses_and_counts() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // darlint: allow(panic) — invariant: x is Some by construction\n    x.unwrap()\n}\n";
        let lint = lint_file("crates/tensor/src/a.rs", src);
        assert!(lint.violations.is_empty());
        assert_eq!(lint.allowed, 1);
        assert_eq!(lint.allows.get("panic"), Some(&1));
    }

    #[test]
    fn bare_hatch_rejected() {
        let src =
            "fn f(x: Option<u32>) -> u32 {\n    // darlint: allow(panic)\n    x.unwrap()\n}\n";
        let lint = lint_file("crates/tensor/src/a.rs", src);
        let rules: Vec<_> = lint.violations.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&rule::BARE_ALLOW));
        assert!(rules.contains(&rule::PANIC));
    }

    #[test]
    fn bare_cold_marker_rejected() {
        let src = "// darlint: cold\nfn helper() {}\n";
        let lint = lint_file("crates/tensor/src/a.rs", src);
        assert_eq!(lint.violations.len(), 1);
        assert_eq!(lint.violations[0].rule, rule::BARE_ALLOW);
    }

    #[test]
    fn hot_alloc_fires_only_inside_hot_functions() {
        let src = "\
fn cold() -> Vec<u32> { (0..4).collect() }

// darlint: hot
fn hot(t: &Tensor, ws: &mut Workspace) -> Vec<f32> {
    let x = Tensor::zeros(&[2, 2]);
    let v = vec![0.0f32; 4];
    let c: Vec<f32> = v.iter().copied().collect();
    t.data().to_vec()
}

fn also_cold() -> Vec<u32> { vec![1, 2] }
";
        let lint = lint_file("crates/tensor/src/a.rs", src);
        let lines: Vec<usize> = lint
            .violations
            .iter()
            .filter(|v| v.rule == rule::HOT_ALLOC)
            .map(|v| v.line)
            .collect();
        assert_eq!(lines, vec![5, 6, 7, 8], "zeros, vec!, collect, to_vec");
    }

    #[test]
    fn turbofish_collect_is_caught_in_hot_fn() {
        // The v1 substring matcher missed `.collect::<Vec<_>>()`.
        let src = "// darlint: hot\nfn hot(v: &[f32]) -> Vec<f32> {\n    v.iter().copied().collect::<Vec<_>>()\n}\n";
        let lint = lint_file("crates/tensor/src/a.rs", src);
        let rules: Vec<_> = lint.violations.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&rule::HOT_ALLOC), "{:?}", lint.violations);
    }

    #[test]
    fn hot_alloc_hatch_suppresses() {
        let src = "\
// darlint: hot
fn hot(t: &Tensor) -> TensorError {
    // darlint: allow(hot-alloc) — error path, never taken warm
    let dims = t.dims().to_vec();
    TensorError::Shape(dims)
}
";
        let lint = lint_file("crates/tensor/src/a.rs", src);
        assert!(lint.violations.is_empty(), "{:?}", lint.violations);
        assert_eq!(lint.allowed, 1);
    }

    #[test]
    fn hot_marker_skips_fn_in_identifier_names() {
        // `fn` appearing inside an identifier between the marker and the
        // real function must not derail extent detection.
        let src = "\
// darlint: hot
pub fn hot_fn_like(defn_count: usize) -> usize {
    let v = vec![0u8; defn_count];
    v.len()
}
";
        let lint = lint_file("crates/tensor/src/a.rs", src);
        assert_eq!(lint.violations.len(), 1);
        assert_eq!(lint.violations[0].line, 3);
    }

    #[test]
    fn order_rule_bans_hash_types_on_order_paths_only() {
        let src = "use std::collections::HashMap;\nstruct S { m: HashMap<u32, u32> }\n";
        let lint = lint_file("crates/collect/src/tsdb.rs", src);
        let lines: Vec<usize> = lint.violations.iter().map(|v| v.line).collect();
        assert_eq!(lines, vec![1, 2]);
        assert!(lint.violations.iter().all(|v| v.rule == rule::ORDER));
        // Off the order-sensitive paths, HashMap is fine.
        assert!(lint_file("crates/collect/src/agent.rs", src)
            .violations
            .is_empty());
    }

    #[test]
    fn order_rule_flags_iteration_over_hash_bindings() {
        let src = "\
use std::collections::HashMap;
struct S { m: HashMap<u32, u32> }
impl S {
    fn dump(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for (k, _) in self.m.iter() {
            out.push(*k);
        }
        for v in &self.m {
            out.push(v.0 + 1);
        }
        out
    }
}
";
        let lint = lint_file("crates/collect/src/controller.rs", src);
        let order_lines: Vec<usize> = lint
            .violations
            .iter()
            .filter(|v| v.rule == rule::ORDER)
            .map(|v| v.line)
            .collect();
        assert!(order_lines.contains(&6), "m.iter(): {order_lines:?}");
        assert!(order_lines.contains(&9), "for in &self.m: {order_lines:?}");
    }

    #[test]
    fn order_hatch_suppresses() {
        let src = "// darlint: allow(order) — scratch set, never iterated\nuse std::collections::HashSet;\n";
        let lint = lint_file("crates/collect/src/wal.rs", src);
        assert!(lint.violations.is_empty(), "{:?}", lint.violations);
        assert_eq!(lint.allows.get("order"), Some(&1));
    }

    #[test]
    fn btreemap_is_clean_on_order_paths() {
        let src = "use std::collections::BTreeMap;\nstruct S { m: BTreeMap<u32, u32> }\nimpl S {\n    fn dump(&self) -> usize { self.m.iter().count() }\n}\n";
        let lint = lint_file("crates/collect/src/tsdb.rs", src);
        assert!(lint.violations.is_empty(), "{:?}", lint.violations);
    }

    #[test]
    fn hygiene_flags_missing_attrs() {
        let good = "#![deny(unsafe_code)]\n#![deny(missing_docs)]\n#![warn(rust_2018_idioms)]\n";
        assert!(check_crate_root("crates/nn/src/lib.rs", good)
            .violations
            .is_empty());
        let bad = "#![deny(unsafe_code)]\n";
        assert_eq!(
            check_crate_root("crates/nn/src/lib.rs", bad)
                .violations
                .len(),
            2
        );
    }
}
