//! Interprocedural effect inference over the workspace call graph.
//!
//! Every per-file darlint rule is, at bottom, a ban on the *lexical
//! seeds* of one effect: `Instant::now` seeds `Time`, `std::fs` seeds
//! `Io`, `SplitMix64::new` seeds `Rng`, and so on. This module lifts
//! those seeds into a proper effect system: [`infer`] runs a fixpoint
//! (per-effect multi-source BFS over the reversed call graph) that
//! computes, for every workspace function, its **transitive** effect
//! set under the lattice
//!
//! ```text
//! Effect ::= Alloc | HashOrder | Io | Panic | Rng | ThreadSpawn | Time
//! EffectSet = ℘(Effect)   (join = ∪; a caller absorbs its callees)
//! ```
//!
//! Inference is deliberately monotone and over-approximate: adding a
//! call edge can only *add* effects, never remove one, and unresolved
//! calls (stoplisted method names, function values) under-approximate —
//! the same trade the hot-path pass makes (DESIGN.md §16).
//!
//! Every inferred effect carries a **witness chain**: the exact call
//! path from the function to a lexical seed site, reconstructed by
//! walking strictly-decreasing BFS depths (so chains are acyclic and
//! deterministic even through recursion). The chain is what turns "this
//! function has the Time effect" into an actionable diagnostic.
//!
//! Consumers:
//! * [`replay_pure`] — the `replay-pure` contract rule: functions
//!   reachable from a `// darlint: pure-root` marker (WAL replay,
//!   `state_digest`, `canonical_fingerprint*`, `metrics::compare`) must
//!   be free of Time/Io/Rng/ThreadSpawn/HashOrder effects.
//! * [`crate::callgraph::hot_propagate`] — consumes the same seed table
//!   for its Alloc/Panic propagation.
//! * [`Analysis`] — the `effects` subcommand: a deterministic
//!   `effects.json` report (schema version [`EFFECTS_SCHEMA_VERSION`])
//!   and `--explain <fn>` witness-chain output.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Write as _;

use crate::callgraph::Graph;
use crate::report::json_str;
use crate::rules::{
    allowlisted, file_hatches, hash_bound_names, hash_iter_sites, hatch_name, is_test, match_pat,
    rule, snippet, suppressed, FileLint, Pat, Violation, ALLOC_PATS, DURABLE_IO_ALLOWLIST, IO_PATS,
    PANIC_PATS, RNG_PATS, THREAD_PATS, TIME_PATS,
};
use crate::scan::ScannedFile;

/// Schema version of the `effects.json` report. Versions 1 and 2 are
/// the per-file lint report's history; the effect report starts at 3 so
/// the two artifact families share one version sequence.
pub const EFFECTS_SCHEMA_VERSION: usize = 3;

/// One effect in the darlint lattice. Variant order is alphabetical by
/// display name, and `ALL`/report output follow it, so every artifact
/// lists effects in one canonical order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Effect {
    /// Heap allocation on the steady-state path (`vec!`, `.collect()`).
    Alloc,
    /// Observing a hash container's nondeterministic iteration order.
    HashOrder,
    /// Direct filesystem access (`std::fs`, `File::open`, ...).
    Io,
    /// A panicking construct (`.unwrap()`, `panic!`, ...).
    Panic,
    /// Seeded-PRNG construction or use (`SplitMix64`).
    Rng,
    /// Raw thread creation (`thread::spawn`).
    ThreadSpawn,
    /// Wall-clock reads (`Instant::now`, `SystemTime::now`).
    Time,
}

impl Effect {
    /// Every effect, in canonical (alphabetical) order.
    pub const ALL: [Effect; 7] = [
        Effect::Alloc,
        Effect::HashOrder,
        Effect::Io,
        Effect::Panic,
        Effect::Rng,
        Effect::ThreadSpawn,
        Effect::Time,
    ];

    /// Stable display name (used in reports, diagnostics, and JSON).
    pub fn name(self) -> &'static str {
        match self {
            Effect::Alloc => "alloc",
            Effect::HashOrder => "hash-order",
            Effect::Io => "io",
            Effect::Panic => "panic",
            Effect::Rng => "rng",
            Effect::ThreadSpawn => "thread-spawn",
            Effect::Time => "time",
        }
    }

    fn idx(self) -> usize {
        self as usize
    }
}

/// A set of effects: the lattice element attached to every function.
/// Join is union; the bottom element (`default`) is "pure".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EffectSet(u8);

impl EffectSet {
    /// Adds one effect.
    pub fn insert(&mut self, e: Effect) {
        self.0 |= 1 << e.idx();
    }

    /// Membership test.
    pub fn contains(self, e: Effect) -> bool {
        self.0 & (1 << e.idx()) != 0
    }

    /// Joins `other` into `self`; returns whether `self` changed.
    pub fn union_with(&mut self, other: EffectSet) -> bool {
        let before = self.0;
        self.0 |= other.0;
        self.0 != before
    }

    /// No effects: the function is pure under the darlint lattice.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Members in canonical order.
    pub fn iter(self) -> impl Iterator<Item = Effect> {
        Effect::ALL.into_iter().filter(move |e| self.contains(*e))
    }

    /// Is `self` a superset of `other`? (Monotonicity checks.)
    pub fn is_superset(self, other: EffectSet) -> bool {
        self.0 & other.0 == other.0
    }
}

/// The lexical seed table: which token patterns introduce each effect.
/// This is the single source of truth shared by the per-file rules
/// (which ban an effect's seeds outside its allowlist) and the
/// interprocedural passes (which propagate them). `HashOrder` has no
/// pattern entry — its seeds are the structural hash-iteration sites
/// found by [`hash_iter_sites`].
pub(crate) fn seed_pats(effect: Effect) -> &'static [Pat] {
    match effect {
        Effect::Alloc => ALLOC_PATS,
        Effect::HashOrder => &[],
        Effect::Io => IO_PATS,
        Effect::Panic => PANIC_PATS,
        Effect::Rng => RNG_PATS,
        Effect::ThreadSpawn => THREAD_PATS,
        Effect::Time => TIME_PATS,
    }
}

/// One lexical effect site inside a function body.
pub(crate) struct Site {
    /// The effect this site seeds.
    pub(crate) effect: Effect,
    /// 1-based source line.
    pub(crate) line: usize,
    /// Display form of the construct (e.g. `Instant::now`).
    pub(crate) what: String,
}

/// Extracts the lexical effect sites of every graph node, in token
/// order. Nested-fn bodies are skipped (they are nodes of their own);
/// test nodes and test-gated lines contribute nothing.
pub(crate) fn lexical_sites(graph: &Graph, files: &[(String, ScannedFile)]) -> Vec<Vec<Site>> {
    // Hash-iteration sites are per-file structural facts; compute once.
    let file_hash: Vec<Vec<crate::rules::HashIterSite>> = files
        .iter()
        .map(|(_, s)| hash_iter_sites(&s.tokens, &hash_bound_names(&s.tokens)))
        .collect();

    graph
        .nodes
        .iter()
        .enumerate()
        .map(|(gid, node)| {
            let mut sites: Vec<Site> = Vec::new();
            let scanned = &files[node.file].1;
            let f = &scanned.fns[node.fn_idx];
            if f.item.is_test {
                return sites;
            }
            let Some((open, close)) = f.item.body else {
                return sites;
            };
            let tokens = &scanned.tokens;
            let mut i = open;
            while i <= close {
                if let Some(&(_, nc)) = graph.nested[gid].iter().find(|(no, _)| *no == i) {
                    i = nc + 1;
                    continue;
                }
                for e in Effect::ALL {
                    for pat in seed_pats(e) {
                        let Some(line) = match_pat(tokens, i, pat) else {
                            continue;
                        };
                        if is_test(scanned, line) {
                            continue;
                        }
                        sites.push(Site {
                            effect: e,
                            line,
                            what: pat.display.to_owned(),
                        });
                    }
                }
                for hs in file_hash[node.file].iter().filter(|h| h.tok == i) {
                    if is_test(scanned, hs.line) {
                        continue;
                    }
                    sites.push(Site {
                        effect: Effect::HashOrder,
                        line: hs.line,
                        what: format!("iterate hash-ordered `{}`", hs.name),
                    });
                }
                i += 1;
            }
            sites
        })
        .collect()
}

/// The inference result: per-node transitive effect sets plus, for each
/// `(node, effect)`, the BFS depth to the nearest seed (the witness
/// reconstruction key).
pub struct Inference {
    /// `sets[gid]` = the transitive effect set of node `gid`.
    pub sets: Vec<EffectSet>,
    /// `depth[gid][e]` = shortest call-chain length from `gid` to an
    /// `e`-seeded function (`0` = seeded itself, `u32::MAX` = none).
    depth: Vec<[u32; 7]>,
}

/// Runs the effect fixpoint: for each effect, a multi-source BFS from
/// the lexically-seeded nodes along *reversed* call edges, so callers
/// absorb their callees' effects. BFS depths double as the witness
/// metric: a node at depth `d` always has a callee at depth `d - 1`,
/// which makes chain reconstruction acyclic even through recursion.
pub(crate) fn infer(graph: &Graph, seeds: &[Vec<Site>]) -> Inference {
    let n = graph.nodes.len();
    let mut redges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (gid, callees) in graph.edges.iter().enumerate() {
        if graph.nodes[gid].is_test {
            continue;
        }
        for &c in callees {
            redges[c].push(gid);
        }
    }
    let mut sets = vec![EffectSet::default(); n];
    let mut depth = vec![[u32::MAX; 7]; n];
    for e in Effect::ALL {
        let mut queue: VecDeque<usize> = VecDeque::new();
        for gid in 0..n {
            if !graph.nodes[gid].is_test && seeds[gid].iter().any(|s| s.effect == e) {
                depth[gid][e.idx()] = 0;
                sets[gid].insert(e);
                queue.push_back(gid);
            }
        }
        while let Some(gid) = queue.pop_front() {
            let d = depth[gid][e.idx()];
            for &caller in &redges[gid] {
                if depth[caller][e.idx()] == u32::MAX {
                    depth[caller][e.idx()] = d.saturating_add(1);
                    sets[caller].insert(e);
                    queue.push_back(caller);
                }
            }
        }
    }
    Inference { sets, depth }
}

/// Reconstructs the witness chain for `(gid, e)`: a call path of
/// strictly decreasing depth ending at a seeded function. Returns the
/// node ids from `gid` down to the seed owner. Deterministic: at each
/// hop the smallest-id callee at the next depth is chosen (edge sets
/// are ordered).
fn witness_path(graph: &Graph, inf: &Inference, gid: usize, e: Effect) -> Vec<usize> {
    let mut chain = vec![gid];
    let mut cur = gid;
    let mut d = inf.depth[gid][e.idx()];
    while d > 0 {
        let next = graph.edges[cur]
            .iter()
            .copied()
            .find(|&c| inf.depth[c][e.idx()] == d - 1);
        let Some(nx) = next else {
            break;
        };
        chain.push(nx);
        cur = nx;
        d -= 1;
    }
    chain
}

/// One inferred effect on one function, with its witness.
pub struct EffectEntry {
    /// The effect.
    pub effect: Effect,
    /// Seeded directly in the function's own body (witness length 1).
    pub direct: bool,
    /// Call path from the function (inclusive) to the seed owner.
    pub witness: Vec<String>,
    /// File of the seed site.
    pub site_file: String,
    /// 1-based line of the seed site.
    pub site_line: usize,
    /// Display form of the seeding construct.
    pub what: String,
}

/// One function's inferred effects.
pub struct FnEffects {
    /// `Owner::name` display form.
    pub name: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based declaration line.
    pub line: usize,
    /// Inferred effects in canonical order (empty = pure).
    pub effects: Vec<EffectEntry>,
}

/// The full effect analysis of a workspace: input to the `effects`
/// subcommand's report, summary, and `--explain` output.
pub struct Analysis {
    /// Every non-test function, sorted by `(file, line, name)`.
    pub fns: Vec<FnEffects>,
    /// Number of functions analyzed (= `fns.len()`).
    pub functions_analyzed: usize,
}

/// Runs the complete analysis over scanned files: graph, seeds,
/// fixpoint, witnesses.
pub fn analyze(files: &[(String, ScannedFile)]) -> Analysis {
    let graph = Graph::build(files);
    let seeds = lexical_sites(&graph, files);
    let inf = infer(&graph, &seeds);
    let mut fns: Vec<FnEffects> = Vec::new();
    for (gid, node) in graph.nodes.iter().enumerate() {
        if node.is_test {
            continue;
        }
        let (path, scanned) = &files[node.file];
        let item = &scanned.fns[node.fn_idx].item;
        let mut effects: Vec<EffectEntry> = Vec::new();
        for e in Effect::ALL {
            if !inf.sets[gid].contains(e) {
                continue;
            }
            let chain = witness_path(&graph, &inf, gid, e);
            let Some(&seed_gid) = chain.last() else {
                continue;
            };
            let Some(site) = seeds[seed_gid].iter().find(|s| s.effect == e) else {
                continue;
            };
            effects.push(EffectEntry {
                effect: e,
                direct: chain.len() == 1,
                witness: chain.iter().map(|&g| graph.display(files, g)).collect(),
                site_file: files[graph.nodes[seed_gid].file].0.clone(),
                site_line: site.line,
                what: site.what.clone(),
            });
        }
        fns.push(FnEffects {
            name: graph.display(files, gid),
            file: path.clone(),
            line: item.line,
            effects,
        });
    }
    fns.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.name.as_str()).cmp(&(b.file.as_str(), b.line, b.name.as_str()))
    });
    Analysis {
        functions_analyzed: fns.len(),
        fns,
    }
}

impl Analysis {
    /// The deterministic JSON report: sorted functions, canonical effect
    /// order, sorted keys — byte-identical across identical runs.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"tool\": \"darlint-effects\",");
        let _ = writeln!(out, "  \"schema_version\": {EFFECTS_SCHEMA_VERSION},");
        let _ = writeln!(
            out,
            "  \"functions_analyzed\": {},",
            self.functions_analyzed
        );
        out.push_str("  \"functions\": [");
        for (i, f) in self.fns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"fn\": {}, \"file\": {}, \"line\": {}, \"effects\": [",
                json_str(&f.name),
                json_str(&f.file),
                f.line
            );
            for (j, e) in f.effects.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let witness: Vec<String> = e.witness.iter().map(|w| json_str(w)).collect();
                let _ = write!(
                    out,
                    "\n      {{\"effect\": {}, \"direct\": {}, \"witness\": [{}], \
                     \"site\": {}, \"construct\": {}}}",
                    json_str(e.effect.name()),
                    e.direct,
                    witness.join(", "),
                    json_str(&format!("{}:{}", e.site_file, e.site_line)),
                    json_str(&e.what)
                );
            }
            if !f.effects.is_empty() {
                out.push_str("\n    ");
            }
            out.push_str("]}");
        }
        if !self.fns.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Human-readable explanation of one function's inferred effects,
    /// matched by exact display name or bare method/function name.
    pub fn explain(&self, query: &str) -> Option<String> {
        let suffix = format!("::{query}");
        let f = self
            .fns
            .iter()
            .find(|f| f.name == query || f.name.ends_with(&suffix))?;
        let mut out = String::new();
        let _ = writeln!(out, "{} ({}:{})", f.name, f.file, f.line);
        if f.effects.is_empty() {
            let _ = writeln!(
                out,
                "  pure — no effects inferred under the darlint lattice"
            );
        }
        for e in &f.effects {
            if e.direct {
                let _ = writeln!(
                    out,
                    "  {:<12} direct: `{}` at {}:{}",
                    e.effect.name(),
                    e.what,
                    e.site_file,
                    e.site_line
                );
            } else {
                let _ = writeln!(
                    out,
                    "  {:<12} via {}: `{}` at {}:{}",
                    e.effect.name(),
                    e.witness.join(" → "),
                    e.what,
                    e.site_file,
                    e.site_line
                );
            }
        }
        Some(out)
    }

    /// One-screen workspace summary: per-effect function counts plus the
    /// pure count.
    pub fn render_summary(&self) -> String {
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        let mut pure = 0usize;
        for f in &self.fns {
            if f.effects.is_empty() {
                pure += 1;
            }
            for e in &f.effects {
                *counts.entry(e.effect.name()).or_insert(0) += 1;
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "darlint-effects: {} function(s) analyzed",
            self.functions_analyzed
        );
        for e in Effect::ALL {
            let _ = writeln!(
                out,
                "  {:<12} {}",
                e.name(),
                counts.get(e.name()).copied().unwrap_or(0)
            );
        }
        let _ = writeln!(out, "  {:<12} {pure}", "pure");
        out
    }
}

/// The `replay-pure` contract rule: walks the call graph forward from
/// every `// darlint: pure-root` function and flags any banned-effect
/// seed site on a reached function, with the full root-to-site chain in
/// the diagnostic. Banned: `Time`, `Rng`, `ThreadSpawn`, `HashOrder`
/// unconditionally, and `Io` outside [`DURABLE_IO_ALLOWLIST`] (replay
/// *reads its own storage* by design — sanctioned durable-I/O owners
/// are the replay input, not a purity leak). `Alloc` and `Panic` are
/// not purity concerns.
pub(crate) fn replay_pure(
    graph: &Graph,
    files: &[(String, ScannedFile)],
    seeds: &[Vec<Site>],
) -> FileLint {
    let mut pred: BTreeMap<usize, usize> = BTreeMap::new();
    let mut visited: BTreeSet<usize> = BTreeSet::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (gid, n) in graph.nodes.iter().enumerate() {
        if n.pure_root {
            visited.insert(gid);
            queue.push_back(gid);
        }
    }
    while let Some(gid) = queue.pop_front() {
        for &next in &graph.edges[gid] {
            if graph.nodes[next].is_test || visited.contains(&next) {
                continue;
            }
            visited.insert(next);
            pred.insert(next, gid);
            queue.push_back(next);
        }
    }

    let mut out = FileLint::default();
    for &gid in &visited {
        if seeds[gid].is_empty() {
            continue;
        }
        let node = &graph.nodes[gid];
        let (path, scanned) = &files[node.file];
        let io_exempt = allowlisted(path, DURABLE_IO_ALLOWLIST);
        let hatches = file_hatches(&scanned.comments);
        let mut chain: Vec<String> = vec![graph.display(files, gid)];
        let mut cur = gid;
        while let Some(&p) = pred.get(&cur) {
            chain.push(graph.display(files, p));
            cur = p;
        }
        chain.reverse();
        let via = chain.join(" → ");
        for site in &seeds[gid] {
            let banned = match site.effect {
                Effect::Time | Effect::Rng | Effect::ThreadSpawn | Effect::HashOrder => true,
                Effect::Io => !io_exempt,
                Effect::Alloc | Effect::Panic => false,
            };
            if !banned {
                continue;
            }
            if suppressed(&hatches, rule::REPLAY_PURE, site.line) {
                out.count_allow(hatch_name(rule::REPLAY_PURE));
                continue;
            }
            out.violations.push(Violation {
                rule: rule::REPLAY_PURE,
                file: path.clone(),
                line: site.line,
                message: format!(
                    "`{}` is a {} effect on a replay-pure path via {via}; \
                     replay/digest outputs must be bitwise-reproducible — \
                     fix it, hatch the line with `// darlint: \
                     allow(replay-pure) — <reason>`, or narrow the \
                     `// darlint: pure-root` root",
                    site.what,
                    site.effect.name()
                ),
                snippet: snippet(&scanned.lines, site.line),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn scanned(files: &[(&str, &str)]) -> Vec<(String, ScannedFile)> {
        files
            .iter()
            .map(|(p, s)| ((*p).to_owned(), scan(s)))
            .collect()
    }

    #[test]
    fn effect_set_lattice_ops() {
        let mut a = EffectSet::default();
        assert!(a.is_empty());
        a.insert(Effect::Time);
        a.insert(Effect::Rng);
        assert!(a.contains(Effect::Time));
        assert!(!a.contains(Effect::Io));
        let mut b = EffectSet::default();
        b.insert(Effect::Io);
        assert!(b.union_with(a), "join added members");
        assert!(!b.union_with(a), "join is idempotent");
        assert!(b.is_superset(a));
        assert!(!a.is_superset(b));
        let members: Vec<&str> = b.iter().map(Effect::name).collect();
        assert_eq!(members, vec!["io", "rng", "time"], "canonical order");
    }

    #[test]
    fn direct_seeds_are_inferred_at_depth_zero() {
        let files = scanned(&[(
            "crates/core/src/a.rs",
            "pub fn stamp() -> u64 { std::time::Instant::now(); 0 }\n",
        )]);
        let analysis = analyze(&files);
        assert_eq!(analysis.functions_analyzed, 1);
        let f = &analysis.fns[0];
        assert_eq!(f.effects.len(), 1);
        assert_eq!(f.effects[0].effect, Effect::Time);
        assert!(f.effects[0].direct);
        assert_eq!(f.effects[0].witness, vec!["stamp".to_owned()]);
    }

    #[test]
    fn effects_propagate_to_callers_with_witness() {
        let files = scanned(&[(
            "crates/core/src/a.rs",
            "pub fn outer() { mid(); }\nfn mid() { leaf(); }\nfn leaf() { let _ = std::time::SystemTime::now(); }\n",
        )]);
        let analysis = analyze(&files);
        let outer = analysis.explain("outer").unwrap_or_default();
        assert!(
            outer.contains("via outer → mid → leaf"),
            "witness chain: {outer}"
        );
        assert!(outer.contains("`SystemTime::now`"), "{outer}");
    }

    #[test]
    fn direct_recursion_terminates_with_acyclic_witness() {
        let files = scanned(&[(
            "crates/core/src/a.rs",
            "pub fn looper(n: u32) { if n > 0 { looper(n - 1); } let _v = vec![n]; }\n",
        )]);
        let analysis = analyze(&files);
        let f = &analysis.fns[0];
        assert_eq!(f.effects.len(), 1);
        assert_eq!(f.effects[0].effect, Effect::Alloc);
        assert!(f.effects[0].direct, "self-seed beats the recursive edge");
        assert_eq!(f.effects[0].witness.len(), 1);
    }

    #[test]
    fn mutual_recursion_terminates_with_acyclic_witness() {
        let files = scanned(&[(
            "crates/core/src/a.rs",
            "pub fn ping(n: u32) { if n > 0 { pong(n - 1); } }\n\
             pub fn pong(n: u32) { if n > 0 { ping(n - 1); } let _ = std::fs::read(\"x\");\n}\n",
        )]);
        let analysis = analyze(&files);
        let ping = analysis.explain("ping").unwrap_or_default();
        assert!(ping.contains("via ping → pong"), "{ping}");
        let pong = analysis.explain("pong").unwrap_or_default();
        assert!(pong.contains("direct: `std::fs`"), "{pong}");
        // Witness chains never revisit a node despite the cycle.
        for f in &analysis.fns {
            for e in &f.effects {
                let uniq: BTreeSet<&String> = e.witness.iter().collect();
                assert_eq!(uniq.len(), e.witness.len(), "cycle in witness");
            }
        }
    }

    #[test]
    fn hash_order_seeds_come_from_iteration_sites() {
        let files = scanned(&[(
            "crates/core/src/a.rs",
            "use std::collections::HashMap;\n\
             pub fn dump(m: &HashMap<u32, u32>) -> u32 { let mut s = 0; for (k, _) in m.iter() { s += k; } s }\n\
             pub fn caller(m: &HashMap<u32, u32>) -> u32 { dump(m) }\n",
        )]);
        let analysis = analyze(&files);
        let caller = analysis.explain("caller").unwrap_or_default();
        assert!(
            caller.contains("hash-order") && caller.contains("via caller → dump"),
            "{caller}"
        );
    }

    #[test]
    fn pure_functions_report_empty_sets() {
        let files = scanned(&[(
            "crates/core/src/a.rs",
            "pub fn add(a: u32, b: u32) -> u32 { a + b }\n",
        )]);
        let analysis = analyze(&files);
        assert!(analysis.fns[0].effects.is_empty());
        let text = analysis.explain("add").unwrap_or_default();
        assert!(text.contains("pure — no effects inferred"), "{text}");
    }

    #[test]
    fn render_json_is_deterministic_and_versioned() {
        let files = scanned(&[(
            "crates/core/src/a.rs",
            "pub fn outer() { leaf(); }\nfn leaf() { let _ = std::time::Instant::now(); }\n",
        )]);
        let a = analyze(&files).render_json();
        let b = analyze(&files).render_json();
        assert_eq!(a, b, "byte-identical across runs");
        assert!(a.contains("\"schema_version\": 3"), "{a}");
        assert!(a.contains("\"tool\": \"darlint-effects\""), "{a}");
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }

    fn replay_lint(files: &[(&str, &str)]) -> FileLint {
        let files = scanned(files);
        let graph = Graph::build(&files);
        let seeds = lexical_sites(&graph, &files);
        replay_pure(&graph, &files, &seeds)
    }

    #[test]
    fn replay_pure_flags_transitive_time_leak_with_chain() {
        let lint = replay_lint(&[(
            "crates/collect/src/fixture.rs",
            "// darlint: pure-root\npub fn digest() -> u64 { helper() }\nfn helper() -> u64 { let _ = std::time::Instant::now(); 0 }\n",
        )]);
        assert_eq!(lint.violations.len(), 1, "{:?}", lint.violations);
        let v = &lint.violations[0];
        assert_eq!(v.rule, rule::REPLAY_PURE);
        assert_eq!(v.line, 3);
        assert!(v.message.contains("via digest → helper"), "{}", v.message);
        assert!(v.message.contains("time effect"), "{}", v.message);
    }

    #[test]
    fn replay_pure_allows_alloc_and_sanctioned_io() {
        // Alloc is not a purity concern; Io inside a durable-I/O owner
        // (here: the WAL) is the replay input, not a leak.
        let lint = replay_lint(&[(
            "crates/collect/src/wal.rs",
            "// darlint: pure-root\npub fn replay() -> Vec<u8> { std::fs::read(\"wal\").unwrap_or_default() }\n",
        )]);
        assert!(lint.violations.is_empty(), "{:?}", lint.violations);
    }

    #[test]
    fn replay_pure_bans_io_outside_durable_owners() {
        let lint = replay_lint(&[(
            "crates/collect/src/fixture.rs",
            "// darlint: pure-root\npub fn digest() -> Vec<u8> { std::fs::read(\"x\").unwrap_or_default() }\n",
        )]);
        assert_eq!(lint.violations.len(), 1, "{:?}", lint.violations);
        assert!(lint.violations[0].message.contains("io effect"));
    }

    #[test]
    fn replay_pure_hatch_suppresses_and_counts() {
        let lint = replay_lint(&[(
            "crates/collect/src/fixture.rs",
            "// darlint: pure-root\npub fn digest() -> u64 {\n    // darlint: allow(replay-pure) — cache warmup stamp, excluded from the digest\n    let _ = std::time::Instant::now();\n    0\n}\n",
        )]);
        assert!(lint.violations.is_empty(), "{:?}", lint.violations);
        assert_eq!(lint.allows.get("replay-pure"), Some(&1));
    }

    #[test]
    fn unmarked_functions_are_not_replay_constrained() {
        let lint = replay_lint(&[(
            "crates/collect/src/fixture.rs",
            "pub fn free() -> u64 { let _ = std::time::Instant::now(); 0 }\n",
        )]);
        assert!(lint.violations.is_empty(), "{:?}", lint.violations);
    }
}
