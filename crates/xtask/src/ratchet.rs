//! The darlint ratchet: a committed baseline of per-rule violation
//! counts and per-hatch allow counts that may only move *down*.
//!
//! The workspace is held at zero violations by `--check`, so the live
//! debt currency is the escape hatches: every
//! `// darlint: allow(...) — reason` is justified tech debt, and the
//! ratchet stops it from accumulating silently. CI compares the current
//! run against `darlint.ratchet.json`; any count above the baseline
//! fails the build with a delta print. Paying debt down makes the run
//! *better* than the baseline, which CI reports as available tightening
//! — re-baseline with `--write-ratchet` to bank it.
//!
//! This module is pure (string → struct → string): the CLI owns file
//! I/O. The parser handles exactly the subset of JSON the renderer
//! emits — flat string→integer objects under `violations`/`allows` —
//! and rejects anything else, so a hand-edited baseline cannot be
//! half-read.

use std::collections::BTreeMap;

use crate::report::LintReport;

/// Baseline schema version stamped into the ratchet file.
pub const RATCHET_SCHEMA_VERSION: usize = 1;

/// A ratchet baseline (or the current run, summarized the same way).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Ratchet {
    /// Violation count per rule id.
    pub violations: BTreeMap<String, usize>,
    /// Justified-allow count per hatch name.
    pub allows: BTreeMap<String, usize>,
}

impl Ratchet {
    /// Summarizes a lint run into ratchet counts.
    pub fn from_report(report: &LintReport) -> Self {
        let mut violations: BTreeMap<String, usize> = BTreeMap::new();
        for v in &report.violations {
            *violations.entry(v.rule.to_owned()).or_insert(0) += 1;
        }
        Ratchet {
            violations,
            allows: report.allows.clone(),
        }
    }

    /// Renders the stable JSON form (sorted keys, trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"schema_version\": {RATCHET_SCHEMA_VERSION},\n"
        ));
        render_map(&mut out, "violations", &self.violations);
        out.push_str(",\n");
        render_map(&mut out, "allows", &self.allows);
        out.push_str("\n}\n");
        out
    }

    /// Parses a baseline previously written by [`Ratchet::render`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed construct.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            i: 0,
        };
        let mut ratchet = Ratchet::default();
        p.skip_ws();
        p.require(b'{')?;
        loop {
            p.skip_ws();
            if p.eat(b'}') {
                break;
            }
            let key = p.string()?;
            p.skip_ws();
            p.require(b':')?;
            p.skip_ws();
            match key.as_str() {
                "violations" => ratchet.violations = p.count_map()?,
                "allows" => ratchet.allows = p.count_map()?,
                "schema_version" => {
                    let v = p.number()?;
                    if v != RATCHET_SCHEMA_VERSION {
                        return Err(format!(
                            "unsupported ratchet schema_version {v} (expected \
                             {RATCHET_SCHEMA_VERSION})"
                        ));
                    }
                }
                other => return Err(format!("unexpected ratchet key `{other}`")),
            }
            p.skip_ws();
            if !p.eat(b',') {
                p.skip_ws();
                p.require(b'}')?;
                break;
            }
        }
        Ok(ratchet)
    }
}

/// One side of a baseline comparison: `counts["kind/name"]`.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Delta {
    /// Counts above the baseline — these fail CI.
    pub regressions: Vec<String>,
    /// Counts below the baseline — available tightening.
    pub improvements: Vec<String>,
}

/// Compares the current run against the baseline. Every key present on
/// either side participates; a missing key counts as zero.
pub fn compare(baseline: &Ratchet, current: &Ratchet) -> Delta {
    let mut delta = Delta::default();
    compare_maps(
        "violations",
        &baseline.violations,
        &current.violations,
        &mut delta,
    );
    compare_maps("allows", &baseline.allows, &current.allows, &mut delta);
    delta
}

fn compare_maps(
    kind: &str,
    baseline: &BTreeMap<String, usize>,
    current: &BTreeMap<String, usize>,
    delta: &mut Delta,
) {
    let mut keys: Vec<&String> = baseline.keys().chain(current.keys()).collect();
    keys.sort();
    keys.dedup();
    for key in keys {
        let base = baseline.get(key).copied().unwrap_or(0);
        let cur = current.get(key).copied().unwrap_or(0);
        if cur > base {
            delta.regressions.push(format!(
                "{kind}/{key}: {cur} (baseline {base}, +{})",
                cur - base
            ));
        } else if cur < base {
            delta.improvements.push(format!(
                "{kind}/{key}: {cur} (baseline {base}, -{})",
                base - cur
            ));
        }
    }
}

fn render_map(out: &mut String, name: &str, map: &BTreeMap<String, usize>) {
    out.push_str(&format!("  \"{name}\": {{"));
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{k}\": {v}"));
    }
    if !map.is_empty() {
        out.push_str("\n  ");
    }
    out.push('}');
}

/// Minimal cursor over the renderer's JSON subset.
struct Parser<'a> {
    bytes: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.i)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.i += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.i) == Some(&b) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn require(&mut self, b: u8) -> Result<(), String> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(format!(
                "ratchet parse error at byte {}: expected `{}`",
                self.i, b as char
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.require(b'"')?;
        let start = self.i;
        while let Some(&b) = self.bytes.get(self.i) {
            if b == b'"' {
                let s = String::from_utf8_lossy(&self.bytes[start..self.i]).into_owned();
                self.i += 1;
                return Ok(s);
            }
            if b == b'\\' {
                return Err(format!(
                    "ratchet parse error at byte {}: escapes are not supported in keys",
                    self.i
                ));
            }
            self.i += 1;
        }
        Err("ratchet parse error: unterminated string".to_owned())
    }

    fn number(&mut self) -> Result<usize, String> {
        let start = self.i;
        while self.bytes.get(self.i).is_some_and(u8::is_ascii_digit) {
            self.i += 1;
        }
        if self.i == start {
            return Err(format!(
                "ratchet parse error at byte {}: expected a number",
                start
            ));
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.i]);
        text.parse::<usize>()
            .map_err(|e| format!("ratchet parse error: bad number `{text}`: {e}"))
    }

    fn count_map(&mut self) -> Result<BTreeMap<String, usize>, String> {
        let mut map = BTreeMap::new();
        self.require(b'{')?;
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(map);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.require(b':')?;
            self.skip_ws();
            let n = self.number()?;
            map.insert(key, n);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.require(b'}')?;
            return Ok(map);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ratchet {
        let mut r = Ratchet::default();
        r.allows.insert("hot-alloc".into(), 7);
        r.allows.insert("panic".into(), 2);
        r.violations.insert("no-panic-paths".into(), 0);
        r
    }

    #[test]
    fn render_parse_round_trips() {
        let r = sample();
        let parsed = Ratchet::parse(&r.render()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn empty_round_trips() {
        let r = Ratchet::default();
        assert_eq!(Ratchet::parse(&r.render()).unwrap(), r);
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        let text = "{\n  \"schema_version\": 99,\n  \"violations\": {},\n  \"allows\": {}\n}\n";
        assert!(Ratchet::parse(text).is_err());
    }

    #[test]
    fn parse_rejects_unknown_keys() {
        let text = "{\"surprise\": 1}";
        assert!(Ratchet::parse(text).is_err());
    }

    #[test]
    fn compare_flags_increases_only_as_regressions() {
        let base = sample();
        let mut cur = sample();
        cur.allows.insert("hot-alloc".into(), 9); // worse
        cur.allows.insert("panic".into(), 1); // better
        cur.violations.insert("nondet-order".into(), 3); // new debt
        let delta = compare(&base, &cur);
        assert_eq!(
            delta.regressions,
            vec![
                "violations/nondet-order: 3 (baseline 0, +3)",
                "allows/hot-alloc: 9 (baseline 7, +2)",
            ]
        );
        assert_eq!(delta.improvements, vec!["allows/panic: 1 (baseline 2, -1)"]);
    }

    #[test]
    fn missing_keys_count_as_zero() {
        let base = Ratchet::default();
        let mut cur = Ratchet::default();
        cur.allows.insert("io".into(), 1);
        let delta = compare(&base, &cur);
        assert_eq!(delta.regressions, vec!["allows/io: 1 (baseline 0, +1)"]);
        // And the reverse is an improvement, not an error.
        let delta = compare(&cur, &base);
        assert_eq!(delta.improvements, vec!["allows/io: 0 (baseline 1, -1)"]);
    }
}
