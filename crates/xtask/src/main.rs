//! CLI entry point for workspace maintenance tasks.
//!
//! ```text
//! cargo run -p xtask -- lint [--check] [--json] [--out PATH] [--root PATH]
//! ```
//!
//! `lint` runs the darlint invariant pass (see the crate docs and
//! DESIGN.md §11). Human diagnostics go to stderr; `--json` emits the
//! machine report on stdout (or to `--out PATH`). Without `--check` the
//! command always exits 0 (report-only); with `--check` any violation
//! exits 1. Exit code 2 signals an operational failure (unreadable
//! workspace, bad flags).

#![deny(unsafe_code)]
#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::{find_root, run_lint};

const USAGE: &str = "\
xtask — workspace maintenance tasks

USAGE:
    cargo run -p xtask -- lint [--check] [--json] [--out PATH] [--root PATH]

COMMANDS:
    lint    run the darlint invariant pass over crates/*/src

OPTIONS:
    --check        exit nonzero when any violation is found
    --json         emit the JSON report on stdout
    --out PATH     write the JSON report to PATH (implies --json)
    --root PATH    workspace root (default: auto-detected)
";

struct Args {
    check: bool,
    json: bool,
    out: Option<PathBuf>,
    root: Option<PathBuf>,
}

fn parse_args(mut argv: std::env::Args) -> Result<Args, String> {
    let _ = argv.next(); // program name
    match argv.next().as_deref() {
        Some("lint") => {}
        Some("help") | Some("--help") | Some("-h") | None => return Err(USAGE.to_owned()),
        Some(other) => return Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
    let mut args = Args {
        check: false,
        json: false,
        out: None,
        root: None,
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--check" => args.check = true,
            "--json" => args.json = true,
            "--out" => {
                let path = argv.next().ok_or("--out requires a path")?;
                args.out = Some(PathBuf::from(path));
                args.json = true;
            }
            "--root" => {
                let path = argv.next().ok_or("--root requires a path")?;
                args.root = Some(PathBuf::from(path));
            }
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args()) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let root = match args.root.map(Ok).unwrap_or_else(find_root) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("xtask: {msg}");
            return ExitCode::from(2);
        }
    };
    let report = match run_lint(&root) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("xtask: {msg}");
            return ExitCode::from(2);
        }
    };
    eprint!("{}", report.render_human());
    if args.json {
        let json = report.render_json();
        match &args.out {
            Some(path) => {
                if let Some(parent) = path.parent() {
                    let _ = std::fs::create_dir_all(parent);
                }
                if let Err(e) = std::fs::write(path, &json) {
                    eprintln!("xtask: cannot write {}: {e}", path.display());
                    return ExitCode::from(2);
                }
                eprintln!("darlint: JSON report written to {}", path.display());
            }
            None => print!("{json}"),
        }
    }
    if args.check && !report.is_clean() {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
