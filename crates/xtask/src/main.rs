//! CLI entry point for workspace maintenance tasks.
//!
//! ```text
//! cargo run -p xtask -- lint    [--check] [--json] [--out PATH] [--root PATH]
//!                               [--ratchet PATH] [--write-ratchet PATH]
//! cargo run -p xtask -- effects [--json] [--out PATH] [--explain FN]
//!                               [--root PATH]
//! ```
//!
//! `lint` runs the darlint invariant pass (see the crate docs and
//! DESIGN.md §11/§15/§16). Human diagnostics go to stderr; `--json`
//! emits the machine report on stdout (or to `--out PATH`). Without
//! `--check` the command always exits 0 (report-only); with `--check`
//! any violation exits 1. `--ratchet PATH` additionally compares the run
//! against a committed baseline and (under `--check`) fails on any
//! per-rule or per-hatch count above it; `--write-ratchet PATH`
//! re-baselines.
//!
//! `effects` runs the interprocedural effect inference alone: by default
//! it prints a per-effect summary; `--explain FN` prints one function's
//! inferred effects with their witness chains; `--json`/`--out` emit the
//! deterministic `effects.json` report (schema version 3).
//!
//! Exit code 2 signals an operational failure (unreadable workspace, bad
//! flags, unreadable baseline, unknown `--explain` function).

#![deny(unsafe_code)]
#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::ratchet::{compare, Ratchet};
use xtask::{find_root, run_effects, run_lint};

const USAGE: &str = "\
xtask — workspace maintenance tasks

USAGE:
    cargo run -p xtask -- lint    [--check] [--json] [--out PATH] [--root PATH]
                                  [--ratchet PATH] [--write-ratchet PATH]
    cargo run -p xtask -- effects [--json] [--out PATH] [--explain FN]
                                  [--root PATH]

COMMANDS:
    lint     run the darlint invariant pass over crates/*/src
             (no-panic-paths, deterministic-time, scoped-threads-only,
             crate-hygiene, hot-alloc, hot-propagate, durable-io,
             nondet-order, rng-confined, replay-pure, bare-allow)
    effects  run interprocedural effect inference alone: per-function
             transitive effect sets (alloc/hash-order/io/panic/rng/
             thread-spawn/time) with witness chains

OPTIONS:
    --check               (lint) exit nonzero when any violation is found,
                          or when a --ratchet count regresses
    --json                emit the JSON report on stdout
    --out PATH            write the JSON report to PATH (implies --json)
    --root PATH           workspace root (default: auto-detected)
    --ratchet PATH        (lint) compare against the committed baseline at PATH
    --write-ratchet PATH  (lint) write the current counts to PATH as the
                          new baseline
    --explain FN          (effects) print FN's inferred effects and witness
                          chains (matches `name` or `Owner::name`)
";

enum Command {
    Lint,
    Effects,
}

struct Args {
    command: Command,
    check: bool,
    json: bool,
    out: Option<PathBuf>,
    root: Option<PathBuf>,
    ratchet: Option<PathBuf>,
    write_ratchet: Option<PathBuf>,
    explain: Option<String>,
}

fn parse_args(mut argv: std::env::Args) -> Result<Args, String> {
    let _ = argv.next(); // program name
    let command = match argv.next().as_deref() {
        Some("lint") => Command::Lint,
        Some("effects") => Command::Effects,
        Some("help") | Some("--help") | Some("-h") | None => return Err(USAGE.to_owned()),
        Some(other) => return Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    let lint = matches!(command, Command::Lint);
    let mut args = Args {
        command,
        check: false,
        json: false,
        out: None,
        root: None,
        ratchet: None,
        write_ratchet: None,
        explain: None,
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--check" if lint => args.check = true,
            "--json" => args.json = true,
            "--out" => {
                let path = argv.next().ok_or("--out requires a path")?;
                args.out = Some(PathBuf::from(path));
                args.json = true;
            }
            "--root" => {
                let path = argv.next().ok_or("--root requires a path")?;
                args.root = Some(PathBuf::from(path));
            }
            "--ratchet" if lint => {
                let path = argv.next().ok_or("--ratchet requires a path")?;
                args.ratchet = Some(PathBuf::from(path));
            }
            "--write-ratchet" if lint => {
                let path = argv.next().ok_or("--write-ratchet requires a path")?;
                args.write_ratchet = Some(PathBuf::from(path));
            }
            "--explain" if !lint => {
                let name = argv.next().ok_or("--explain requires a function name")?;
                args.explain = Some(name);
            }
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    Ok(args)
}

/// Runs the baseline comparison; returns whether any count regressed.
fn check_ratchet(path: &PathBuf, current: &Ratchet) -> Result<bool, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read ratchet baseline {}: {e}", path.display()))?;
    let baseline = Ratchet::parse(&text)
        .map_err(|e| format!("bad ratchet baseline {}: {e}", path.display()))?;
    let delta = compare(&baseline, current);
    for r in &delta.regressions {
        eprintln!("darlint: ratchet regression: {r}");
    }
    for i in &delta.improvements {
        eprintln!("darlint: ratchet improvement: {i}");
    }
    if !delta.regressions.is_empty() {
        eprintln!(
            "darlint: {} count(s) above the committed baseline {}.\n\
             darlint: pay the debt down (fix the violation or remove the allow), or — \n\
             darlint: if the new debt is justified — re-baseline with:\n\
             darlint:     cargo run -p xtask -- lint --write-ratchet {}",
            delta.regressions.len(),
            path.display(),
            path.display()
        );
        return Ok(true);
    }
    if delta.improvements.is_empty() {
        eprintln!(
            "darlint: ratchet holds (no change against {})",
            path.display()
        );
    } else {
        eprintln!(
            "darlint: ratchet holds; {} count(s) below baseline — bank the \
             improvement with --write-ratchet {}",
            delta.improvements.len(),
            path.display()
        );
    }
    Ok(false)
}

/// Writes `json` to `--out PATH` (creating parent directories) or stdout.
fn emit_json(out: &Option<PathBuf>, json: &str, label: &str) -> Result<(), String> {
    match out {
        Some(path) => {
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            std::fs::write(path, json)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            eprintln!("darlint: {label} written to {}", path.display());
        }
        None => print!("{json}"),
    }
    Ok(())
}

fn run_lint_command(args: &Args, root: &std::path::Path) -> ExitCode {
    let report = match run_lint(root) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("xtask: {msg}");
            return ExitCode::from(2);
        }
    };
    eprint!("{}", report.render_human());
    if args.json {
        if let Err(msg) = emit_json(&args.out, &report.render_json(), "JSON report") {
            eprintln!("xtask: {msg}");
            return ExitCode::from(2);
        }
    }
    let current = Ratchet::from_report(&report);
    let mut ratchet_regressed = false;
    if let Some(path) = &args.ratchet {
        match check_ratchet(path, &current) {
            Ok(regressed) => ratchet_regressed = regressed,
            Err(msg) => {
                eprintln!("xtask: {msg}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(path) = &args.write_ratchet {
        if let Err(e) = std::fs::write(path, current.render()) {
            eprintln!("xtask: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("darlint: ratchet baseline written to {}", path.display());
    }
    if args.check && (!report.is_clean() || ratchet_regressed) {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

fn run_effects_command(args: &Args, root: &std::path::Path) -> ExitCode {
    let analysis = match run_effects(root) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("xtask: {msg}");
            return ExitCode::from(2);
        }
    };
    if let Some(name) = &args.explain {
        match analysis.explain(name) {
            Some(text) => print!("{text}"),
            None => {
                eprintln!("xtask: no workspace function matches `{name}`");
                return ExitCode::from(2);
            }
        }
        return ExitCode::SUCCESS;
    }
    if args.json {
        if let Err(msg) = emit_json(&args.out, &analysis.render_json(), "effects report") {
            eprintln!("xtask: {msg}");
            return ExitCode::from(2);
        }
    } else {
        print!("{}", analysis.render_summary());
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args()) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let root = match args.root.clone().map(Ok).unwrap_or_else(find_root) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("xtask: {msg}");
            return ExitCode::from(2);
        }
    };
    match args.command {
        Command::Lint => run_lint_command(&args, &root),
        Command::Effects => run_effects_command(&args, &root),
    }
}
