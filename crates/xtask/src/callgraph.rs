//! Approximate workspace call graph and hot-path constraint propagation.
//!
//! [`Graph::build`] constructs a name-resolution call graph across every
//! scanned file; it is the substrate for *all* interprocedural analysis:
//! the hot-path propagation below, and the effect-inference fixpoint in
//! [`crate::effects`] (which runs the `replay-pure` rule and powers the
//! `effects` subcommand).
//!
//! The per-file `hot-alloc` rule only guards functions someone remembered
//! to annotate with `// darlint: hot`. [`hot_propagate`] closes the
//! unmarked-helper hole: it walks the graph from the hot **roots** —
//! explicitly marked functions plus the `*_into` layer/kernel entries in
//! `tensor` and `nn` — so that *any* function transitively reachable
//! from the zero-alloc inference path is checked for allocation (and,
//! outside the panic-free crates, for panics). The allocation/panic
//! sites themselves come from the shared effect-seed table
//! ([`crate::effects::lexical_sites`]): `Alloc` and `Panic` seeds are
//! exactly the constructs this pass used to scan for itself. Findings
//! carry the reach chain so the fix is obvious: break the edge, hatch
//! the site with `// darlint: allow(hot-alloc) — <reason>`, or declare
//! the callee `// darlint: cold — <reason>` to prune traversal.
//!
//! Resolution is deliberately approximate (no type information):
//!
//! * `recv.name(...)` resolves to every non-test method `name` taking
//!   `self`, except the [`UNIVERSAL_METHODS`] stoplist (std names like
//!   `clone`/`len`/`push` that would wire the graph to unrelated impls);
//! * `Qual::name(...)` resolves to methods/associated fns of the impl or
//!   trait owner `Qual` (`Self` maps to the caller's owner), falling
//!   back to free functions `name` when no owner matches (covers
//!   `module::free_fn(...)` paths);
//! * `name(...)` resolves to free functions of that name.
//!
//! Over-approximation errs toward *more* reachability, which is the safe
//! direction for a constraint checker; function *references* passed as
//! values (`map(helper)`) and trait-object calls through stoplisted
//! names (`storage.read(...)`) are the under-approximated forms.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::effects::{Effect, Site};
use crate::lex::TokKind;
use crate::rules::{
    crate_of, file_hatches, hatch_name, rule, skip_angles, snippet, suppressed, FileLint,
    Violation, PANIC_CRATES,
};
use crate::scan::ScannedFile;

/// Method names never used for call-graph resolution: std vocabulary so
/// common that name matching would connect the graph to unrelated impls.
/// The cost of listing a name here is only that a *custom* method with
/// the same name is not traversed — its body is still checked if it is
/// reachable some other way or marked hot directly.
const UNIVERSAL_METHODS: &[&str] = &[
    "abs",
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_mut_slice",
    "as_ref",
    "as_slice",
    "as_str",
    "binary_search_by",
    "borrow",
    "borrow_mut",
    "ceil",
    "chunks",
    "chunks_exact",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "contains",
    "contains_key",
    "copied",
    "copy_from_slice",
    "count",
    "default",
    "deref",
    "deref_mut",
    "drain",
    "drop",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "err",
    "exp",
    "extend",
    "fill",
    "filter",
    "find",
    "first",
    "floor",
    "flush",
    "fmt",
    "fold",
    "from_bits",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "is_err",
    "is_none",
    "is_ok",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "ln",
    "lock",
    "map",
    "map_err",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "ne",
    "next",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_default",
    "or_else",
    "or_insert",
    "partial_cmp",
    "pop",
    "position",
    "pow",
    "powf",
    "powi",
    "push",
    "push_str",
    "read",
    "remove",
    "replace",
    "rev",
    "round",
    "sort",
    "sort_by",
    "sort_unstable",
    "sort_unstable_by",
    "split",
    "split_at",
    "split_at_mut",
    "sqrt",
    "starts_with",
    "sum",
    "take",
    "to_bits",
    "to_owned",
    "to_string",
    "trim",
    "try_into",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "values_mut",
    "windows",
    "write",
    "write_all",
    "zip",
];

/// Crates whose `*_into` functions are implicit hot roots: the layer
/// forwards and kernel writers of the zero-alloc inference path.
const INTO_ROOT_PREFIXES: &[&str] = &["crates/tensor/", "crates/nn/"];

/// One function node in the workspace graph.
pub struct Node {
    /// Index into the scanned-files slice.
    pub file: usize,
    /// Index into that file's `fns`.
    pub fn_idx: usize,
    /// Carries an explicit `// darlint: hot` marker.
    pub hot: bool,
    /// Root of hot-path propagation: marked hot, or an `*_into` entry in
    /// `tensor`/`nn` (non-test, non-cold).
    pub hot_root: bool,
    /// `// darlint: cold — <reason>`: pruned from hot-path traversal.
    pub cold: bool,
    /// `// darlint: pure-root`: a replay-purity contract root
    /// (see [`crate::effects::replay_pure`]).
    pub pure_root: bool,
    /// Inside a `cfg(test)` region: excluded from resolution and edges.
    pub is_test: bool,
}

/// The workspace call graph: one node per `fn` item, name-resolved call
/// edges, and the nested-fn token spans each analysis must skip when
/// scanning a body (nested fns are nodes of their own).
pub struct Graph {
    /// All function nodes, in (file, declaration) order.
    pub nodes: Vec<Node>,
    /// `edges[gid]` = callee node ids (sorted, deduplicated).
    pub edges: Vec<BTreeSet<usize>>,
    /// Per node: token spans of functions nested inside its body.
    pub(crate) nested: Vec<Vec<(usize, usize)>>,
}

impl Graph {
    /// Builds the graph over all scanned files.
    pub fn build(files: &[(String, ScannedFile)]) -> Graph {
        let mut nodes: Vec<Node> = Vec::new();
        // Resolution indices over non-test functions.
        let mut methods_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_owner: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut free_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();

        for (fi, (path, scanned)) in files.iter().enumerate() {
            for (ki, f) in scanned.fns.iter().enumerate() {
                let gid = nodes.len();
                let item = &f.item;
                let is_into_root = item.name.ends_with("_into")
                    && INTO_ROOT_PREFIXES.iter().any(|p| path.starts_with(p));
                nodes.push(Node {
                    file: fi,
                    fn_idx: ki,
                    hot: f.hot,
                    hot_root: !item.is_test && !f.cold && (f.hot || is_into_root),
                    cold: f.cold,
                    pure_root: !item.is_test && f.pure_root,
                    is_test: item.is_test,
                });
                if item.is_test {
                    continue;
                }
                if item.has_self {
                    methods_by_name
                        .entry(item.name.clone())
                        .or_default()
                        .push(gid);
                }
                if let Some(owner) = &item.owner {
                    by_owner
                        .entry((owner.clone(), item.name.clone()))
                        .or_default()
                        .push(gid);
                } else if !item.has_self {
                    free_by_name.entry(item.name.clone()).or_default().push(gid);
                }
            }
        }

        // Token spans to skip per node: bodies of functions nested inside
        // it (they are nodes of their own, connected by call edges).
        let nested: Vec<Vec<(usize, usize)>> = nodes
            .iter()
            .map(|n| {
                let scanned = &files[n.file].1;
                let Some((open, close)) = scanned.fns[n.fn_idx].item.body else {
                    return Vec::new();
                };
                scanned
                    .fns
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != n.fn_idx)
                    .filter_map(|(_, g)| g.item.body)
                    .filter(|(o, c)| *o > open && *c < close)
                    .collect()
            })
            .collect();

        // Call edges.
        let mut edges: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); nodes.len()];
        for (gid, node) in nodes.iter().enumerate() {
            let (_, scanned) = &files[node.file];
            let f = &scanned.fns[node.fn_idx];
            if f.item.is_test {
                continue;
            }
            let Some((open, close)) = f.item.body else {
                continue;
            };
            let tokens = &scanned.tokens;
            let mut i = open;
            while i <= close {
                if let Some(&(_, nc)) = nested[gid].iter().find(|(no, _)| *no == i) {
                    i = nc + 1;
                    continue;
                }
                let t = &tokens[i];
                // `.name(...)` — method call (turbofish-tolerant).
                if t.is_punct('.') && tokens.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident) {
                    let name = tokens[i + 1].text.as_str();
                    let mut j = i + 2;
                    if tokens.get(j).is_some_and(|t| t.is_punct(':'))
                        && tokens.get(j + 1).is_some_and(|t| t.is_punct(':'))
                        && tokens.get(j + 2).is_some_and(|t| t.is_punct('<'))
                    {
                        j = skip_angles(tokens, j + 2);
                    }
                    if tokens.get(j).is_some_and(|t| t.is_punct('('))
                        && !UNIVERSAL_METHODS.contains(&name)
                    {
                        if let Some(cands) = methods_by_name.get(name) {
                            edges[gid].extend(cands.iter().copied());
                        }
                    }
                    i += 2;
                    continue;
                }
                // `Qual::name(...)` — associated/qualified call. Matching
                // at the *last* `X :: name (` pair means `a::b::c(...)`
                // resolves with owner `b`, which is the segment that
                // names an impl.
                if t.kind == TokKind::Ident
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
                    && tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
                    && tokens.get(i + 3).is_some_and(|n| n.kind == TokKind::Ident)
                {
                    let mut j = i + 4;
                    if tokens.get(j).is_some_and(|t| t.is_punct(':'))
                        && tokens.get(j + 1).is_some_and(|t| t.is_punct(':'))
                        && tokens.get(j + 2).is_some_and(|t| t.is_punct('<'))
                    {
                        j = skip_angles(tokens, j + 2);
                    }
                    if tokens.get(j).is_some_and(|t| t.is_punct('(')) {
                        let name = tokens[i + 3].text.as_str();
                        let owner = if t.is_ident("Self") {
                            f.item.owner.clone().unwrap_or_default()
                        } else {
                            t.text.clone()
                        };
                        match by_owner.get(&(owner, name.to_owned())) {
                            Some(cands) => edges[gid].extend(cands.iter().copied()),
                            // `module::free_fn(...)`: the qualifier is a
                            // module path segment, not an impl owner.
                            None => {
                                if let Some(cands) = free_by_name.get(name) {
                                    edges[gid].extend(cands.iter().copied());
                                }
                            }
                        }
                    }
                    i += 1;
                    continue;
                }
                // `name(...)` — free-function call. Excludes definitions
                // (`fn name(`), method calls (handled above), and path
                // tails.
                if t.kind == TokKind::Ident
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
                    && !(i > 0
                        && (tokens[i - 1].is_punct('.')
                            || tokens[i - 1].is_punct(':')
                            || tokens[i - 1].is_ident("fn")))
                {
                    if let Some(cands) = free_by_name.get(t.text.as_str()) {
                        edges[gid].extend(cands.iter().copied());
                    }
                }
                i += 1;
            }
        }

        Graph {
            nodes,
            edges,
            nested,
        }
    }

    /// `Owner::name` display form for diagnostics.
    pub fn display(&self, files: &[(String, ScannedFile)], gid: usize) -> String {
        let n = &self.nodes[gid];
        let item = &files[n.file].1.fns[n.fn_idx].item;
        match &item.owner {
            Some(o) => format!("{o}::{}", item.name),
            None => item.name.clone(),
        }
    }
}

/// Runs the full propagation analysis over all scanned files: graph
/// construction, effect-seed extraction, and [`hot_propagate`].
pub fn analyze(files: &[(String, ScannedFile)]) -> FileLint {
    let graph = Graph::build(files);
    let seeds = crate::effects::lexical_sites(&graph, files);
    hot_propagate(&graph, files, &seeds)
}

/// Hot-path constraint propagation over a prebuilt graph. Returns
/// violations (rule [`rule::HOT_PROPAGATE`]) plus the suppression counts
/// from hatches that covered propagated findings. `seeds` must come from
/// [`crate::effects::lexical_sites`] over the same graph: the `Alloc`
/// seeds (and, outside the panic-free crates, `Panic` seeds) of every
/// reached function are the findings.
pub(crate) fn hot_propagate(
    graph: &Graph,
    files: &[(String, ScannedFile)],
    seeds: &[Vec<Site>],
) -> FileLint {
    // BFS from the roots; predecessor chains feed the diagnostics.
    let mut pred: BTreeMap<usize, usize> = BTreeMap::new();
    let mut visited: BTreeSet<usize> = BTreeSet::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (gid, n) in graph.nodes.iter().enumerate() {
        if n.hot_root {
            visited.insert(gid);
            queue.push_back(gid);
        }
    }
    while let Some(gid) = queue.pop_front() {
        for &next in &graph.edges[gid] {
            let n = &graph.nodes[next];
            if n.is_test || n.cold || visited.contains(&next) {
                continue;
            }
            visited.insert(next);
            pred.insert(next, gid);
            queue.push_back(next);
        }
    }

    // Check every reachable function that is not already covered by the
    // per-file hot-alloc rule (i.e. not explicitly `// darlint: hot`).
    let mut out = FileLint::default();
    for &gid in &visited {
        let n = &graph.nodes[gid];
        let (path, scanned) = &files[n.file];
        if n.hot || seeds[gid].is_empty() {
            continue;
        }
        let hatches = file_hatches(&scanned.comments);
        let mut chain: Vec<String> = vec![graph.display(files, gid)];
        let mut cur = gid;
        while let Some(&p) = pred.get(&cur) {
            chain.push(graph.display(files, p));
            cur = p;
        }
        chain.reverse();
        let via = chain.join(" → ");
        let panic_too = !crate_of(path).is_some_and(|c| PANIC_CRATES.contains(&c));
        for site in &seeds[gid] {
            let verb = match site.effect {
                Effect::Alloc => "allocates",
                Effect::Panic if panic_too => "can panic",
                _ => continue,
            };
            if suppressed(&hatches, rule::HOT_PROPAGATE, site.line) {
                out.count_allow(hatch_name(rule::HOT_PROPAGATE));
                continue;
            }
            out.violations.push(Violation {
                rule: rule::HOT_PROPAGATE,
                file: path.clone(),
                line: site.line,
                message: format!(
                    "`{}` {verb} in `{}`, which is on the hot path via \
                     {via}; fix it, hatch the line with `// darlint: \
                     allow(hot-alloc) — <reason>`, or mark the function \
                     `// darlint: cold — <reason>`",
                    site.what,
                    graph.display(files, gid),
                ),
                snippet: snippet(&scanned.lines, site.line),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn run(files: &[(&str, &str)]) -> FileLint {
        let scanned: Vec<(String, ScannedFile)> = files
            .iter()
            .map(|(p, s)| ((*p).to_owned(), scan(s)))
            .collect();
        analyze(&scanned)
    }

    #[test]
    fn two_hop_propagation_flags_unmarked_helper() {
        // hot root → helper_a → helper_b (allocates): flagged with chain.
        let src = "\
// darlint: hot
pub fn step_into(ws: &mut Workspace) {
    helper_a(ws);
}

fn helper_a(ws: &mut Workspace) {
    helper_b(ws);
}

fn helper_b(_ws: &mut Workspace) {
    let _scratch = vec![0u8; 64];
}
";
        let lint = run(&[("crates/nn/src/fixture.rs", src)]);
        assert_eq!(lint.violations.len(), 1, "{:?}", lint.violations);
        let v = &lint.violations[0];
        assert_eq!(v.rule, rule::HOT_PROPAGATE);
        assert_eq!(v.line, 11);
        assert!(
            v.message.contains("step_into → helper_a → helper_b"),
            "{}",
            v.message
        );
    }

    #[test]
    fn propagation_crosses_files() {
        let a = "// darlint: hot\npub fn forward_into(x: u32) { crate::util::scratch(x); }\n";
        let b = "pub fn scratch(_x: u32) { let _v = vec![1u8]; }\n";
        let lint = run(&[("crates/nn/src/dense.rs", a), ("crates/nn/src/util.rs", b)]);
        assert_eq!(lint.violations.len(), 1, "{:?}", lint.violations);
        assert_eq!(lint.violations[0].file, "crates/nn/src/util.rs");
    }

    #[test]
    fn into_suffix_is_an_implicit_root_in_kernel_crates() {
        let src = "pub fn matmul_into(out: &mut [f32]) { helper(out); }\nfn helper(_o: &mut [f32]) { let _t = [0f32; 4].to_vec(); }\n";
        let lint = run(&[("crates/tensor/src/matmul.rs", src)]);
        assert_eq!(lint.violations.len(), 1, "{:?}", lint.violations);
        // The same code outside tensor/nn is not implicitly rooted.
        let lint = run(&[("crates/collect/src/loadgen.rs", src)]);
        assert!(lint.violations.is_empty(), "{:?}", lint.violations);
    }

    #[test]
    fn cold_marker_prunes_traversal() {
        let src = "\
// darlint: hot
pub fn step_into(x: u32) {
    diagnostics(x);
}

// darlint: cold — error formatting, never on the steady-state path
fn diagnostics(x: u32) {
    let _msg = vec![x as u8];
}
";
        let lint = run(&[("crates/nn/src/fixture.rs", src)]);
        assert!(lint.violations.is_empty(), "{:?}", lint.violations);
    }

    #[test]
    fn hatch_suppresses_propagated_finding_and_counts() {
        let src = "\
// darlint: hot
pub fn step_into(x: u32) {
    helper(x);
}

fn helper(x: u32) {
    // darlint: allow(hot-alloc) — first-call growth, amortized to zero
    let _v = vec![x as u8];
}
";
        let lint = run(&[("crates/nn/src/fixture.rs", src)]);
        assert!(lint.violations.is_empty(), "{:?}", lint.violations);
        assert_eq!(lint.allowed, 1);
        assert_eq!(lint.allows.get("hot-alloc"), Some(&1));
    }

    #[test]
    fn method_and_qualified_calls_resolve() {
        let src = "\
pub struct Dense;
impl Dense {
    // darlint: hot
    pub fn forward_into(&self, x: u32) {
        self.project(x);
        Dense::assoc(x);
    }
    fn project(&self, x: u32) {
        let _p = vec![x as u8];
    }
    fn assoc(x: u32) {
        let _a = vec![x as u8];
    }
}
";
        let lint = run(&[("crates/nn/src/dense.rs", src)]);
        let lines: Vec<usize> = lint.violations.iter().map(|v| v.line).collect();
        assert_eq!(lines, vec![9, 12], "{:?}", lint.violations);
    }

    #[test]
    fn test_functions_never_enter_the_graph() {
        let src = "\
// darlint: hot
pub fn step_into(x: u32) { let _ = x; }

#[cfg(test)]
mod tests {
    fn helper() { let _v = vec![1u8]; super::step_into(1); }
}
";
        let lint = run(&[("crates/nn/src/fixture.rs", src)]);
        assert!(lint.violations.is_empty(), "{:?}", lint.violations);
    }

    #[test]
    fn universal_method_names_do_not_wire_the_graph() {
        // `.len()` on a Vec must not resolve to some custom `len` impl.
        let src = "\
pub struct Pool;
impl Pool {
    fn len(&self) -> usize {
        let _v = vec![0u8; 1];
        1
    }
}
// darlint: hot
pub fn step_into(v: &[u32]) -> usize { v.len() }
";
        let lint = run(&[("crates/nn/src/fixture.rs", src)]);
        assert!(lint.violations.is_empty(), "{:?}", lint.violations);
    }

    #[test]
    fn graph_exposes_markers_on_nodes() {
        let src = "\
// darlint: pure-root
pub fn digest() -> u64 { helper() }

// darlint: cold — diagnostics only
fn helper() -> u64 { 0 }
";
        let scanned = vec![("crates/collect/src/fixture.rs".to_owned(), scan(src))];
        let graph = Graph::build(&scanned);
        assert!(graph.nodes[0].pure_root);
        assert!(!graph.nodes[0].cold);
        assert!(graph.nodes[1].cold);
        assert!(graph.edges[0].contains(&1), "digest → helper edge");
        assert_eq!(graph.display(&scanned, 0), "digest");
    }
}
