//! Token-tree lexer underpinning darlint v2.
//!
//! The v1 pass worked on a *masked* copy of the source (comments and
//! literals blanked to spaces) and matched rule tokens by substring
//! search. That forced boundary guards (`panic!` vs `my_panic!`), could
//! not see through formatting (`.unwrap ()`), and gave the rules no
//! structure to hang an item parser or call graph on. v2 lexes the file
//! into a proper token stream: identifiers, lifetimes, numbers, string
//! and char literals (contents dropped so rules can never match into
//! text), and single-character punctuation, each tagged with its 1-based
//! source line. Comments are not tokens; line comments are captured on
//! the side because the escape-hatch grammar (`// darlint: ...`) lives
//! in them.
//!
//! The lexer understands the full literal zoo that used to live in the
//! masking scanner — nested block comments, `r#"…"#`/`r##"…"##` raw
//! strings, byte strings and byte chars, escapes, and the char-literal
//! vs. lifetime ambiguity — and it preserves line numbers exactly, so a
//! diagnostic anchored to a token points at the right source line (a
//! property test pins this).

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `unwrap`, `HashMap`, ...).
    Ident,
    /// A lifetime (`'a`); kept distinct so it can never be confused with
    /// a char literal.
    Lifetime,
    /// A numeric literal (`1`, `0xF1EE7u64`, `2.5e-3`).
    Num,
    /// A string literal of any flavour (plain, raw, byte). The text is
    /// dropped: rules must never match inside literals.
    Str,
    /// A char or byte-char literal; text dropped like [`TokKind::Str`].
    Char,
    /// A single punctuation character (`.`, `:`, `!`, `(`, ...).
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// The lexeme kind.
    pub kind: TokKind,
    /// Identifier/number text, or the punctuation character. Empty for
    /// string and char literals.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Token {
    /// Does this token equal punctuation character `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// Does this token equal identifier `name`?
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }
}

/// A line comment (`// ...`) captured during lexing.
#[derive(Debug, Clone)]
pub struct LineComment {
    /// 1-based line on which the comment starts.
    pub line: usize,
    /// Full comment text including the leading `//`.
    pub text: String,
    /// Whether the comment is the only token on its line.
    pub own_line: bool,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All code tokens, in file order (comments excluded).
    pub tokens: Vec<Token>,
    /// All `//` comments, in file order.
    pub comments: Vec<LineComment>,
}

/// Lexes `source` into tokens and line comments.
pub fn lex(source: &str) -> Lexed {
    Lexer {
        bytes: source.as_bytes(),
        source,
        i: 0,
        line: 1,
        line_had_code: false,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    source: &'a str,
    i: usize,
    line: usize,
    /// Has any code token been emitted on the current line yet?
    line_had_code: bool,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while self.i < self.bytes.len() {
            let b = self.bytes[self.i];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.line_had_code = false;
                    self.i += 1;
                }
                _ if b.is_ascii_whitespace() => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' | b'b' if self.starts_raw_string() => self.raw_string(),
                b'b' if self.peek(1) == Some(b'\'') => {
                    // Byte char: skip the `b`, then lex the char literal.
                    self.i += 1;
                    self.char_literal();
                }
                b'b' if self.peek(1) == Some(b'"') => {
                    self.i += 1;
                    self.plain_string();
                }
                b'r' if self.peek(1) == Some(b'#') && self.peek(2).is_some_and(is_ident_start) => {
                    // Raw identifier `r#type`: token text is the bare name.
                    self.i += 2;
                    self.ident();
                }
                b'"' => self.plain_string(),
                b'\'' => {
                    if self.is_char_literal() {
                        self.char_literal();
                    } else {
                        self.lifetime();
                    }
                }
                _ if is_ident_start(b) => self.ident(),
                _ if b.is_ascii_digit() => self.number(),
                _ => {
                    // Single punctuation character (multi-byte UTF-8
                    // punctuation — em-dashes in comments never reach
                    // here, but be safe and consume the whole char).
                    let ch_len = utf8_len(b);
                    let text = self.source[self.i..self.i + ch_len].to_owned();
                    self.push(TokKind::Punct, text);
                    self.i += ch_len;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.i + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, text: String) {
        self.line_had_code = true;
        self.out.tokens.push(Token {
            kind,
            text,
            line: self.line,
        });
    }

    fn line_comment(&mut self) {
        let start = self.i;
        let own_line = !self.line_had_code;
        while self.i < self.bytes.len() && self.bytes[self.i] != b'\n' {
            self.i += 1;
        }
        self.out.comments.push(LineComment {
            line: self.line,
            text: self.source[start..self.i].to_owned(),
            own_line,
        });
    }

    fn block_comment(&mut self) {
        // Nested: `/* a /* b */ c */` closes only at depth 0.
        let mut depth = 1usize;
        self.i += 2;
        while self.i < self.bytes.len() && depth > 0 {
            match self.bytes[self.i] {
                b'/' if self.peek(1) == Some(b'*') => {
                    depth += 1;
                    self.i += 2;
                }
                b'*' if self.peek(1) == Some(b'/') => {
                    depth -= 1;
                    self.i += 2;
                }
                b'\n' => {
                    self.line += 1;
                    self.line_had_code = false;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
    }

    /// Does `bytes[i..]` begin a raw (byte) string literal, e.g. `r"`,
    /// `r#"`, `br##"`?
    fn starts_raw_string(&self) -> bool {
        let mut j = self.i;
        if self.bytes[j] == b'b' {
            j += 1;
            if self.bytes.get(j) != Some(&b'r') {
                return false;
            }
        }
        if self.bytes.get(j) != Some(&b'r') {
            return false;
        }
        j += 1;
        while self.bytes.get(j) == Some(&b'#') {
            j += 1;
        }
        self.bytes.get(j) == Some(&b'"')
    }

    fn raw_string(&mut self) {
        let start_line = self.line;
        // Prefix: optional `b`, `r`, then `#`s.
        let mut hashes = 0usize;
        while self.bytes[self.i] != b'"' {
            if self.bytes[self.i] == b'#' {
                hashes += 1;
            }
            self.i += 1;
        }
        self.i += 1; // opening quote
        while self.i < self.bytes.len() {
            if self.bytes[self.i] == b'"' {
                let closed = (0..hashes).all(|k| self.peek(1 + k) == Some(b'#'));
                if closed {
                    self.i += 1 + hashes;
                    self.out.tokens.push(Token {
                        kind: TokKind::Str,
                        text: String::new(),
                        line: start_line,
                    });
                    self.line_had_code = true;
                    return;
                }
            }
            if self.bytes[self.i] == b'\n' {
                self.line += 1;
            }
            self.i += 1;
        }
        // Unterminated: still emit the token so downstream stays sane.
        self.out.tokens.push(Token {
            kind: TokKind::Str,
            text: String::new(),
            line: start_line,
        });
    }

    fn plain_string(&mut self) {
        let start_line = self.line;
        self.i += 1; // opening quote
        while self.i < self.bytes.len() {
            match self.bytes[self.i] {
                b'\\' => {
                    if self.peek(1) == Some(b'\n') {
                        self.line += 1;
                    }
                    self.i += 2;
                }
                b'"' => {
                    self.i += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        self.out.tokens.push(Token {
            kind: TokKind::Str,
            text: String::new(),
            line: start_line,
        });
        self.line_had_code = true;
    }

    /// Is the `'` at the cursor a char literal (vs. a lifetime)?
    fn is_char_literal(&self) -> bool {
        match self.peek(1) {
            None => false,
            Some(b'\\') => true,
            Some(_) => {
                // `'x'` (one char, possibly multi-byte, then a closing
                // quote) is a literal; `'a` with no closing quote is a
                // lifetime.
                for k in 2..=5 {
                    match self.peek(k) {
                        Some(b'\'') => return true,
                        Some(b) if b >= 0x80 || b.is_ascii_alphanumeric() || b == b'_' => {}
                        _ => return false,
                    }
                }
                false
            }
        }
    }

    fn char_literal(&mut self) {
        self.i += 1; // opening quote
        if self.peek(0) == Some(b'\\') {
            self.i += 2; // escape introducer + escaped char
        }
        while self.i < self.bytes.len() && self.bytes[self.i] != b'\'' {
            self.i += 1;
        }
        if self.i < self.bytes.len() {
            self.i += 1; // closing quote
        }
        self.push(TokKind::Char, String::new());
    }

    fn lifetime(&mut self) {
        let start = self.i;
        self.i += 1;
        while self.i < self.bytes.len() && is_ident_continue(self.bytes[self.i]) {
            self.i += 1;
        }
        let text = self.source[start..self.i].to_owned();
        self.push(TokKind::Lifetime, text);
    }

    fn ident(&mut self) {
        let start = self.i;
        while self.i < self.bytes.len() && is_ident_continue(self.bytes[self.i]) {
            self.i += 1;
        }
        let text = self.source[start..self.i].to_owned();
        self.push(TokKind::Ident, text);
    }

    fn number(&mut self) {
        let start = self.i;
        while self.i < self.bytes.len() {
            let b = self.bytes[self.i];
            if b.is_ascii_alphanumeric() || b == b'_' {
                // Covers hex digits, type suffixes (`u64`, `f32`), and
                // exponents; `1e-9` needs the sign after `e`.
                if (b == b'e' || b == b'E')
                    && matches!(self.peek(1), Some(b'+') | Some(b'-'))
                    && self.peek(2).is_some_and(|d| d.is_ascii_digit())
                    && !self.source[start..self.i].starts_with("0x")
                {
                    self.i += 2;
                    continue;
                }
                self.i += 1;
            } else if b == b'.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // Fractional part; `1..4` stops before the range dots and
                // `0.5.to_bits()` stops before the method dot.
                self.i += 1;
            } else {
                break;
            }
        }
        let text = self.source[start..self.i].to_owned();
        self.push(TokKind::Num, text);
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Byte length of the UTF-8 char starting with `b`.
fn utf8_len(b: u8) -> usize {
    match b {
        _ if b < 0x80 => 1,
        _ if b >= 0xF0 => 4,
        _ if b >= 0xE0 => 3,
        _ => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        assert_eq!(
            texts("let x = foo(1, 0xF1u8);"),
            vec!["let", "x", "=", "foo", "(", "1", ",", "0xF1u8", ")", ";"]
        );
    }

    #[test]
    fn floats_do_not_eat_method_dots() {
        assert_eq!(
            texts("0.5.to_bits() 1..4 2.5e-3"),
            vec!["0.5", ".", "to_bits", "(", ")", "1", ".", ".", "4", "2.5e-3"]
        );
    }

    #[test]
    fn strings_and_chars_drop_contents() {
        let lexed = lex("let s = \".unwrap()\"; let c = 'x'; let b = b\"panic!\";");
        assert!(lexed
            .tokens
            .iter()
            .all(|t| t.kind != TokKind::Ident || !t.text.contains("unwrap")));
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| matches!(t.kind, TokKind::Str | TokKind::Char))
                .count(),
            3
        );
    }

    #[test]
    fn raw_strings_with_hashes() {
        let lexed = lex("let p = r##\"panic!(\"boom\")\"##;\nlet q = 3;\n");
        assert!(!lexed.tokens.iter().any(|t| t.text == "panic"));
        let q = lexed.tokens.iter().find(|t| t.text == "q").unwrap();
        assert_eq!(q.line, 2);
    }

    #[test]
    fn multiline_raw_string_advances_lines() {
        let lexed = lex("let p = r#\"a\nb\nc\"#;\nfinal_ident\n");
        let f = lexed
            .tokens
            .iter()
            .find(|t| t.text == "final_ident")
            .unwrap();
        assert_eq!(f.line, 4);
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("before /* a /* panic!() */ b */ after");
        assert_eq!(
            lexed
                .tokens
                .iter()
                .map(|t| t.text.as_str())
                .collect::<Vec<_>>(),
            vec!["before", "after"]
        );
    }

    #[test]
    fn line_comments_captured_with_ownership() {
        let lexed = lex("let x = 1; // trailing\n// own line\nlet y = 2;\n");
        assert_eq!(lexed.comments.len(), 2);
        assert!(!lexed.comments[0].own_line);
        assert!(lexed.comments[1].own_line);
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; let esc = '\\n'; }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "'a"));
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokKind::Char)
                .count(),
            2
        );
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(texts("let r#type = 1;"), vec!["let", "type", "=", "1", ";"]);
    }

    #[test]
    fn line_numbers_track_every_construct() {
        let src = "a\n\"s\ntring\"\n/* c\nomment */\nb\n";
        let lexed = lex(src);
        let a = lexed.tokens.iter().find(|t| t.text == "a").unwrap();
        let b = lexed.tokens.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(a.line, 1);
        assert_eq!(b.line, 6);
    }
}
