//! Item parser: recovers `fn` items (with their impl/trait owners, self
//! receivers, and body token ranges) and `#[cfg(test)]` regions from the
//! token stream produced by [`crate::lex`].
//!
//! This is deliberately *approximate* parsing — a recursive descent over
//! token trees that understands exactly as much Rust structure as the
//! darlint rules need: module/impl/trait nesting (so a function has a
//! resolvable owner for the call graph), function signatures split
//! across any number of lines, `cfg(test)` gating on any item (including
//! items nested inside macro invocations, which are traversed
//! transparently), and item kinds that must be *skipped* so their
//! contents cannot be misread as items (`const FN_TABLE: [fn(); 2]`
//! must not look like a function definition). Anything the parser does
//! not understand is skipped token-by-token; it never panics and never
//! loses line anchoring.

use crate::lex::{lex, Lexed, TokKind, Token};

/// One parsed `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Self type of the enclosing `impl`/`trait` block, if any
    /// (`impl Layer for Dense` → `Dense`; `trait Layer` → `Layer`).
    pub owner: Option<String>,
    /// Whether the parameter list begins with a `self` receiver.
    pub has_self: bool,
    /// Whether the item is test-only: under a `#[cfg(test)]` item, or
    /// carrying `#[test]`/`#[cfg(test)]` itself.
    pub is_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based line where the item starts (first attribute, else `fn`).
    pub start_line: usize,
    /// 1-based line of the closing brace (or `;` for bodyless items).
    pub end_line: usize,
    /// Token-index range of the body: `(open_brace, close_brace)`,
    /// inclusive of both delimiter tokens. `None` for trait-method
    /// declarations without a default body.
    pub body: Option<(usize, usize)>,
}

/// Parse result for one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Every `fn` item, in source order.
    pub fns: Vec<FnItem>,
    /// Inclusive `(start_line, end_line)` spans of `#[cfg(test)]`-gated
    /// items (and `#[test]` functions).
    pub test_spans: Vec<(usize, usize)>,
}

/// Parses the items of an already-lexed file.
pub fn parse(lexed: &Lexed) -> ParsedFile {
    let mut out = ParsedFile::default();
    let ctx = Ctx {
        owner: None,
        in_test: false,
    };
    items(&lexed.tokens, 0, lexed.tokens.len(), &ctx, &mut out);
    out
}

/// Convenience: lex and parse in one step.
pub fn parse_source(source: &str) -> (Lexed, ParsedFile) {
    let lexed = lex(source);
    let parsed = parse(&lexed);
    (lexed, parsed)
}

/// `is_test_line[i]`: is 1-based line `i + 1` inside a test-gated item?
pub fn test_line_flags(parsed: &ParsedFile, line_count: usize) -> Vec<bool> {
    let mut flags = vec![false; line_count];
    for &(lo, hi) in &parsed.test_spans {
        for l in lo..=hi.min(line_count) {
            if l >= 1 {
                flags[l - 1] = true;
            }
        }
    }
    flags
}

#[derive(Clone)]
struct Ctx {
    owner: Option<String>,
    in_test: bool,
}

/// Accumulated attribute state while scanning toward an item keyword.
#[derive(Default)]
struct Attrs {
    test: bool,
    start_line: Option<usize>,
}

impl Attrs {
    fn anchor(&self, fallback: usize) -> usize {
        self.start_line.unwrap_or(fallback)
    }
}

/// Finds the index of the token matching the open delimiter at `start`.
fn matching(tokens: &[Token], start: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = start;
    while i < tokens.len() {
        if tokens[i].is_punct(open) {
            depth += 1;
        } else if tokens[i].is_punct(close) {
            depth = depth.checked_sub(1)?;
            if depth == 0 {
                return Some(i);
            }
        }
        i += 1;
    }
    None
}

/// Skips a generics group starting at `<`, tolerant of `->` and `=>`
/// inside bounds (`fn f<F: Fn() -> usize>`): a `>` preceded by `-` or
/// `=` is an arrow, not a closer. Returns the index past the group.
fn skip_angles(tokens: &[Token], start: usize) -> usize {
    let mut depth = 0usize;
    let mut i = start;
    while i < tokens.len() {
        if tokens[i].is_punct('<') {
            depth += 1;
        } else if tokens[i].is_punct('>')
            && !(i > 0 && (tokens[i - 1].is_punct('-') || tokens[i - 1].is_punct('=')))
        {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// Does the attribute token group `[lo, hi)` (inside the brackets) gate
/// the item to test builds? True for `#[test]` and for `#[cfg(...)]`
/// predicates mentioning `test` outside a `not(...)`.
fn attr_is_test(tokens: &[Token], lo: usize, hi: usize) -> bool {
    let inner: Vec<&Token> = tokens[lo..hi].iter().collect();
    if inner.len() == 1 && inner[0].is_ident("test") {
        return true;
    }
    if !inner.first().is_some_and(|t| t.is_ident("cfg")) {
        return false;
    }
    // Scan the predicate; ignore everything inside `not(...)` so
    // `#[cfg(not(test))]` is correctly *non*-test.
    let mut not_depth: Option<usize> = None;
    let mut paren_depth = 0usize;
    let mut k = lo;
    while k < hi {
        let t = &tokens[k];
        if t.is_punct('(') {
            paren_depth += 1;
        } else if t.is_punct(')') {
            paren_depth = paren_depth.saturating_sub(1);
            if let Some(d) = not_depth {
                if paren_depth < d {
                    not_depth = None;
                }
            }
        } else if t.is_ident("not") && tokens.get(k + 1).is_some_and(|n| n.is_punct('(')) {
            if not_depth.is_none() {
                not_depth = Some(paren_depth + 1);
            }
        } else if t.is_ident("test") && not_depth.is_none() && paren_depth >= 1 {
            return true;
        }
        k += 1;
    }
    false
}

/// Parses the items in token range `[lo, hi)` under `ctx`.
fn items(tokens: &[Token], lo: usize, hi: usize, ctx: &Ctx, out: &mut ParsedFile) {
    let mut i = lo;
    let mut attrs = Attrs::default();
    while i < hi {
        let t = &tokens[i];
        // Attribute groups: `#[...]` and inner `#![...]`.
        if t.is_punct('#') {
            let bracket = if tokens.get(i + 1).is_some_and(|n| n.is_punct('[')) {
                Some(i + 1)
            } else if tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
                && tokens.get(i + 2).is_some_and(|n| n.is_punct('['))
            {
                Some(i + 2)
            } else {
                None
            };
            if let Some(open) = bracket {
                let close = match matching(tokens, open, '[', ']') {
                    Some(c) => c,
                    None => break,
                };
                if attr_is_test(tokens, open + 1, close) {
                    attrs.test = true;
                }
                attrs.start_line.get_or_insert(t.line);
                i = close + 1;
                continue;
            }
        }
        if t.kind != TokKind::Ident {
            // Punctuation between attributes and their item (e.g. the
            // `(crate)` of `pub(crate)`) keeps the pending attrs alive;
            // statement/block boundaries clear them.
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                attrs = Attrs::default();
            }
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "fn" if tokens.get(i + 1).map(|n| n.kind) == Some(TokKind::Ident) => {
                i = parse_fn(tokens, i, hi, ctx, std::mem::take(&mut attrs), out);
            }
            "mod" if tokens.get(i + 1).map(|n| n.kind) == Some(TokKind::Ident) => {
                let a = std::mem::take(&mut attrs);
                let anchor = a.anchor(t.line);
                match tokens.get(i + 2) {
                    Some(n) if n.is_punct('{') => {
                        let close = match matching(tokens, i + 2, '{', '}') {
                            Some(c) => c,
                            None => break,
                        };
                        let inner = Ctx {
                            owner: None,
                            in_test: ctx.in_test || a.test,
                        };
                        if a.test {
                            out.test_spans.push((anchor, tokens[close].line));
                        }
                        items(tokens, i + 3, close, &inner, out);
                        i = close + 1;
                    }
                    _ => {
                        // `mod name;` — span covers the declaration only.
                        if a.test {
                            out.test_spans.push((anchor, tokens[i + 1].line));
                        }
                        i += 2;
                    }
                }
            }
            "impl" | "trait" => {
                let a = std::mem::take(&mut attrs);
                let anchor = a.anchor(t.line);
                let (owner, body_open) = block_owner(tokens, i, hi, t.text == "trait");
                match body_open {
                    Some(open) => {
                        let close = match matching(tokens, open, '{', '}') {
                            Some(c) => c,
                            None => break,
                        };
                        let inner = Ctx {
                            owner,
                            in_test: ctx.in_test || a.test,
                        };
                        if a.test {
                            out.test_spans.push((anchor, tokens[close].line));
                        }
                        items(tokens, open + 1, close, &inner, out);
                        i = close + 1;
                    }
                    None => i += 1,
                }
            }
            "struct" | "enum" | "union" => {
                let a = std::mem::take(&mut attrs);
                let anchor = a.anchor(t.line);
                let mut j = i + 1;
                // Name, generics, where clause; body is `{...}`, `(...)`
                // + `;` (tuple struct), or a bare `;`.
                let mut end = None;
                while j < hi {
                    if tokens[j].is_punct('<') {
                        j = skip_angles(tokens, j);
                        continue;
                    }
                    if tokens[j].is_punct('{') {
                        end = matching(tokens, j, '{', '}');
                        break;
                    }
                    if tokens[j].is_punct(';') {
                        end = Some(j);
                        break;
                    }
                    if tokens[j].is_punct('(') {
                        j = match matching(tokens, j, '(', ')') {
                            Some(c) => c + 1,
                            None => break,
                        };
                        continue;
                    }
                    j += 1;
                }
                let Some(end) = end else { break };
                if a.test {
                    out.test_spans.push((anchor, tokens[end].line));
                }
                i = end + 1;
            }
            "const" | "static" | "type" | "use"
                if !tokens.get(i + 1).is_some_and(|n| n.is_ident("fn")) =>
            {
                // Skip to the terminating `;` at brace depth 0 so `fn`
                // tokens inside types/initializers are never misread as
                // items (`const T: [fn(); 2] = ...;`).
                let a = std::mem::take(&mut attrs);
                let anchor = a.anchor(t.line);
                let mut depth = 0usize;
                let mut j = i + 1;
                while j < hi {
                    if tokens[j].is_punct('{') {
                        depth += 1;
                    } else if tokens[j].is_punct('}') {
                        depth = depth.saturating_sub(1);
                    } else if tokens[j].is_punct(';') && depth == 0 {
                        break;
                    }
                    j += 1;
                }
                if a.test && j < hi {
                    out.test_spans.push((anchor, tokens[j].line));
                }
                i = j + 1;
            }
            "macro_rules" => {
                // `macro_rules! name { ... }` — the body is a token
                // pattern, not code; skip it entirely.
                let mut j = i + 1;
                while j < hi && !tokens[j].is_punct('{') {
                    j += 1;
                }
                i = match matching(tokens, j, '{', '}') {
                    Some(c) => c + 1,
                    None => hi,
                };
            }
            _ => {
                // Macro invocations are traversed transparently so
                // `#[cfg(test)] mod ...` nested inside one still
                // registers (`proptest! { ... }`-style wrappers).
                if tokens.get(i + 1).is_some_and(|n| n.is_punct('!')) {
                    if let Some((open_ch, close_ch, open_idx)) = macro_group(tokens, i + 2) {
                        if let Some(close) = matching(tokens, open_idx, open_ch, close_ch) {
                            items(tokens, open_idx + 1, close, ctx, out);
                            i = close + 1;
                            continue;
                        }
                    }
                }
                i += 1;
            }
        }
    }
}

/// The delimiter group of a macro invocation starting at token `i`
/// (right after `name !`).
fn macro_group(tokens: &[Token], i: usize) -> Option<(char, char, usize)> {
    let t = tokens.get(i)?;
    if t.is_punct('(') {
        Some(('(', ')', i))
    } else if t.is_punct('[') {
        Some(('[', ']', i))
    } else if t.is_punct('{') {
        Some(('{', '}', i))
    } else {
        None
    }
}

/// For an `impl`/`trait` keyword at `i`: the block's owner name and the
/// index of its opening `{`.
fn block_owner(
    tokens: &[Token],
    i: usize,
    hi: usize,
    is_trait: bool,
) -> (Option<String>, Option<usize>) {
    let mut j = i + 1;
    if tokens.get(j).is_some_and(|t| t.is_punct('<')) {
        j = skip_angles(tokens, j);
    }
    if is_trait {
        let name = tokens
            .get(j)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone());
        while j < hi && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
            if tokens[j].is_punct('<') {
                j = skip_angles(tokens, j);
                continue;
            }
            j += 1;
        }
        let open = (j < hi && tokens[j].is_punct('{')).then_some(j);
        return (name, open);
    }
    // impl: the self type is the path after `for` when present, else the
    // path after the impl generics. Owner = the path's *last* plain
    // segment before generics (`impl fmt::Display for CollectError` →
    // `CollectError`; `impl<S> Wal<S>` → `Wal`).
    let mut segments: Vec<String> = Vec::new();
    let mut after_for: Option<Vec<String>> = None;
    while j < hi && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
        let t = &tokens[j];
        if t.is_punct('<') {
            j = skip_angles(tokens, j);
            continue;
        }
        if t.is_ident("for") {
            after_for = Some(Vec::new());
            j += 1;
            continue;
        }
        if t.is_ident("where") {
            break;
        }
        if t.kind == TokKind::Ident && !matches!(t.text.as_str(), "dyn" | "mut") {
            match &mut after_for {
                Some(v) => v.push(t.text.clone()),
                None => segments.push(t.text.clone()),
            }
        }
        j += 1;
    }
    while j < hi && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
        j += 1;
    }
    let open = (j < hi && tokens[j].is_punct('{')).then_some(j);
    let path = after_for.unwrap_or(segments);
    (path.last().cloned(), open)
}

/// Parses one `fn` item with the `fn` keyword at index `i`; returns the
/// index to continue from.
fn parse_fn(
    tokens: &[Token],
    i: usize,
    hi: usize,
    ctx: &Ctx,
    attrs: Attrs,
    out: &mut ParsedFile,
) -> usize {
    let fn_line = tokens[i].line;
    let name = tokens[i + 1].text.clone();
    let mut j = i + 2;
    if tokens.get(j).is_some_and(|t| t.is_punct('<')) {
        j = skip_angles(tokens, j);
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct('(')) {
        return i + 2; // malformed; skip the keyword and resynchronize
    }
    let params_close = match matching(tokens, j, '(', ')') {
        Some(c) => c,
        None => return hi,
    };
    let has_self = {
        let mut k = j + 1;
        while k < params_close
            && (tokens[k].is_punct('&')
                || tokens[k].kind == TokKind::Lifetime
                || tokens[k].is_ident("mut"))
        {
            k += 1;
        }
        k < params_close && tokens[k].is_ident("self")
    };
    // Return type / where clause, then `{` body or `;` declaration.
    let mut k = params_close + 1;
    let mut body = None;
    let mut end_line = tokens[params_close].line;
    while k < hi {
        if tokens[k].is_punct('<') {
            k = skip_angles(tokens, k);
            continue;
        }
        if tokens[k].is_punct('{') {
            if let Some(close) = matching(tokens, k, '{', '}') {
                body = Some((k, close));
                end_line = tokens[close].line;
            }
            break;
        }
        if tokens[k].is_punct(';') {
            end_line = tokens[k].line;
            break;
        }
        k += 1;
    }
    let is_test = ctx.in_test || attrs.test;
    let start_line = attrs.anchor(fn_line);
    if attrs.test {
        out.test_spans.push((start_line, end_line));
    }
    out.fns.push(FnItem {
        name,
        owner: ctx.owner.clone(),
        has_self,
        is_test,
        line: fn_line,
        start_line,
        end_line,
        body,
    });
    match body {
        Some((open, close)) => {
            // Nested items (fns declared inside the body) are free
            // functions in their own right.
            let inner = Ctx {
                owner: None,
                in_test: is_test,
            };
            items(tokens, open + 1, close, &inner, out);
            close + 1
        }
        None => k + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(src: &str) -> ParsedFile {
        parse(&lex(src))
    }

    #[test]
    fn finds_free_and_method_fns() {
        let p = parsed(
            "fn free(x: u32) -> u32 { x }\n\
             impl Tensor {\n    pub fn zeros(dims: &[usize]) -> Self { todo() }\n\
             \n    fn len(&self) -> usize { 0 }\n}\n",
        );
        assert_eq!(p.fns.len(), 3);
        assert_eq!(p.fns[0].name, "free");
        assert_eq!(p.fns[0].owner, None);
        assert!(!p.fns[0].has_self);
        assert_eq!(p.fns[1].name, "zeros");
        assert_eq!(p.fns[1].owner.as_deref(), Some("Tensor"));
        assert!(!p.fns[1].has_self);
        assert_eq!(p.fns[2].name, "len");
        assert!(p.fns[2].has_self);
    }

    #[test]
    fn impl_trait_for_type_owner_is_the_type() {
        let p = parsed(
            "impl Layer for Dense {\n    fn forward_into(&mut self, x: &T) -> R { x }\n}\n\
             impl<S: WalStorage> Wal<S> {\n    fn append(&mut self) {}\n}\n\
             impl fmt::Display for CollectError {\n    fn fmt(&self, f: &mut F) -> R { ok }\n}\n",
        );
        assert_eq!(p.fns[0].owner.as_deref(), Some("Dense"));
        assert_eq!(p.fns[1].owner.as_deref(), Some("Wal"));
        assert_eq!(p.fns[2].owner.as_deref(), Some("CollectError"));
    }

    #[test]
    fn trait_default_methods_get_trait_owner() {
        let p = parsed("trait Layer {\n    fn act(&self) -> u32 { 1 }\n    fn sig(&self);\n}\n");
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].owner.as_deref(), Some("Layer"));
        assert!(p.fns[0].body.is_some());
        assert!(p.fns[1].body.is_none());
    }

    #[test]
    fn cfg_test_mod_gates_everything_inside() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let p = parsed(src);
        let flags = test_line_flags(&p, 6);
        assert_eq!(flags, vec![false, true, true, true, true, false]);
        let t = p.fns.iter().find(|f| f.name == "t").expect("t parsed");
        assert!(t.is_test);
        assert!(
            !p.fns
                .iter()
                .find(|f| f.name == "after")
                .expect("after")
                .is_test
        );
    }

    #[test]
    fn cfg_not_test_is_not_gated() {
        let p = parsed("#[cfg(not(test))]\nfn live() {}\n");
        assert!(p.test_spans.is_empty());
        assert!(!p.fns[0].is_test);
    }

    #[test]
    fn cfg_all_test_counts_as_test() {
        let p = parsed("#[cfg(all(test, feature = \"x\"))]\nfn helper() {\n}\nfn live() {}\n");
        assert_eq!(test_line_flags(&p, 4), vec![true, true, true, false]);
    }

    #[test]
    fn test_attr_on_fn_gates_it() {
        let p = parsed("#[test]\nfn unit() { x.unwrap(); }\nfn live() {}\n");
        assert_eq!(test_line_flags(&p, 3), vec![true, true, false]);
    }

    #[test]
    fn cfg_test_mod_nested_in_macro_invocation() {
        let src = "wrapper_macro! {\n    #[cfg(test)]\n    mod tests {\n        fn t() {}\n    }\n}\nfn live() {}\n";
        let p = parsed(src);
        let flags = test_line_flags(&p, 7);
        assert_eq!(flags, vec![false, true, true, true, true, false, false]);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let p =
            parsed("const TABLE: [fn(); 2] = [a, b];\ntype F = fn(u32) -> u32;\nfn real() {}\n");
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "real");
    }

    #[test]
    fn multiline_signature_parses() {
        let src = "pub fn long_name(\n    a: usize,\n    b: &mut [f32],\n) -> Result<(), E>\nwhere\n    E: Sized,\n{\n    body()\n}\n";
        let p = parsed(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "long_name");
        assert_eq!(p.fns[0].line, 1);
        assert_eq!(p.fns[0].end_line, 9);
        assert!(p.fns[0].body.is_some());
    }

    #[test]
    fn generic_bounds_with_arrows_do_not_derail() {
        let p = parsed("fn apply<F: Fn(u32) -> u32>(f: F) -> u32 { f(1) }\nfn next() {}\n");
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[1].name, "next");
    }

    #[test]
    fn nested_fns_are_items_without_owner() {
        let p = parsed("impl T {\n    fn outer(&self) {\n        fn inner() {}\n    }\n}\n");
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].name, "outer");
        assert_eq!(p.fns[1].name, "inner");
        assert_eq!(p.fns[1].owner, None);
    }

    #[test]
    fn const_fn_is_still_a_fn() {
        let p = parsed("const fn cfn() -> u32 { 1 }\n");
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "cfn");
    }
}
